#!/usr/bin/env python
"""E-RAPID under HPC application kernels.

The paper motivates reconfiguration with inter-process communication
locality.  This example runs the classic MPI kernels — all-to-all
personalized exchange, ring allreduce, 2-D halo exchange and a hotspot —
through the 64-node system and compares the static allocation with
Lock-Step.

Run:  python examples/hpc_workloads.py
"""

from repro import ERapidSystem, MeasurementPlan, WorkloadSpec
from repro.core.engine import FastEngine
from repro.metrics import format_table
from repro.network.topology import ERapidTopology
from repro.traffic import HaloExchange, TrafficSource, BernoulliProcess
from repro.traffic.capacity import CapacityModel


def run_named_patterns() -> None:
    plan = MeasurementPlan(warmup=8000, measure=10000, drain_limit=16000)
    rows = []
    for name in ("all_to_all", "ring_allreduce", "hotspot"):
        wl = WorkloadSpec(pattern=name, load=0.6, seed=1)
        static = ERapidSystem.build(policy="NP-NB").run(wl, plan)
        pb = ERapidSystem.build(policy="P-B").run(wl, plan)
        rows.append(
            [
                name,
                static.throughput,
                pb.throughput,
                static.power_mw,
                pb.power_mw,
                pb.extra["grants"],
            ]
        )
    print(
        format_table(
            ["kernel", "NP-NB thr", "P-B thr", "NP-NB mW", "P-B mW", "grants"],
            rows,
            title="== MPI kernels @ 0.6 N_c, 64 nodes ==",
        )
    )


def run_halo_exchange() -> None:
    """Halo exchange needs an explicit grid; build sources directly."""
    topo = ERapidTopology(boards=8, nodes_per_board=8)
    pattern = HaloExchange(8, 8)  # 8x8 process grid = 64 ranks
    rate = 0.5 * CapacityModel.uniform_capacity(topo)
    plan = MeasurementPlan(warmup=8000, measure=10000, drain_limit=16000)
    rows = []
    for policy in ("NP-NB", "P-B"):
        system = ERapidSystem.build(policy=policy)
        sources = [
            TrafficSource(node, pattern, BernoulliProcess(rate))
            for node in range(64)
        ]
        engine = FastEngine(
            system.config, WorkloadSpec(pattern="uniform", load=0.5), plan,
            sources=sources,
        )
        r = engine.run()
        rows.append([policy, r.throughput, r.avg_latency, r.power_mw])
    print()
    print(
        format_table(
            ["policy", "throughput", "latency", "power_mW"],
            rows,
            title="== 8x8 halo exchange (mostly board-local + neighbours) ==",
        )
    )
    print(
        "\nHalo traffic is neighbour-dominated, so few wavelengths are hot;"
        "\nthe win here is DPM power scaling rather than DBR re-allocation."
    )


def main() -> None:
    run_named_patterns()
    run_halo_exchange()


if __name__ == "__main__":
    main()
