#!/usr/bin/env python
"""Adversarial communication patterns on a statically-allocated optical
interconnect — the scenario the paper's introduction motivates.

Sweeps the §4.1 patterns (plus the extended Dally & Towles set) and shows
how far each one pushes the static RWA below its uniform capacity, then
how much of the loss Lock-Step reconfiguration recovers.

Run:  python examples/adversarial_traffic.py
"""

from repro import (
    CapacityModel,
    ERapidSystem,
    ERapidTopology,
    MeasurementPlan,
    WorkloadSpec,
    make_pattern,
)
from repro.metrics import format_table

PATTERNS = (
    "uniform",
    "complement",
    "butterfly",
    "perfect_shuffle",
    "bit_reverse",
    "transpose",
    "tornado",
)


def main() -> None:
    topo = ERapidTopology(boards=8, nodes_per_board=8)
    nc = CapacityModel.uniform_capacity(topo)
    print(f"uniform network capacity N_c = {nc:.5f} packets/node/cycle\n")

    # 1. Analytic saturation points under the static allocation.
    rows = []
    for name in PATTERNS:
        model = CapacityModel(topo, make_pattern(name, topo.total_nodes))
        rows.append([name, model.saturation_fraction(nc)])
    print(
        format_table(
            ["pattern", "static saturation (fraction of N_c)"],
            rows,
            title="== where the static RWA saturates (channel-load bound) ==",
        )
    )

    # 2. Measured recovery with Lock-Step at a load most patterns cannot
    #    statically sustain.
    load = 0.6
    plan = MeasurementPlan(warmup=8000, measure=10000, drain_limit=20000)
    rows = []
    for name in PATTERNS:
        workload = WorkloadSpec(pattern=name, load=load, seed=1)
        static = ERapidSystem.build(policy="NP-NB").run(workload, plan)
        lockstep = ERapidSystem.build(policy="P-B").run(workload, plan)
        rows.append(
            [
                name,
                static.throughput,
                lockstep.throughput,
                lockstep.throughput / static.throughput if static.throughput else 0.0,
                lockstep.extra["grants"],
            ]
        )
    print()
    print(
        format_table(
            ["pattern", "NP-NB thr", "P-B thr", "speedup", "grants"],
            rows,
            title=f"== measured throughput at {load} N_c ==",
        )
    )


if __name__ == "__main__":
    main()
