#!/usr/bin/env python
"""Quickstart: build an E-RAPID system and compare the static baseline with
the paper's Lock-Step (P-B) configuration on adversarial traffic.

Run:  python examples/quickstart.py
"""

from repro import ERapidSystem, MeasurementPlan, WorkloadSpec
from repro.metrics import format_table


def main() -> None:
    # The paper's evaluation platform: 64 nodes = 8 boards x 8 nodes.
    plan = MeasurementPlan(warmup=8000, measure=12000, drain_limit=24000)
    workload = WorkloadSpec(pattern="complement", load=0.5, seed=1)

    print(f"workload: {workload.describe()}\n")

    rows = []
    for policy in ("NP-NB", "P-B"):
        system = ERapidSystem.build(boards=8, nodes_per_board=8, policy=policy)
        result = system.run(workload, plan)
        rows.append(
            [
                policy,
                result.throughput,
                result.avg_latency,
                result.power_mw,
                result.extra["grants"],
                result.extra["dpm_transitions"],
            ]
        )

    print(
        format_table(
            ["policy", "throughput", "latency (cyc)", "power (mW)",
             "DBR grants", "DPM transitions"],
            rows,
            title="== static vs Lock-Step on complement traffic ==",
        )
    )
    static, lockstep = rows
    print(
        f"\nLock-Step delivers {lockstep[1] / static[1]:.1f}x the throughput "
        f"by re-allocating idle wavelengths to the hot board pairs,"
    )
    print(
        f"while DPM keeps the power multiple ({lockstep[3] / static[3]:.1f}x) "
        "below the bandwidth multiple."
    )


if __name__ == "__main__":
    main()
