#!/usr/bin/env python
"""Capacity planning with the analytic channel-load model.

Answers the questions a system architect would ask before buying hardware:
how does capacity scale with board count, where do adversarial patterns
saturate, and how many re-allocated wavelengths does a hot pair need to
sustain a target load?

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import CapacityModel, ERapidTopology, make_pattern
from repro.metrics import format_table
from repro.traffic import CapacityParams


def main() -> None:
    # 1. Capacity vs system size.
    rows = []
    for boards, nodes in ((4, 4), (4, 8), (8, 8), (16, 8)):
        topo = ERapidTopology(boards=boards, nodes_per_board=nodes)
        nc = CapacityModel.uniform_capacity(topo)
        agg = nc * topo.total_nodes * 512 * 0.4  # packets -> Gbps
        rows.append([f"R(1,{boards},{nodes})", topo.total_nodes, nc, agg])
    print(
        format_table(
            ["system", "nodes", "N_c (pkt/node/cyc)", "aggregate (Gbps)"],
            rows,
            title="== uniform capacity vs system size ==",
        )
    )

    # 2. How many channels does the complement hot pair need per load?
    topo = ERapidTopology(boards=8, nodes_per_board=8)
    nc = CapacityModel.uniform_capacity(topo)
    model = CapacityModel(topo, make_pattern("complement", 64))
    B = topo.boards
    base = np.ones((B, B)) - np.eye(B)
    comp_pairs = [(s, 7 - s) for s in range(B)]
    rows = []
    for k in range(1, 9):
        chans = base.copy()
        for s, d in comp_pairs:
            chans[s, d] = k
        cap = model.max_injection(chans)
        rows.append([k, cap, cap / nc])
    print()
    print(
        format_table(
            ["channels per hot pair", "capacity (pkt/node/cyc)",
             "fraction of N_c"],
            rows,
            title="== complement capacity vs granted wavelengths ==",
        )
    )

    # 3. Sensitivity to the optical bit rate (DPM's levers).
    rows = []
    for gbps in (2.5, 3.3, 5.0, 10.0):
        params = CapacityParams(optical_gbps=gbps)
        nc_r = CapacityModel.uniform_capacity(topo, params)
        rows.append([gbps, nc_r, nc_r / nc])
    print()
    print(
        format_table(
            ["optical bit rate (Gbps)", "N_c", "vs 5 Gbps"],
            rows,
            title="== capacity vs per-wavelength bit rate ==",
        )
    )


if __name__ == "__main__":
    main()
