#!/usr/bin/env python
"""Failure recovery: a port laser dies mid-run and Lock-Step routes
around it.

Not an experiment from the paper, but a direct consequence of its
architecture: when a (wavelength, destination) channel hard-fails, the
owning board pair shows up at the next bandwidth window with queued
traffic and no channel — exactly the condition DBR treats as "needs
additional wavelengths" — and is granted a surviving wavelength.  The
static network loses the pair forever.

Run:  python examples/failure_recovery.py
"""

from repro.core import ERapidConfig, FastEngine
from repro.core.policies import NP_NB, P_B
from repro.experiments import AllocationProbe, render_allocation
from repro.metrics import MeasurementPlan, format_table
from repro.network.topology import ERapidTopology
from repro.traffic import WorkloadSpec

PLAN = MeasurementPlan(warmup=10000, measure=10000, drain_limit=12000)


def run(policy, fail_at=3000.0):
    cfg = ERapidConfig(
        topology=ERapidTopology(boards=4, nodes_per_board=4), policy=policy
    )
    engine = FastEngine(
        cfg, WorkloadSpec(pattern="complement", load=0.4, seed=7), PLAN
    )
    # Kill the hot pair (board 0 -> board 3)'s static wavelength.
    w_hot = engine.srs.rwa.wavelength_for(0, 3)
    engine.inject_laser_failure(3, w_hot, at=fail_at)
    probe = AllocationProbe(engine, period=2000)
    engine.start()
    probe.start()
    result = engine.run()
    return engine, probe, result


def main() -> None:
    rows = []
    for policy in (NP_NB, P_B):
        engine, probe, result = run(policy)
        rows.append(
            [
                policy.name,
                result.acceptance,
                result.throughput,
                len(engine.srs.channels_from(0, 3)),
                result.extra["grants"],
            ]
        )
        if policy is P_B:
            print("Wavelength ownership toward board 3 over time "
                  "(failure at t=3000, 'X' = dead):\n")
            print(render_allocation(probe, dests=[3]))
    print(
        format_table(
            ["policy", "acceptance", "throughput", "channels 0->3 at end",
             "grants"],
            rows,
            title="== laser failure on the hot pair's static wavelength ==",
        )
    )
    print(
        "\nLock-Step re-granted a surviving wavelength to the orphaned pair;"
        "\nthe static network delivers only the unaffected board pairs."
    )


if __name__ == "__main__":
    main()
