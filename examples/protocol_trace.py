#!/usr/bin/env python
"""Watch the Lock-Step protocol run: the 5-stage DBR cycle (Figure 4) and
the per-window DPM decisions, straight from the reconfiguration
controllers' trace.

Run:  python examples/protocol_trace.py
"""

from repro import ERapidSystem, MeasurementPlan, WorkloadSpec
from repro.sim.trace import TraceLog


def main() -> None:
    trace = TraceLog(categories={"protocol"})
    system = ERapidSystem.build(boards=4, nodes_per_board=4, policy="P-B")
    plan = MeasurementPlan(warmup=6000, measure=4000, drain_limit=6000)
    result = system.run(
        WorkloadSpec(pattern="complement", load=0.6, seed=1), plan, trace=trace
    )

    print("== Lock-Step protocol trace (first 2 windows of each kind) ==\n")
    shown = 0
    for rec in trace.filter(category="protocol"):
        if rec.time > 9000:
            break
        print(rec.format())
        shown += 1
    print(f"\n({shown} protocol events shown; run ended at "
          f"t={system.last_engine.sim.now:.0f})")
    print(
        f"\nresult: thr={result.throughput:.5f} pkt/node/cyc, "
        f"{result.extra['grants']} grants, "
        f"{result.extra['dpm_transitions']} level transitions"
    )
    print(
        "\nStage order per bandwidth window: Link_Request -> Board_Request "
        "-> Reconfigure\n-> Board_Response -> Link_Response (grants actuate) "
        "— §3.2 / Figure 4."
    )


if __name__ == "__main__":
    main()
