#!/usr/bin/env python
"""Dynamic Power Management in action: watch a link ride the power-level
ladder as offered traffic ramps low -> high -> low (the Figure 3 story).

Run:  python examples/power_management.py
"""

from repro.experiments import render_fig3, run_fig3
from repro.metrics import format_table


def main() -> None:
    results = run_fig3(boards=4, nodes_per_board=4, horizon=26000,
                       sample_period=1000)
    print(render_fig3(results))

    # Summarize the corners: average hot-channel power and level occupancy.
    rows = []
    for name, res in results.items():
        if not res.samples:
            continue
        avg_power = sum(s.power_mw for s in res.samples) / len(res.samples)
        low_share = sum(
            1 for s in res.samples if s.level_name != "P_high"
        ) / len(res.samples)
        max_channels = max(res.pair_channels) if res.pair_channels else 1
        rows.append([name, avg_power, f"{100 * low_share:.0f}%", max_channels])
    print(
        format_table(
            ["config", "avg hot-channel power (mW)", "time below P_high",
             "peak channels on hot pair"],
            rows,
            title="== design-space summary ==",
        )
    )
    print(
        "\nNP-NB never adapts; P-NB scales the bit rate with utilization; "
        "NP-B adds\nwavelengths under load at full power; P-B does both — "
        "the paper's Lock-Step."
    )


if __name__ == "__main__":
    main()
