"""Legacy setup shim.

The execution environment ships setuptools without the ``wheel`` package and
has no network access, so PEP 517 editable installs fail at ``bdist_wheel``.
Keeping a ``setup.py`` (and no ``[build-system]`` table in pyproject.toml)
lets ``pip install -e .`` use the legacy editable path.  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
