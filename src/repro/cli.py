"""Command-line interface.

::

    erapid run       --pattern complement --policy P-B --load 0.5
    erapid profile   --pattern uniform --load 0.4 [--engine fast|detailed|batch] [--top 25]
    erapid sweep     --pattern uniform --loads 0.1,0.3,0.5 [--jobs N] [--engine fast|batch] [--slab-shard N] [-v] [--csv out.csv]
    erapid reproduce --out results/ [--jobs N] [--no-cache] [--engine fast|batch]
    erapid fig3
    erapid table1
    erapid rwa       --boards 8
    erapid ablate    --which window|thresholds|levels|limited-dbr|smoothing
    erapid cache     stats|path|clear [--dir DIR] [--by-engine]
    erapid serve     --spool DIR [--jobs N] [--once | --idle-exit S]
    erapid submit    --spool DIR [--kind sweep|run] [--loads ...] [--policies ...]
    erapid jobs      --spool DIR [--job KEY] [--wait S]

(Also runnable as ``python -m repro``.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.erapid import ERapidSystem
from repro.core.policies import POLICIES
from repro.metrics.collector import MeasurementPlan
from repro.metrics.report import format_kv
from repro.traffic.patterns import PATTERNS
from repro.traffic.workload import WorkloadSpec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="erapid",
        description="E-RAPID power-aware reconfigurable optical interconnect "
        "simulator (reproduction of Kodi & Louri, IPPS 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="one simulation run")
    run.add_argument("--pattern", default="uniform", choices=sorted(PATTERNS))
    run.add_argument("--policy", default="P-B", choices=sorted(POLICIES))
    run.add_argument("--load", type=float, default=0.5)
    run.add_argument("--boards", type=int, default=8)
    run.add_argument("--nodes", type=int, default=8)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--warmup", type=float, default=8000)
    run.add_argument("--measure", type=float, default=12000)

    prof = sub.add_parser(
        "profile", help="one run under cProfile (hot-path inspection)"
    )
    prof.add_argument("--pattern", default="uniform", choices=sorted(PATTERNS))
    prof.add_argument("--policy", default="P-B", choices=sorted(POLICIES))
    prof.add_argument("--load", type=float, default=0.4)
    prof.add_argument("--boards", type=int, default=8)
    prof.add_argument("--nodes", type=int, default=8)
    prof.add_argument("--seed", type=int, default=1)
    prof.add_argument("--warmup", type=float, default=2000)
    prof.add_argument("--measure", type=float, default=6000)
    prof.add_argument(
        "--engine", default="fast", choices=("fast", "detailed", "batch"),
        help="which engine to profile: the event-driven fast engine, the "
        "cycle-synchronous flit-level detailed engine, or the vectorized "
        "batch engine as a one-run slab (default: fast)",
    )
    prof.add_argument(
        "--top", type=int, default=25,
        help="rows of the cumulative-time table to print (default: 25)",
    )

    sweep = sub.add_parser("sweep", help="load sweep (one Figure 5/6 panel)")
    sweep.add_argument("--pattern", default="uniform", choices=sorted(PATTERNS))
    sweep.add_argument("--loads", default="0.1,0.3,0.5,0.7,0.9")
    sweep.add_argument("--boards", type=int, default=8)
    sweep.add_argument("--nodes", type=int, default=8)
    sweep.add_argument("--csv", default=None, help="write results to CSV")
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run the (policy x load) matrix in N worker processes "
        "(bit-identical to serial)",
    )
    sweep.add_argument(
        "--engine", default="fast", choices=("fast", "batch"),
        help="sweep engine: scalar fast engine (default) or the vectorized "
        "batch engine (statistically equivalent, order-of-magnitude faster "
        "on large grids; --jobs shards covered slabs across workers)",
    )
    sweep.add_argument(
        "--slab-shard", type=int, default=None, metavar="N",
        help="batch engine: override the shard-size heuristic with N runs "
        "per sub-slab (layout never changes results, only wall-clock time)",
    )
    sweep.add_argument(
        "-v", "--verbose", action="store_true",
        help="print the effective shard plan before running (batch engine)",
    )

    sub.add_parser("table1", help="regenerate Table 1")
    sub.add_parser("fig3", help="design-space time series (Figure 3)")

    repro_cmd = sub.add_parser(
        "reproduce", help="regenerate every table and figure into a directory"
    )
    repro_cmd.add_argument("--out", default="results")
    repro_cmd.add_argument("--loads", default="0.1,0.3,0.5,0.7,0.9")
    repro_cmd.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep stage (bit-identical to serial)",
    )
    repro_cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed run cache "
        "($ERAPID_CACHE_DIR or ~/.cache/erapid/runs)",
    )
    repro_cmd.add_argument(
        "--engine", default="fast", choices=("fast", "batch"),
        help="sweep-stage engine: scalar fast engine (default) or the "
        "vectorized batch engine with scalar fallback",
    )

    rwa = sub.add_parser("rwa", help="print the static RWA (Figure 1)")
    rwa.add_argument("--boards", type=int, default=4)

    ablate = sub.add_parser("ablate", help="run an ablation study")
    ablate.add_argument(
        "--which",
        default="window",
        choices=["window", "thresholds", "levels", "limited-dbr", "smoothing"],
    )

    cache_cmd = sub.add_parser(
        "cache", help="inspect or clear the content-addressed run cache"
    )
    cache_cmd.add_argument(
        "action", choices=("stats", "path", "clear"),
        help="stats: counters + entry count + on-disk size; path: print "
        "the store directory; clear: delete every entry and reset counters",
    )
    cache_cmd.add_argument(
        "--dir", default=None,
        help="cache directory (default: $ERAPID_CACHE_DIR or "
        "~/.cache/erapid/runs)",
    )
    cache_cmd.add_argument(
        "--by-engine", action="store_true",
        help="with stats: break entry count and on-disk bytes down by the "
        "engine that produced each entry",
    )

    serve = sub.add_parser(
        "serve", help="run the sweep service over a job-spool directory"
    )
    serve.add_argument(
        "--spool", required=True,
        help="spool directory (incoming submissions + mirrored status)",
    )
    serve.add_argument(
        "--artifacts", default=None,
        help="artifact store root for manifests and the audit log "
        "(default: <spool>/artifacts-store)",
    )
    serve.add_argument(
        "--cache-dir", default=None,
        help="run-cache directory (default: $ERAPID_CACHE_DIR or "
        "~/.cache/erapid/runs)",
    )
    serve.add_argument(
        "--jobs", type=int, default=1,
        help="process-pool width of the worker shard (per job)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16,
        help="bounded job-queue depth; submissions beyond it are rejected "
        "(backpressure)",
    )
    serve.add_argument(
        "--once", action="store_true",
        help="ingest the current spool contents, drain, and exit",
    )
    serve.add_argument(
        "--poll", type=float, default=0.2,
        help="spool scan interval in seconds (default: 0.2)",
    )
    serve.add_argument(
        "--idle-exit", type=float, default=None,
        help="exit after this many seconds with no work (default: run "
        "forever)",
    )

    submit = sub.add_parser(
        "submit", help="drop a job spec into a serve spool directory"
    )
    submit.add_argument("--spool", required=True, help="spool directory")
    submit.add_argument(
        "--spec", default=None,
        help="JSON job-spec file to submit verbatim (e.g. the `spec` "
        "object of a past manifest); other spec flags are ignored",
    )
    submit.add_argument("--kind", default="sweep", choices=("sweep", "run"))
    submit.add_argument("--pattern", default="uniform", choices=sorted(PATTERNS))
    submit.add_argument("--loads", default="0.1,0.3,0.5,0.7,0.9")
    submit.add_argument(
        "--policies", default="NP-NB,P-NB,NP-B,P-B",
        help="comma-separated policy list",
    )
    submit.add_argument("--boards", type=int, default=8)
    submit.add_argument("--nodes", type=int, default=8)
    submit.add_argument("--seed", type=int, default=1)
    submit.add_argument("--warmup", type=float, default=8000)
    submit.add_argument("--measure", type=float, default=12000)
    submit.add_argument("--drain-limit", type=float, default=24000)
    submit.add_argument(
        "--priority", default="", choices=("", "interactive", "bulk"),
        help="queue priority (default: interactive for run, bulk for sweep)",
    )
    submit.add_argument(
        "--engine", default="fast", choices=("fast", "batch"),
        help="execution engine for the job's runs (default: fast)",
    )

    jobs_cmd = sub.add_parser(
        "jobs", help="list or inspect jobs mirrored in a serve spool"
    )
    jobs_cmd.add_argument("--spool", required=True, help="spool directory")
    jobs_cmd.add_argument(
        "--job", default=None, help="job key (as printed by `erapid submit`)"
    )
    jobs_cmd.add_argument(
        "--wait", type=float, default=None,
        help="with --job: poll until the job reaches a terminal state or "
        "this many seconds elapse",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "run":
        system = ERapidSystem.build(
            boards=args.boards, nodes_per_board=args.nodes, policy=args.policy,
            seed=args.seed,
        )
        plan = MeasurementPlan(
            warmup=args.warmup, measure=args.measure, drain_limit=2 * args.measure
        )
        result = system.run(
            WorkloadSpec(pattern=args.pattern, load=args.load, seed=args.seed), plan
        )
        print(format_kv(
            {
                "system": system.describe(),
                "workload": f"{args.pattern} @ {args.load} N_c",
                "throughput (pkt/node/cyc)": result.throughput,
                "offered (pkt/node/cyc)": result.offered,
                "avg latency (cycles)": result.avg_latency,
                "p99 latency (cycles)": result.p99_latency,
                "power (mW)": result.power_mw,
                "DBR grants": result.extra["grants"],
                "DPM transitions": result.extra["dpm_transitions"],
            },
            title="== E-RAPID run ==",
        ))
        return 0

    if args.command == "profile":
        import cProfile
        import io
        import pstats
        import time

        plan = MeasurementPlan(
            warmup=args.warmup, measure=args.measure, drain_limit=2 * args.measure
        )
        workload = WorkloadSpec(
            pattern=args.pattern, load=args.load, seed=args.seed
        )
        profiler = cProfile.Profile()
        if args.engine == "batch":
            from repro.core.batch import BatchEngine, coverage_gap
            from repro.core.config import ERapidConfig
            from repro.network.topology import ERapidTopology

            config = ERapidConfig(
                topology=ERapidTopology(
                    boards=args.boards, nodes_per_board=args.nodes
                ),
                policy=POLICIES[args.policy],
                seed=args.seed,
            )
            gap = coverage_gap(config, workload, plan)
            if gap is not None:
                print(
                    f"erapid profile: the batch engine does not cover this "
                    f"point ({gap})",
                    file=sys.stderr,
                )
                return 2
            batch = BatchEngine([(config, workload, plan)])
            start = time.perf_counter()
            profiler.enable()
            result = batch.run()[0]
            profiler.disable()
            elapsed = time.perf_counter() - start
            describe = (
                f"R(1,{args.boards},{args.nodes}) batch engine "
                f"[{args.policy}] (1-run slab)"
            )
            delivered = result.labeled_delivered
            flits = None
            events = 0
        elif args.engine == "detailed":
            from repro.core.config import ERapidConfig
            from repro.core.detailed import DetailedEngine
            from repro.network.topology import ERapidTopology

            policy = POLICIES[args.policy]
            if policy.dbr:
                print(
                    f"erapid profile: the detailed engine cannot run DBR "
                    f"policy {args.policy!r}; use --policy P-NB or NP-NB",
                    file=sys.stderr,
                )
                return 2
            config = ERapidConfig(
                topology=ERapidTopology(
                    boards=args.boards, nodes_per_board=args.nodes
                ),
                policy=policy,
                seed=args.seed,
            )
            detailed = DetailedEngine(config, workload, plan)
            start = time.perf_counter()
            profiler.enable()
            detailed.run()
            profiler.disable()
            elapsed = time.perf_counter() - start
            describe = (
                f"R(1,{args.boards},{args.nodes}) detailed engine "
                f"[{policy.name}]"
            )
            delivered = sum(
                s.packets_received for s in detailed.sink_nis.values()
            )
            flits = sum(r.flits_routed for r in detailed.routers)
            events = int(detailed.sim.event_count)
        else:
            system = ERapidSystem.build(
                boards=args.boards, nodes_per_board=args.nodes,
                policy=args.policy, seed=args.seed,
            )
            start = time.perf_counter()
            profiler.enable()
            system.run(workload, plan)
            profiler.disable()
            elapsed = time.perf_counter() - start
            engine = system.last_engine
            assert engine is not None
            describe = system.describe()
            delivered = sum(
                n.delivered for b in engine.boards for n in b.nodes
            )
            flits = None
            events = int(engine.sim.event_count)
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.sort_stats("cumulative").print_stats(args.top)
        print(buf.getvalue().rstrip())
        print()
        summary = {
            "system": describe,
            "workload": f"{args.pattern} @ {args.load} N_c",
            "wall time (s)": elapsed,
            "packets delivered": delivered,
            "events executed": events,
            "packets/sec": delivered / elapsed if elapsed > 0 else 0.0,
            "events/sec": events / elapsed if elapsed > 0 else 0.0,
        }
        if flits is not None:
            summary["flits routed"] = flits
            summary["flits/sec"] = flits / elapsed if elapsed > 0 else 0.0
        if args.engine == "batch" and batch.telemetry is not None:
            tel = batch.telemetry
            summary["cycles executed"] = tel.cycles_executed
            summary["cycles skipped"] = tel.cycles_skipped
            summary["skip ratio"] = tel.skip_ratio
        print(format_kv(summary, title="== profile summary =="))
        return 0

    if args.command == "sweep":
        from repro.experiments.figures import FigurePanel
        from repro.experiments.io import sweep_rows, write_csv
        from repro.experiments.sweep import SweepSpec

        loads = tuple(float(x) for x in args.loads.split(","))
        spec = SweepSpec(
            pattern=args.pattern, loads=loads, boards=args.boards,
            nodes_per_board=args.nodes,
        )

        def sweep_progress(policy: str, load: float, result) -> None:
            print(
                f"  {policy:>5} load={load:.1f} thr={result.throughput:.4f} "
                f"power={result.power_mw:.1f}mW"
            )

        if args.engine == "batch" and args.verbose:
            from repro.perf.shards import plan_shards

            print(
                plan_shards(
                    spec.tasks(), jobs=args.jobs, slab_shard=args.slab_shard
                ).describe()
            )
        panel = FigurePanel.run(
            spec, progress=sweep_progress, jobs=args.jobs, engine=args.engine,
            slab_shard=args.slab_shard,
        )
        print(panel.render())
        if args.csv:
            path = write_csv(args.csv, sweep_rows(panel.results))
            print(f"\nwrote {path}")
        return 0

    if args.command == "table1":
        from repro.experiments.table1 import render_table1, table1_checks

        table1_checks()
        print(render_table1())
        return 0

    if args.command == "fig3":
        from repro.experiments.fig3 import render_fig3, run_fig3

        print(render_fig3(run_fig3()))
        return 0

    if args.command == "reproduce":
        from repro.experiments.runner import reproduce_all

        loads = tuple(float(x) for x in args.loads.split(","))
        reproduce_all(
            args.out, loads=loads, jobs=args.jobs, cache=not args.no_cache,
            engine=args.engine,
        )
        return 0

    if args.command == "rwa":
        from repro.optics.rwa import StaticRWA

        rwa = StaticRWA(args.boards)
        rwa.validate()
        print(rwa.render_table())
        return 0

    if args.command == "ablate":
        from repro.experiments import ablations

        fn = {
            "window": ablations.ablate_window,
            "thresholds": ablations.ablate_thresholds,
            "levels": ablations.ablate_power_levels,
            "limited-dbr": ablations.ablate_limited_dbr,
            "smoothing": ablations.ablate_dpm_smoothing,
        }[args.which]
        _, table = fn()
        print(table)
        return 0

    if args.command == "cache":
        from repro.perf.cache import RunCache

        cache = RunCache(args.dir)
        if args.action == "path":
            print(cache.root)
            return 0
        if args.action == "clear":
            removed = cache.clear()
            cache.reset_counters()
            print(f"cleared {removed} entries from {cache.root}")
            return 0
        counters = cache.persistent_stats()
        lookups = counters["hits"] + counters["misses"]
        hit_rate = f"{counters['hits'] / lookups:.1%}" if lookups else "n/a"
        rows = {
            "path": str(cache.root),
            "entries": cache.entry_count(),
            "on-disk bytes": cache.disk_bytes(),
            "hits": counters["hits"],
            "misses": counters["misses"],
            "puts": counters["puts"],
            "hit rate": hit_rate,
            "batched gets": counters["batched_gets"],
            "batched puts": counters["batched_puts"],
        }
        if args.by_engine:
            for engine_name, bucket in cache.by_engine_stats().items():
                rows[f"{engine_name} entries"] = bucket["entries"]
                rows[f"{engine_name} bytes"] = bucket["bytes"]
        print(format_kv(rows, title="== run cache =="))
        return 0

    if args.command == "serve":
        from repro.perf.cache import RunCache
        from repro.service.artifacts import ArtifactStore
        from repro.service.orchestrator import SweepService
        from repro.service.spool import SpoolServer

        cache = RunCache(args.cache_dir)
        store = ArtifactStore(
            args.artifacts
            if args.artifacts is not None
            else str(Path(args.spool) / "artifacts-store")
        )
        service = SweepService(
            cache, store, jobs=args.jobs, queue_depth=args.queue_depth
        ).start()
        server = SpoolServer(args.spool, service, log=print)
        print(
            f"erapid serve: spool={server.spool} artifacts={store.root} "
            f"cache={cache.root} jobs={args.jobs} "
            f"queue-depth={args.queue_depth}"
        )
        try:
            if args.once:
                server.serve_once()
            else:
                server.serve_forever(
                    poll=args.poll, idle_exit=args.idle_exit
                )
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            print("interrupted; draining current job ...")
        finally:
            service.stop()
        return 0

    if args.command == "submit":
        import json

        from repro.errors import JobSpecError
        from repro.service.spec import JobSpec
        from repro.service.spool import submit_to_spool

        try:
            if args.spec is not None:
                data = json.loads(Path(args.spec).read_text(encoding="utf-8"))
                spec = JobSpec.from_dict(data)
            else:
                spec = JobSpec(
                    kind=args.kind,
                    pattern=args.pattern,
                    loads=tuple(float(x) for x in args.loads.split(",")),
                    policies=tuple(args.policies.split(",")),
                    boards=args.boards,
                    nodes_per_board=args.nodes,
                    seed=args.seed,
                    warmup=args.warmup,
                    measure=args.measure,
                    drain_limit=args.drain_limit,
                    priority=args.priority,
                    engine=args.engine,
                )
        except (OSError, ValueError, JobSpecError) as exc:
            print(f"erapid submit: bad job spec: {exc}", file=sys.stderr)
            return 2
        key = submit_to_spool(args.spool, spec)
        # Stdout is exactly the job key so shells can capture it.
        print(key)
        return 0

    if args.command == "jobs":
        import time as _time

        from repro.service.spool import list_statuses, read_status

        terminal = ("completed", "failed", "rejected", "invalid")
        if args.job is None:
            statuses = list_statuses(args.spool)
            if not statuses:
                print("no jobs in spool")
                return 0
            for s in statuses:
                counts = s.get("counts") or {}
                hit_note = (
                    f" hits={counts.get('hits')}/{counts.get('total')}"
                    if counts
                    else ""
                )
                shards = s.get("shards") or {}
                shard_note = (
                    f" shards={shards.get('batch')}"
                    f" covered={shards.get('batch_runs')}"
                    if shards
                    else ""
                )
                print(
                    f"{s.get('job_key', '?')[:12]}  "
                    f"{s.get('state', '?'):<9}  "
                    f"{s.get('kind', '?'):<5}  "
                    f"runs={s.get('runs_done', 0)}/{s.get('runs_total', '?')}"
                    f"{hit_note}{shard_note}"
                )
            return 0
        deadline = (
            _time.monotonic() + args.wait if args.wait is not None else None
        )
        while True:
            status = read_status(args.spool, args.job)
            state = status.get("state") if status else None
            if state in terminal:
                break
            if deadline is None or _time.monotonic() >= deadline:
                if args.wait is not None:
                    print(
                        f"erapid jobs: job {args.job[:12]} still "
                        f"{state or 'unknown'} after {args.wait}s",
                        file=sys.stderr,
                    )
                    return 1
                break
            _time.sleep(0.2)
        if status is None:
            print(f"erapid jobs: no such job {args.job!r}", file=sys.stderr)
            return 1
        print(format_kv(
            {k: status[k] for k in sorted(status)},
            title=f"== job {args.job[:12]} ==",
        ))
        return 0 if status.get("state") == "completed" else 1

    return 1  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
