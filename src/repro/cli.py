"""Command-line interface.

::

    erapid run       --pattern complement --policy P-B --load 0.5
    erapid profile   --pattern uniform --load 0.4 [--engine fast|detailed] [--top 25]
    erapid sweep     --pattern uniform --loads 0.1,0.3,0.5 [--jobs N] [--csv out.csv]
    erapid reproduce --out results/ [--jobs N] [--no-cache]
    erapid fig3
    erapid table1
    erapid rwa       --boards 8
    erapid ablate    --which window|thresholds|levels|limited-dbr|smoothing

(Also runnable as ``python -m repro``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.erapid import ERapidSystem
from repro.core.policies import POLICIES
from repro.metrics.collector import MeasurementPlan
from repro.metrics.report import format_kv
from repro.traffic.patterns import PATTERNS
from repro.traffic.workload import WorkloadSpec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="erapid",
        description="E-RAPID power-aware reconfigurable optical interconnect "
        "simulator (reproduction of Kodi & Louri, IPPS 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="one simulation run")
    run.add_argument("--pattern", default="uniform", choices=sorted(PATTERNS))
    run.add_argument("--policy", default="P-B", choices=sorted(POLICIES))
    run.add_argument("--load", type=float, default=0.5)
    run.add_argument("--boards", type=int, default=8)
    run.add_argument("--nodes", type=int, default=8)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--warmup", type=float, default=8000)
    run.add_argument("--measure", type=float, default=12000)

    prof = sub.add_parser(
        "profile", help="one run under cProfile (hot-path inspection)"
    )
    prof.add_argument("--pattern", default="uniform", choices=sorted(PATTERNS))
    prof.add_argument("--policy", default="P-B", choices=sorted(POLICIES))
    prof.add_argument("--load", type=float, default=0.4)
    prof.add_argument("--boards", type=int, default=8)
    prof.add_argument("--nodes", type=int, default=8)
    prof.add_argument("--seed", type=int, default=1)
    prof.add_argument("--warmup", type=float, default=2000)
    prof.add_argument("--measure", type=float, default=6000)
    prof.add_argument(
        "--engine", default="fast", choices=("fast", "detailed"),
        help="which engine to profile: the event-driven fast engine or the "
        "cycle-synchronous flit-level detailed engine (default: fast)",
    )
    prof.add_argument(
        "--top", type=int, default=25,
        help="rows of the cumulative-time table to print (default: 25)",
    )

    sweep = sub.add_parser("sweep", help="load sweep (one Figure 5/6 panel)")
    sweep.add_argument("--pattern", default="uniform", choices=sorted(PATTERNS))
    sweep.add_argument("--loads", default="0.1,0.3,0.5,0.7,0.9")
    sweep.add_argument("--boards", type=int, default=8)
    sweep.add_argument("--nodes", type=int, default=8)
    sweep.add_argument("--csv", default=None, help="write results to CSV")
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run the (policy x load) matrix in N worker processes "
        "(bit-identical to serial)",
    )

    sub.add_parser("table1", help="regenerate Table 1")
    sub.add_parser("fig3", help="design-space time series (Figure 3)")

    repro_cmd = sub.add_parser(
        "reproduce", help="regenerate every table and figure into a directory"
    )
    repro_cmd.add_argument("--out", default="results")
    repro_cmd.add_argument("--loads", default="0.1,0.3,0.5,0.7,0.9")
    repro_cmd.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep stage (bit-identical to serial)",
    )
    repro_cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed run cache "
        "($ERAPID_CACHE_DIR or ~/.cache/erapid/runs)",
    )

    rwa = sub.add_parser("rwa", help="print the static RWA (Figure 1)")
    rwa.add_argument("--boards", type=int, default=4)

    ablate = sub.add_parser("ablate", help="run an ablation study")
    ablate.add_argument(
        "--which",
        default="window",
        choices=["window", "thresholds", "levels", "limited-dbr", "smoothing"],
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "run":
        system = ERapidSystem.build(
            boards=args.boards, nodes_per_board=args.nodes, policy=args.policy,
            seed=args.seed,
        )
        plan = MeasurementPlan(
            warmup=args.warmup, measure=args.measure, drain_limit=2 * args.measure
        )
        result = system.run(
            WorkloadSpec(pattern=args.pattern, load=args.load, seed=args.seed), plan
        )
        print(format_kv(
            {
                "system": system.describe(),
                "workload": f"{args.pattern} @ {args.load} N_c",
                "throughput (pkt/node/cyc)": result.throughput,
                "offered (pkt/node/cyc)": result.offered,
                "avg latency (cycles)": result.avg_latency,
                "p99 latency (cycles)": result.p99_latency,
                "power (mW)": result.power_mw,
                "DBR grants": result.extra["grants"],
                "DPM transitions": result.extra["dpm_transitions"],
            },
            title="== E-RAPID run ==",
        ))
        return 0

    if args.command == "profile":
        import cProfile
        import io
        import pstats
        import time

        plan = MeasurementPlan(
            warmup=args.warmup, measure=args.measure, drain_limit=2 * args.measure
        )
        workload = WorkloadSpec(
            pattern=args.pattern, load=args.load, seed=args.seed
        )
        profiler = cProfile.Profile()
        if args.engine == "detailed":
            from repro.core.config import ERapidConfig
            from repro.core.detailed import DetailedEngine
            from repro.network.topology import ERapidTopology

            policy = POLICIES[args.policy]
            if policy.dbr:
                print(
                    f"erapid profile: the detailed engine cannot run DBR "
                    f"policy {args.policy!r}; use --policy P-NB or NP-NB",
                    file=sys.stderr,
                )
                return 2
            config = ERapidConfig(
                topology=ERapidTopology(
                    boards=args.boards, nodes_per_board=args.nodes
                ),
                policy=policy,
                seed=args.seed,
            )
            detailed = DetailedEngine(config, workload, plan)
            start = time.perf_counter()
            profiler.enable()
            detailed.run()
            profiler.disable()
            elapsed = time.perf_counter() - start
            describe = (
                f"R(1,{args.boards},{args.nodes}) detailed engine "
                f"[{policy.name}]"
            )
            delivered = sum(
                s.packets_received for s in detailed.sink_nis.values()
            )
            flits = sum(r.flits_routed for r in detailed.routers)
            events = int(detailed.sim.event_count)
        else:
            system = ERapidSystem.build(
                boards=args.boards, nodes_per_board=args.nodes,
                policy=args.policy, seed=args.seed,
            )
            start = time.perf_counter()
            profiler.enable()
            system.run(workload, plan)
            profiler.disable()
            elapsed = time.perf_counter() - start
            engine = system.last_engine
            assert engine is not None
            describe = system.describe()
            delivered = sum(
                n.delivered for b in engine.boards for n in b.nodes
            )
            flits = None
            events = int(engine.sim.event_count)
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.sort_stats("cumulative").print_stats(args.top)
        print(buf.getvalue().rstrip())
        print()
        summary = {
            "system": describe,
            "workload": f"{args.pattern} @ {args.load} N_c",
            "wall time (s)": elapsed,
            "packets delivered": delivered,
            "events executed": events,
            "packets/sec": delivered / elapsed if elapsed > 0 else 0.0,
            "events/sec": events / elapsed if elapsed > 0 else 0.0,
        }
        if flits is not None:
            summary["flits routed"] = flits
            summary["flits/sec"] = flits / elapsed if elapsed > 0 else 0.0
        print(format_kv(summary, title="== profile summary =="))
        return 0

    if args.command == "sweep":
        from repro.experiments.figures import FigurePanel
        from repro.experiments.io import sweep_rows, write_csv
        from repro.experiments.sweep import SweepSpec

        loads = tuple(float(x) for x in args.loads.split(","))
        spec = SweepSpec(
            pattern=args.pattern, loads=loads, boards=args.boards,
            nodes_per_board=args.nodes,
        )

        def sweep_progress(policy: str, load: float, result) -> None:
            print(
                f"  {policy:>5} load={load:.1f} thr={result.throughput:.4f} "
                f"power={result.power_mw:.1f}mW"
            )

        panel = FigurePanel.run(spec, progress=sweep_progress, jobs=args.jobs)
        print(panel.render())
        if args.csv:
            path = write_csv(args.csv, sweep_rows(panel.results))
            print(f"\nwrote {path}")
        return 0

    if args.command == "table1":
        from repro.experiments.table1 import render_table1, table1_checks

        table1_checks()
        print(render_table1())
        return 0

    if args.command == "fig3":
        from repro.experiments.fig3 import render_fig3, run_fig3

        print(render_fig3(run_fig3()))
        return 0

    if args.command == "reproduce":
        from repro.experiments.runner import reproduce_all

        loads = tuple(float(x) for x in args.loads.split(","))
        reproduce_all(
            args.out, loads=loads, jobs=args.jobs, cache=not args.no_cache
        )
        return 0

    if args.command == "rwa":
        from repro.optics.rwa import StaticRWA

        rwa = StaticRWA(args.boards)
        rwa.validate()
        print(rwa.render_table())
        return 0

    if args.command == "ablate":
        from repro.experiments import ablations

        fn = {
            "window": ablations.ablate_window,
            "thresholds": ablations.ablate_thresholds,
            "levels": ablations.ablate_power_levels,
            "limited-dbr": ablations.ablate_limited_dbr,
            "smoothing": ablations.ablate_dpm_smoothing,
        }[args.which]
        _, table = fn()
        print(table)
        return 0

    return 1  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
