"""Import-layering analyzer: the declared package DAG vs. the real imports.

The repo's packages form a layered architecture that PRs 1–4 made
load-bearing: the kernel (``repro.sim``) knows nothing above it, the
network substrate rides on the kernel, the optical plane rides on the
network, and the engines (``repro.core``) compose all of them.  The frozen
bit-identity oracles (``repro.perf.legacy*``) sit apart: **nothing outside
``repro.perf`` and ``tests/`` may import them**, so production code can
never grow a dependency on a module whose whole value is standing still.

This module checks that discipline from the *real* import graph, parsed
with :mod:`ast` (the code under analysis is never imported):

* :data:`LAYER_DAG` declares, per package, the set of packages it may
  import.  ``"*"`` marks the harness layers (``perf``, ``experiments``,
  ``cli``) that may import anything.
* :data:`MODULE_LAYERS` declares *tighter* module-scoped budgets that
  override the containing package's entry — e.g. ``repro.core.batch``
  may not import the network substrate or power package even though
  ``core`` as a whole may (the vectorized model is analytic by design).
* :data:`EDGE_ALLOWLIST` holds the few deliberate module-level exceptions
  (today: one type-only edge), each carrying a rationale.
* Any import of a ``repro.perf.legacy*`` module from outside
  ``repro.perf`` is a violation regardless of the DAG.

Run it with ``python -m repro.analysis layering`` (text/json/sarif).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.linter import module_name_for_path

__all__ = [
    "LAYER_DAG",
    "MODULE_LAYERS",
    "EDGE_ALLOWLIST",
    "ImportEdge",
    "LayerViolation",
    "collect_import_edges",
    "check_layering",
    "analyze_paths",
    "format_dag",
]

#: Wildcard marker: the package may import any repro package.
ANY = "*"

#: package -> packages it may import.  A package absent from this table is
#: an *undeclared layer*: every cross-package import from it is flagged, so
#: new packages must take an explicit position in the DAG.
LAYER_DAG: Dict[str, FrozenSet[str]] = {
    # Foundation: the exception hierarchy imports nothing.
    "errors": frozenset(),
    # The event kernel knows only the exceptions.
    "sim": frozenset({"errors"}),
    # The electrical substrate rides on the kernel.
    "network": frozenset({"sim", "errors"}),
    # The optical plane rides on the network — never directly on the
    # kernel (the `optics -> network -> sim` chain is strict edges).
    "optics": frozenset({"network", "errors"}),
    # Power models ride on the kernel's clocks/stats only.
    "power": frozenset({"sim", "errors"}),
    # Traffic generation feeds the network layer.
    "traffic": frozenset({"network", "sim", "errors"}),
    # Metrics observe runs; the one core dependence is type-only and
    # allowlisted below.
    "metrics": frozenset({"network", "sim", "errors"}),
    # The engines compose everything below them.
    "core": frozenset(
        {"metrics", "network", "optics", "power", "sim", "traffic", "errors"}
    ),
    # Reference fabrics compare against the engines.
    "baselines": frozenset(
        {"core", "metrics", "network", "power", "sim", "traffic", "errors"}
    ),
    # The correctness tooling may exercise the engines.
    "analysis": frozenset(
        {"core", "metrics", "network", "power", "sim", "traffic", "errors"}
    ),
    # The sweep service orchestrates the perf harness (executor + cache)
    # and builds run descriptions from the engine config layer; it rides
    # on analysis only for the sweep fingerprint it stamps into
    # manifests.  Deliberately *not* a wildcard layer: the service must
    # never import experiments (the one-shot figure harness) or power
    # internals — its contact with simulation semantics is exclusively
    # through declarative specs.
    "service": frozenset(
        {"analysis", "core", "errors", "metrics", "network", "perf", "sim",
         "traffic"}
    ),
    # Harness layers: may import anything.
    "experiments": frozenset({ANY}),
    "cli": frozenset({ANY}),
    "perf": frozenset({ANY}),
    # The root package re-exports the public surface.
    "repro": frozenset({ANY}),
    "__main__": frozenset({ANY}),
}

#: Module-scoped import budgets *tighter* than the containing package's
#: DAG entry.  A module listed here is checked against its own set (plus
#: :data:`EDGE_ALLOWLIST`) instead of the package entry; its own package
#: must be listed explicitly if same-package imports are allowed.
#:
#: * ``repro.core.batch`` — the vectorized struct-of-arrays sweep tier.
#:   It models power analytically and advances state on its own cycle
#:   grid, so it must never import the event-driven network substrate
#:   (``repro.network``) or the stateful power package (``repro.power``);
#:   growing such an import would mean the "vectorized" engine quietly
#:   re-entered scalar simulation territory.
#: * ``repro.core.skip`` — the batch engine's next-event computation and
#:   telemetry counters.  It is pure arithmetic over arrays the engine
#:   hands it, so it may import nothing from :mod:`repro` at all; an
#:   import appearing here would mean engine state leaked into what must
#:   stay a layout-independent helper.
MODULE_LAYERS: Dict[str, FrozenSet[str]] = {
    "repro.core.batch": frozenset(
        {"core", "errors", "metrics", "optics", "sim", "traffic"}
    ),
    "repro.core.skip": frozenset(),
}

#: Deliberate module-level exceptions to the package DAG, as
#: ``(importer module, imported module)`` pairs.  Keep this list short and
#: every entry justified:
#:
#: * ``repro.metrics.timeseries -> repro.core.engine`` — a
#:   ``TYPE_CHECKING``-guarded annotation-only import (the probe annotates
#:   the engine it samples); it never executes at runtime.
EDGE_ALLOWLIST: FrozenSet[Tuple[str, str]] = frozenset(
    {
        ("repro.metrics.timeseries", "repro.core.engine"),
    }
)

#: Module prefix of the frozen bit-identity oracles.
_LEGACY_PREFIX = "repro.perf.legacy"


@dataclass(frozen=True, slots=True)
class ImportEdge:
    """One repro-internal import statement in the scanned tree."""

    src_module: str
    dst_module: str
    path: str
    line: int


@dataclass(frozen=True, slots=True)
class LayerViolation:
    """One layering violation, pinned to the importing statement."""

    path: str
    line: int
    src_module: str
    dst_module: str
    kind: str  # "layer" | "legacy" | "undeclared" | "module"
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.kind.upper()} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "src_module": self.src_module,
            "dst_module": self.dst_module,
            "kind": self.kind,
            "message": self.message,
        }


def package_of(module: str) -> str:
    """The DAG layer a dotted ``repro...`` module belongs to."""
    parts = module.split(".")
    if len(parts) == 1:
        return "repro"
    return parts[1]


def _imported_modules(node: ast.AST, package: str) -> List[str]:
    """repro-internal modules named by one Import/ImportFrom node.

    ``package`` is the importer's *containing package* (the module itself
    for ``__init__`` files), used to resolve relative imports.
    """
    out: List[str] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name == "repro" or alias.name.startswith("repro."):
                out.append(alias.name)
    elif isinstance(node, ast.ImportFrom):
        mod = node.module or ""
        if node.level:
            # `from .x import y` -> package.x; each extra dot climbs one.
            base = package.split(".")
            base = base[: len(base) - (node.level - 1)]
            mod = ".".join(base + ([mod] if mod else []))
        if mod == "repro" or mod.startswith("repro."):
            out.append(mod)
    return out


def collect_import_edges(paths: Sequence[Path]) -> List[ImportEdge]:
    """Parse every ``repro``-tree file under ``paths`` into import edges.

    Files whose dotted module name cannot be derived (tests, benchmarks,
    fixtures) are skipped — the layering contract binds shipped code.
    """
    edges: List[ImportEdge] = []
    files: List[Path] = []
    for p in paths:
        if p.is_file() and p.suffix == ".py":
            files.append(p)
        elif p.is_dir():
            files.extend(
                f
                for f in p.rglob("*.py")
                if "__pycache__" not in f.parts and "fixtures" not in f.parts
            )
    for f in sorted(set(files)):
        module = module_name_for_path(f)
        if module is None:
            continue
        try:
            tree = ast.parse(f.read_text(encoding="utf-8"), filename=str(f))
        except (OSError, SyntaxError):
            continue
        rel = _relpath(f)
        package = (
            module if f.stem == "__init__" else module.rsplit(".", 1)[0]
        )
        for node in ast.walk(tree):
            for dst in _imported_modules(node, package):
                edges.append(
                    ImportEdge(
                        src_module=module,
                        dst_module=dst,
                        path=rel,
                        line=getattr(node, "lineno", 1),
                    )
                )
    return edges


def _relpath(path: Path) -> str:
    try:
        rel = path.resolve().relative_to(Path.cwd())
    except ValueError:
        rel = path
    return rel.as_posix()


def check_layering(
    edges: Iterable[ImportEdge],
    dag: Optional[Mapping[str, FrozenSet[str]]] = None,
    allowlist: Optional[FrozenSet[Tuple[str, str]]] = None,
    module_layers: Optional[Mapping[str, FrozenSet[str]]] = None,
) -> List[LayerViolation]:
    """Evaluate ``edges`` against the declared DAG and the legacy rule."""
    the_dag = LAYER_DAG if dag is None else dag
    the_allowlist = EDGE_ALLOWLIST if allowlist is None else allowlist
    the_module_layers = MODULE_LAYERS if module_layers is None else module_layers
    violations: List[LayerViolation] = []
    for edge in edges:
        src_pkg = package_of(edge.src_module)
        dst_pkg = package_of(edge.dst_module)
        if edge.dst_module.startswith(_LEGACY_PREFIX) and not (
            edge.src_module == "repro.perf"
            or edge.src_module.startswith("repro.perf.")
        ):
            violations.append(
                LayerViolation(
                    path=edge.path,
                    line=edge.line,
                    src_module=edge.src_module,
                    dst_module=edge.dst_module,
                    kind="legacy",
                    message=(
                        f"`{edge.src_module}` imports frozen oracle "
                        f"`{edge.dst_module}`; only repro.perf and tests/ "
                        "may touch legacy_* modules"
                    ),
                )
            )
            continue
        module_allowed = the_module_layers.get(edge.src_module)
        if module_allowed is not None:
            if (
                dst_pkg in module_allowed
                or (edge.src_module, edge.dst_module) in the_allowlist
            ):
                continue
            violations.append(
                LayerViolation(
                    path=edge.path,
                    line=edge.line,
                    src_module=edge.src_module,
                    dst_module=edge.dst_module,
                    kind="module",
                    message=(
                        f"`{edge.src_module}` has a module-scoped budget and "
                        f"may not import `{edge.dst_module}` ({dst_pkg}); "
                        f"allowed layers: {sorted(module_allowed) or 'none'}"
                    ),
                )
            )
            continue
        if src_pkg == dst_pkg:
            continue
        allowed = the_dag.get(src_pkg)
        if allowed is None:
            violations.append(
                LayerViolation(
                    path=edge.path,
                    line=edge.line,
                    src_module=edge.src_module,
                    dst_module=edge.dst_module,
                    kind="undeclared",
                    message=(
                        f"package `{src_pkg}` has no declared layer; add it "
                        "to repro.analysis.layering.LAYER_DAG"
                    ),
                )
            )
            continue
        if ANY in allowed or dst_pkg in allowed:
            continue
        if (edge.src_module, edge.dst_module) in the_allowlist:
            continue
        violations.append(
            LayerViolation(
                path=edge.path,
                line=edge.line,
                src_module=edge.src_module,
                dst_module=edge.dst_module,
                kind="layer",
                message=(
                    f"`{edge.src_module}` ({src_pkg}) may not import "
                    f"`{edge.dst_module}` ({dst_pkg}); allowed layers for "
                    f"{src_pkg}: {sorted(allowed) or 'none'}"
                ),
            )
        )
    return sorted(violations, key=lambda v: (v.path, v.line, v.dst_module))


def analyze_paths(paths: Sequence[Path]) -> Tuple[List[ImportEdge], List[LayerViolation]]:
    """Collect edges under ``paths`` and check them against the DAG."""
    edges = collect_import_edges(paths)
    return edges, check_layering(edges)


def format_dag() -> str:
    """Human-readable dump of the declared DAG (for docs and --print-dag)."""
    lines = ["declared layering DAG (package -> may import):"]
    for pkg in sorted(LAYER_DAG):
        allowed = LAYER_DAG[pkg]
        target = "anything" if ANY in allowed else (
            ", ".join(sorted(allowed)) or "nothing"
        )
        lines.append(f"  {pkg:<12} -> {target}")
    for module in sorted(MODULE_LAYERS):
        allowed = MODULE_LAYERS[module]
        lines.append(
            f"  {module} (module-scoped) -> "
            f"{', '.join(sorted(allowed)) or 'nothing'}"
        )
    lines.append(
        "  legacy rule: only repro.perf and tests/ may import "
        "repro.perf.legacy* (frozen oracles)"
    )
    return "\n".join(lines)
