"""SARIF 2.1.0 emitter for the analysis suite.

One shared result shape serves all three static passes (lint, layering,
frozen-manifest): CI uploads the SARIF log so findings render as GitHub
annotations on the offending line instead of a wall of job-log text.

Only the small, stable subset of SARIF that GitHub consumes is emitted:
``tool.driver`` with per-rule metadata, and one ``result`` per finding
with a single physical location.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.rules import RULES

__all__ = ["SarifResult", "sarif_log", "sarif_dumps"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Rule metadata for the non-lint passes (the lint pass contributes
#: SIM001–SIM011 from the registry).
_EXTRA_RULES: Dict[str, Dict[str, str]] = {
    "LAYER": {
        "name": "import-layering",
        "shortDescription": "import edge violates the declared package DAG",
        "help": (
            "See repro.analysis.layering.LAYER_DAG for the declared edges "
            "and EDGE_ALLOWLIST for sanctioned exceptions."
        ),
    },
    "LEGACY": {
        "name": "frozen-legacy-import",
        "shortDescription": "frozen legacy oracle imported outside repro.perf",
        "help": (
            "Only repro.perf and tests/ may import repro.perf.legacy* "
            "modules; production code must never depend on a frozen oracle."
        ),
    },
    "UNDECLARED": {
        "name": "undeclared-layer",
        "shortDescription": "package missing from the layering DAG",
        "help": "Add the package to repro.analysis.layering.LAYER_DAG.",
    },
    "FROZEN": {
        "name": "frozen-manifest",
        "shortDescription": "frozen oracle drifted from its pinned SHA-256",
        "help": (
            "repro/perf/legacy*.py are bit-identity oracles; restore the "
            "file or (only alongside a new equivalence gate) regenerate "
            "the manifest with --write-manifest."
        ),
    },
}


@dataclass(frozen=True, slots=True)
class SarifResult:
    """One finding in the shared SARIF shape."""

    rule_id: str
    message: str
    path: str
    line: int = 1
    level: str = "error"


def _rule_descriptors(used: Sequence[str]) -> List[Dict[str, object]]:
    descriptors: List[Dict[str, object]] = []
    for rule in RULES:
        if rule.code in used:
            descriptors.append(
                {
                    "id": rule.code,
                    "name": rule.title,
                    "shortDescription": {"text": rule.title},
                    "fullDescription": {"text": rule.rationale},
                    "help": {"text": rule.hint},
                }
            )
    for rule_id in sorted(set(used) - {r.code for r in RULES}):
        meta = _EXTRA_RULES.get(rule_id, {})
        descriptors.append(
            {
                "id": rule_id,
                "name": meta.get("name", rule_id),
                "shortDescription": {
                    "text": meta.get("shortDescription", rule_id)
                },
                "help": {"text": meta.get("help", "")},
            }
        )
    return descriptors


def sarif_log(
    results: Sequence[SarifResult],
    tool_name: str = "repro-analysis",
    tool_version: Optional[str] = None,
) -> Dict[str, object]:
    """Build one single-run SARIF log covering ``results``."""
    used = [r.rule_id for r in results]
    driver: Dict[str, object] = {
        "name": tool_name,
        "informationUri": "https://example.invalid/repro-analysis",
        "rules": _rule_descriptors(used),
    }
    if tool_version is not None:
        driver["version"] = tool_version
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": [
                    {
                        "ruleId": r.rule_id,
                        "level": r.level,
                        "message": {"text": r.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": r.path,
                                        "uriBaseId": "ROOTPATH",
                                    },
                                    "region": {"startLine": max(1, r.line)},
                                }
                            }
                        ],
                    }
                    for r in results
                ],
            }
        ],
    }


def sarif_dumps(results: Sequence[SarifResult], **kwargs: str) -> str:
    """JSON-serialize a SARIF log for ``results``."""
    return json.dumps(sarif_log(results, **kwargs), indent=2, sort_keys=False)
