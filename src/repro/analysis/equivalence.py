"""Statistical-equivalence harness: batch engine vs. scalar reference.

The vectorized :class:`~repro.core.batch.BatchEngine` consumes RNG streams
chunked, rounds service completions onto the integer cycle grid, and
measures labeled latency through a FIFO proxy — so except for the
bit-identical subset (permutation-pattern injection counts), its results
can only be *statistically* equivalent to :class:`~repro.core.engine.
FastEngine`.  This module is where that equivalence is declared, measured
and gated:

* :data:`DEFAULT_TOLERANCES` is the declared contract — one
  :class:`ToleranceSpec` per metric, each an absolute floor plus a
  relative band around the scalar reference.  The latency tolerance is
  wide (the FIFO proxy diverges near saturation) and applies only to runs
  the reference actually drained; throughput and power are tight.
* :func:`compare_runs` evaluates a candidate result list against a
  reference list pairwise and returns an :class:`EquivalenceReport` with
  the worst deviation per metric, every out-of-tolerance pair, and a
  :class:`MetricExclusion` for every (run, metric) pair a ``drained_only``
  tolerance skipped — no run leaves the check without a recorded reason.
* :func:`bit_identity_fingerprint` hashes the stream-identical fields so
  the bit-identical subset is asserted exactly, not approximately.

The batch benchmark (``BENCH_batch.json``) embeds a report over the full
144-point grid and CI hard-gates on ``report.ok``; the harness's own
failure modes are pinned by tests that perturb each metric past its
tolerance and require the gate to trip.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.metrics.collector import RunResult

__all__ = [
    "ToleranceSpec",
    "DEFAULT_TOLERANCES",
    "MetricDeviation",
    "MetricExclusion",
    "EquivalenceReport",
    "compare_runs",
    "bit_identity_fingerprint",
]


@dataclass(frozen=True, slots=True)
class ToleranceSpec:
    """Declared tolerance for one RunResult metric.

    A candidate value ``c`` is equivalent to a reference value ``r`` when
    ``|c - r| <= abs_tol + rel_tol * |r|``.  ``drained_only`` restricts
    the check to runs whose reference delivered every labeled packet —
    metrics that are undefined or proxy-skewed at saturation opt in.
    """

    metric: str
    rel_tol: float
    abs_tol: float
    drained_only: bool = False

    def limit(self, reference: float) -> float:
        return self.abs_tol + self.rel_tol * abs(reference)


#: The declared batch-vs-fast contract.  Calibrated against measured
#: worst-case deviations on mixed uniform/permutation grids (throughput
#: <=4.4% rel, power <=9.2% rel, latency <=21% rel on drained runs), with
#: headroom so seed-to-seed variation doesn't flake the gate while real
#: kernel regressions still trip it.
DEFAULT_TOLERANCES: Tuple[ToleranceSpec, ...] = (
    ToleranceSpec("throughput", rel_tol=0.08, abs_tol=0.0008),
    ToleranceSpec("avg_latency", rel_tol=0.40, abs_tol=30.0, drained_only=True),
    ToleranceSpec("power_mw", rel_tol=0.15, abs_tol=0.5),
)


@dataclass(frozen=True, slots=True)
class MetricDeviation:
    """One (run, metric) comparison against its declared tolerance."""

    metric: str
    index: int
    reference: float
    candidate: float
    deviation: float
    limit: float

    @property
    def ok(self) -> bool:
        return self.deviation <= self.limit

    def to_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "index": self.index,
            "reference": self.reference,
            "candidate": self.candidate,
            "deviation": self.deviation,
            "limit": self.limit,
            "ok": self.ok,
        }


@dataclass(frozen=True, slots=True)
class MetricExclusion:
    """Why one (run, metric) pair was left out of tolerance checking.

    Every skipped pair carries one of these, so an unchecked run is an
    auditable decision, never a silent blind spot: ``checked[metric] +
    len(excluded for metric) == total`` for every declared metric.
    """

    metric: str
    index: int
    reason: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "index": self.index,
            "reason": self.reason,
        }


@dataclass(frozen=True, slots=True)
class EquivalenceReport:
    """Outcome of one candidate-vs-reference comparison."""

    total: int
    #: metric -> number of run pairs actually checked (drained_only
    #: metrics skip saturated references).
    checked: Dict[str, int]
    #: metric -> the pair with the largest deviation/limit ratio.
    worst: Dict[str, MetricDeviation]
    failures: Tuple[MetricDeviation, ...]
    #: one entry per (run, metric) pair skipped, with its reason.
    excluded: Tuple[MetricExclusion, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "total": self.total,
            "checked": dict(self.checked),
            "worst": {m: d.to_dict() for m, d in sorted(self.worst.items())},
            "failures": [d.to_dict() for d in self.failures],
            "excluded": [e.to_dict() for e in self.excluded],
        }


def _drained(result: RunResult) -> bool:
    return (
        result.labeled_injected > 0
        and result.labeled_delivered == result.labeled_injected
    )


def compare_runs(
    reference: Sequence[RunResult],
    candidate: Sequence[RunResult],
    tolerances: Sequence[ToleranceSpec] = DEFAULT_TOLERANCES,
) -> EquivalenceReport:
    """Check ``candidate[i]`` against ``reference[i]`` for every tolerance.

    The sequences must align positionally (same grid, same order) — the
    harness compares run points, it does not match them up.
    """
    if len(reference) != len(candidate):
        raise ValueError(
            f"reference has {len(reference)} runs, candidate {len(candidate)}; "
            "the grids must align positionally"
        )
    checked: Dict[str, int] = {t.metric: 0 for t in tolerances}
    worst: Dict[str, MetricDeviation] = {}
    failures: List[MetricDeviation] = []
    excluded: List[MetricExclusion] = []
    for i, (ref, cand) in enumerate(zip(reference, candidate)):
        for tol in tolerances:
            if tol.drained_only and not _drained(ref):
                if ref.labeled_injected <= 0:
                    reason = (
                        "reference injected no labeled packets in the "
                        "measurement window"
                    )
                else:
                    reason = (
                        "reference undrained at drain_limit "
                        f"({ref.labeled_delivered}/{ref.labeled_injected} "
                        "labeled packets delivered)"
                    )
                excluded.append(
                    MetricExclusion(metric=tol.metric, index=i, reason=reason)
                )
                continue
            r = float(getattr(ref, tol.metric))
            c = float(getattr(cand, tol.metric))
            dev = MetricDeviation(
                metric=tol.metric,
                index=i,
                reference=r,
                candidate=c,
                deviation=abs(c - r),
                limit=tol.limit(r),
            )
            checked[tol.metric] += 1
            prev = worst.get(tol.metric)
            if prev is None or (
                dev.deviation * prev.limit > prev.deviation * dev.limit
            ):
                worst[tol.metric] = dev
            if not dev.ok:
                failures.append(dev)
    return EquivalenceReport(
        total=len(reference),
        checked=checked,
        worst=worst,
        failures=tuple(failures),
        excluded=tuple(excluded),
    )


def bit_identity_fingerprint(
    results: Sequence[RunResult],
    fields: Sequence[str] = ("offered", "labeled_injected"),
) -> str:
    """SHA-256 over the stream-identical fields of ``results``.

    For permutation patterns the batch engine's vectorized gap draws
    consume the PCG64 streams exactly like the scalar path, so injection-
    side quantities must match bit for bit — repr round-trips floats
    exactly, making this fingerprint an equality witness, not a hash of
    approximations.
    """
    digest = hashlib.sha256()
    for result in results:
        for name in fields:
            digest.update(name.encode("utf-8"))
            digest.update(b"=")
            digest.update(repr(getattr(result, name)).encode("utf-8"))
            digest.update(b";")
        digest.update(b"|")
    return digest.hexdigest()
