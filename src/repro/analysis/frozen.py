"""Frozen-legacy integrity manifest.

The bit-identity gates of PRs 2–4 compare the rewritten kernel and engines
against *frozen* copies of the pre-rewrite code:

* ``src/repro/perf/legacy.py`` — the pre-optimization event kernel,
* ``src/repro/perf/legacy_engine.py`` — the coroutine FastEngine,
* ``src/repro/perf/legacy_detailed.py`` — the process-per-NI detailed
  engine.

Those files are *oracles*: their entire value is standing still.  A
drive-by edit to one of them would make the equivalence gates compare the
live code against a moved goalpost — a behavior change could launder
itself past every bit-identity test while all of CI stays green.

This module pins each oracle's SHA-256 content fingerprint in a tracked
manifest (``analysis-frozen.json`` at the repo root) and verifies it in
``make check`` and CI.  Regenerating the manifest requires the explicit
``--write-manifest`` flag — legitimate **only** alongside a new frozen
copy and a new equivalence gate, never to absorb an edit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

__all__ = [
    "FROZEN_FILES",
    "FrozenMismatch",
    "file_digest",
    "compute_manifest",
    "write_manifest",
    "load_manifest",
    "verify_manifest",
]

#: Repo-root-relative paths of the frozen bit-identity oracles.
FROZEN_FILES: Tuple[str, ...] = (
    "src/repro/perf/legacy.py",
    "src/repro/perf/legacy_engine.py",
    "src/repro/perf/legacy_detailed.py",
)

_FORMAT_VERSION = 1

_COMMENT = (
    "SHA-256 fingerprints of the frozen bit-identity oracles "
    "(repro/perf/legacy*.py). Verified by `python -m repro.analysis "
    "frozen`; regenerate with --write-manifest ONLY alongside a new "
    "equivalence gate, never to absorb an edit to a frozen file."
)


@dataclass(frozen=True, slots=True)
class FrozenMismatch:
    """One integrity failure: a frozen file or manifest entry drifted."""

    path: str
    kind: str  # "hash-mismatch" | "missing-file" | "missing-entry" | "stale-entry" | "missing-manifest"
    expected: str
    actual: str

    def format(self) -> str:
        return (
            f"{self.path}: {self.kind} (expected {self.expected or '-'}, "
            f"got {self.actual or '-'})"
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "kind": self.kind,
            "expected": self.expected,
            "actual": self.actual,
        }


def file_digest(path: Path) -> str:
    """``sha256:<hex>`` over the file's raw bytes."""
    return "sha256:" + hashlib.sha256(path.read_bytes()).hexdigest()


def compute_manifest(root: Path) -> Dict[str, str]:
    """Current fingerprints of every frozen file under ``root``."""
    out: Dict[str, str] = {}
    for rel in FROZEN_FILES:
        p = root / rel
        if p.exists():
            out[rel] = file_digest(p)
    return out


def write_manifest(root: Path, manifest_path: Path) -> Dict[str, str]:
    """Regenerate the manifest file; returns the written fingerprints."""
    files = compute_manifest(root)
    payload = {
        "version": _FORMAT_VERSION,
        "comment": _COMMENT,
        "files": {rel: files[rel] for rel in sorted(files)},
    }
    manifest_path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return files


def load_manifest(manifest_path: Path) -> Dict[str, str]:
    """Read a manifest file's ``files`` table (raises ValueError if bad)."""
    data = json.loads(manifest_path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or not isinstance(data.get("files"), dict):
        raise ValueError(f"malformed frozen manifest {manifest_path}")
    return {str(k): str(v) for k, v in data["files"].items()}


def verify_manifest(root: Path, manifest_path: Path) -> List[FrozenMismatch]:
    """Compare on-disk frozen files against the tracked manifest.

    Returns an empty list when every oracle matches its pinned
    fingerprint, the manifest covers exactly :data:`FROZEN_FILES`, and no
    frozen file is missing from disk.
    """
    if not manifest_path.exists():
        return [
            FrozenMismatch(
                path=str(manifest_path),
                kind="missing-manifest",
                expected="tracked manifest file",
                actual="absent",
            )
        ]
    recorded = load_manifest(manifest_path)
    mismatches: List[FrozenMismatch] = []
    for rel in FROZEN_FILES:
        p = root / rel
        expected = recorded.get(rel, "")
        if not p.exists():
            mismatches.append(
                FrozenMismatch(
                    path=rel,
                    kind="missing-file",
                    expected=expected,
                    actual="absent",
                )
            )
            continue
        actual = file_digest(p)
        if not expected:
            mismatches.append(
                FrozenMismatch(
                    path=rel,
                    kind="missing-entry",
                    expected="",
                    actual=actual,
                )
            )
        elif actual != expected:
            mismatches.append(
                FrozenMismatch(
                    path=rel,
                    kind="hash-mismatch",
                    expected=expected,
                    actual=actual,
                )
            )
    for rel in sorted(set(recorded) - set(FROZEN_FILES)):
        mismatches.append(
            FrozenMismatch(
                path=rel,
                kind="stale-entry",
                expected=recorded[rel],
                actual="not a frozen file",
            )
        )
    return mismatches
