"""The simulation-invariant rule registry.

Each rule has a stable code (``SIM001``…), a one-line title, a rationale
docstring, an autofix hint, and a *scope* — the set of module prefixes the
rule applies to.  Scoping matters: wall-clock time is fine in an experiment
runner's progress log but poison inside the event kernel, so SIM001 only
fires in the simulation packages.

A finding can be suppressed on one line with ``# sim-lint: ignore`` or
``# sim-lint: ignore[SIM004]``; suppressions are for the rare deliberate
exception and should carry a neighbouring comment saying why.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["Rule", "RULES", "rule_for"]

#: Module prefixes that make up the deterministic simulation core: code here
#: executes inside (or feeds state into) the event kernel's run loop.
SIM_CORE_PREFIXES: Tuple[str, ...] = (
    "repro.sim",
    "repro.core",
    "repro.network",
    "repro.optics",
)

#: Hot-path modules: objects instantiated per packet/flit/event.  Dataclasses
#: here must declare ``slots=True`` (SIM006).
HOT_PATH_PREFIXES: Tuple[str, ...] = (
    "repro.sim",
    "repro.network",
    "repro.core",
)

#: Modules whose *plain* (non-dataclass) classes must also declare
#: ``__slots__`` in the class body (SIM006).  Narrower than
#: HOT_PATH_PREFIXES: the network substrate is instantiated per
#: router/VC/arbiter at build time and touched every simulated cycle, so
#: attribute access dominates; repro.sim/repro.core keep open classes for
#: their extension points.
SLOTTED_CLASS_PREFIXES: Tuple[str, ...] = ("repro.network",)

#: Everything shipped under ``repro.`` except the tooling itself.
REPRO_PREFIXES: Tuple[str, ...] = ("repro",)


@dataclass(frozen=True, slots=True)
class Rule:
    """One lint rule: code, summary, rationale and autofix hint."""

    code: str
    title: str
    rationale: str
    hint: str
    #: Module prefixes the rule applies to; ``None`` means every file.
    scope: Optional[Tuple[str, ...]] = None

    def applies_to(self, module: Optional[str]) -> bool:
        """Whether this rule is active for ``module`` (dotted name)."""
        if self.scope is None:
            return True
        if module is None:
            return False
        return any(
            module == p or module.startswith(p + ".") for p in self.scope
        )


RULES: Tuple[Rule, ...] = (
    Rule(
        code="SIM001",
        title="wall-clock source in simulation code",
        rationale=(
            "Simulation code must be a pure function of (config, seed).  "
            "`time.time`, `time.perf_counter`, `time.monotonic`, "
            "`datetime.now` and friends leak host wall-clock state into the "
            "run, silently breaking bit-reproducibility of every figure."
        ),
        hint=(
            "Use the simulation clock (`sim.now`) for model time; keep "
            "wall-clock profiling in the experiment runner layer "
            "(repro.experiments) or behind a benchmark harness."
        ),
        scope=SIM_CORE_PREFIXES,
    ),
    Rule(
        code="SIM002",
        title="randomness outside RngRegistry streams",
        rationale=(
            "All stochastic draws must flow through a named "
            "`RngRegistry.stream(...)` generator so that common random "
            "numbers hold across the four NP/P × NB/B configurations.  Bare "
            "`random.*`, `np.random.default_rng()` and the global "
            "`np.random.*` state are unseeded (or shared), so one extra "
            "draw anywhere perturbs every downstream result."
        ),
        hint=(
            "Accept an `np.random.Generator` parameter and have the caller "
            "pass `registry.stream('<entity name>')`."
        ),
        scope=REPRO_PREFIXES,
    ),
    Rule(
        code="SIM003",
        title="mutable default argument",
        rationale=(
            "A mutable default (`[]`, `{}`, `set()`, …) is created once at "
            "def time and shared by every call — state leaks across "
            "simulation runs that must be independent."
        ),
        hint="Default to None and create the object inside the function body.",
        scope=None,
    ),
    Rule(
        code="SIM004",
        title="float equality on simulation timestamps",
        rationale=(
            "Simulation time is a float; `==`/`!=` on timestamps works until "
            "someone introduces a fractional latency, then events silently "
            "stop matching.  Windows and phases must use ordered "
            "comparisons (`<=`, `<`) or integer cycle counts."
        ),
        hint=(
            "Compare with <=/< against phase boundaries, or use "
            "`math.isclose` where approximate coincidence is really meant."
        ),
        scope=REPRO_PREFIXES,
    ),
    Rule(
        code="SIM005",
        title="kernel re-entry from a callback or process",
        rationale=(
            "`Simulator.run()` is not reentrant: calling it from an event "
            "callback or a process generator re-enters the dispatch loop "
            "mid-event and corrupts the (time, priority, FIFO) total order.  "
            "Only top-level drivers may pump the kernel."
        ),
        hint=(
            "Return control to the kernel (yield a waitable / schedule an "
            "event) instead of calling run() from model code."
        ),
        scope=None,
    ),
    Rule(
        code="SIM006",
        title="hot-path class without slots",
        rationale=(
            "Packets, flits, events and trace rows are instantiated millions "
            "of times per run, and the network substrate's routers, VCs and "
            "arbiters are touched every simulated cycle; a __dict__ per "
            "instance costs memory and cache misses, and open attribute "
            "namespaces hide typos that determinism tests can't see.  "
            "Dataclasses anywhere on the hot path must declare slots=True; "
            "plain classes in the network substrate "
            "(SLOTTED_CLASS_PREFIXES) must define __slots__ in the class "
            "body."
        ),
        hint=(
            "Declare the dataclass with @dataclass(slots=True, ...), or add "
            "a __slots__ tuple to the class body."
        ),
        scope=HOT_PATH_PREFIXES,
    ),
)

_BY_CODE = {r.code: r for r in RULES}


def rule_for(code: str) -> Rule:
    """Look up a rule by its ``SIMxxx`` code."""
    return _BY_CODE[code]
