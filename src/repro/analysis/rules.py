"""The simulation-invariant rule registry.

Each rule has a stable code (``SIM001``…), a one-line title, a rationale
docstring, an autofix hint, and a *scope* — the set of module prefixes the
rule applies to.  Scoping matters: wall-clock time is fine in an experiment
runner's progress log but poison inside the event kernel, so SIM001 only
fires in the simulation packages.

A finding can be suppressed on one line with ``# sim-lint: ignore`` or
``# sim-lint: ignore[SIM004]``; suppressions are for the rare deliberate
exception and should carry a neighbouring comment saying why.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["Rule", "RULES", "rule_for"]

#: Module prefixes that make up the deterministic simulation core: code here
#: executes inside (or feeds state into) the event kernel's run loop.
SIM_CORE_PREFIXES: Tuple[str, ...] = (
    "repro.sim",
    "repro.core",
    "repro.network",
    "repro.optics",
)

#: Hot-path modules: objects instantiated per packet/flit/event.  Dataclasses
#: here must declare ``slots=True`` (SIM006).
HOT_PATH_PREFIXES: Tuple[str, ...] = (
    "repro.sim",
    "repro.network",
    "repro.core",
)

#: Modules whose *plain* (non-dataclass) classes must also declare
#: ``__slots__`` in the class body (SIM006).  Narrower than
#: HOT_PATH_PREFIXES: the network substrate is instantiated per
#: router/VC/arbiter at build time and touched every simulated cycle, so
#: attribute access dominates; repro.sim/repro.core keep open classes for
#: their extension points.
SLOTTED_CLASS_PREFIXES: Tuple[str, ...] = ("repro.network",)

#: Everything shipped under ``repro.`` except the tooling itself.
REPRO_PREFIXES: Tuple[str, ...] = ("repro",)

#: Engine packages whose run-loop state feeds the kernel's event order
#: (SIM007/SIM010): iteration-order and same-timestamp ambiguity here
#: silently reorders events.
ENGINE_PREFIXES: Tuple[str, ...] = (
    "repro.sim",
    "repro.core",
    "repro.network",
)

#: The engine scope plus the batch slab orchestrator.  The vectorized
#: batch tier made ``repro.perf.executor`` engine-adjacent: it groups run
#: grids into slab dicts (iteration order is part of the result contract)
#: and is the most likely first home of a stray vectorized draw; PR 9
#: moved the slab-grouping/shard-planning half into ``repro.perf.shards``,
#: which inherits the scope for the same reason.  SIM007 uses this as its
#: scope; SIM008's vectorized-draw check (`size=` draws on an rng-ish
#: receiver) is confined to it.
VECTOR_ENGINE_PREFIXES: Tuple[str, ...] = ENGINE_PREFIXES + (
    "repro.perf.executor",
    "repro.perf.shards",
)

#: Simulation state packages for SIM009: everything that executes inside a
#: run or computes its results.  Benchmarks, the CLI and the experiment
#: runner are exempt *by omission* — host environment reads are fine in
#: harness code.
SIM_STATE_PREFIXES: Tuple[str, ...] = SIM_CORE_PREFIXES + (
    "repro.traffic",
    "repro.power",
    "repro.metrics",
)

#: The cycle-synchronous clock loop (SIM011): PR 4 established integer
#: timestamp discipline here — tick times are integral-valued floats and
#: may never acquire fractional parts through arithmetic.
CYCLE_PREFIXES: Tuple[str, ...] = ("repro.sim.cycle",)


@dataclass(frozen=True, slots=True)
class Rule:
    """One lint rule: code, summary, rationale and autofix hint."""

    code: str
    title: str
    rationale: str
    hint: str
    #: Module prefixes the rule applies to; ``None`` means every file.
    scope: Optional[Tuple[str, ...]] = None
    #: Module prefixes *inside* the scope where the rule stays silent
    #: (e.g. SIM008 is exempt in repro.sim.rng — the one sanctioned home
    #: of RNG machinery).
    exempt: Tuple[str, ...] = ()

    def applies_to(self, module: Optional[str]) -> bool:
        """Whether this rule is active for ``module`` (dotted name)."""
        if module is not None and any(
            module == p or module.startswith(p + ".") for p in self.exempt
        ):
            return False
        if self.scope is None:
            return True
        if module is None:
            return False
        return any(
            module == p or module.startswith(p + ".") for p in self.scope
        )


RULES: Tuple[Rule, ...] = (
    Rule(
        code="SIM001",
        title="wall-clock source in simulation code",
        rationale=(
            "Simulation code must be a pure function of (config, seed).  "
            "`time.time`, `time.perf_counter`, `time.monotonic`, "
            "`datetime.now` and friends leak host wall-clock state into the "
            "run, silently breaking bit-reproducibility of every figure."
        ),
        hint=(
            "Use the simulation clock (`sim.now`) for model time; keep "
            "wall-clock profiling in the experiment runner layer "
            "(repro.experiments) or behind a benchmark harness."
        ),
        scope=SIM_CORE_PREFIXES,
    ),
    Rule(
        code="SIM002",
        title="randomness outside RngRegistry streams",
        rationale=(
            "All stochastic draws must flow through a named "
            "`RngRegistry.stream(...)` generator so that common random "
            "numbers hold across the four NP/P × NB/B configurations.  Bare "
            "`random.*`, `np.random.default_rng()` and the global "
            "`np.random.*` state are unseeded (or shared), so one extra "
            "draw anywhere perturbs every downstream result."
        ),
        hint=(
            "Accept an `np.random.Generator` parameter and have the caller "
            "pass `registry.stream('<entity name>')`."
        ),
        scope=REPRO_PREFIXES,
    ),
    Rule(
        code="SIM003",
        title="mutable default argument",
        rationale=(
            "A mutable default (`[]`, `{}`, `set()`, …) is created once at "
            "def time and shared by every call — state leaks across "
            "simulation runs that must be independent."
        ),
        hint="Default to None and create the object inside the function body.",
        scope=None,
    ),
    Rule(
        code="SIM004",
        title="float equality on simulation timestamps",
        rationale=(
            "Simulation time is a float; `==`/`!=` on timestamps works until "
            "someone introduces a fractional latency, then events silently "
            "stop matching.  Windows and phases must use ordered "
            "comparisons (`<=`, `<`) or integer cycle counts."
        ),
        hint=(
            "Compare with <=/< against phase boundaries, or use "
            "`math.isclose` where approximate coincidence is really meant."
        ),
        scope=REPRO_PREFIXES,
    ),
    Rule(
        code="SIM005",
        title="kernel re-entry from a callback or process",
        rationale=(
            "`Simulator.run()` is not reentrant: calling it from an event "
            "callback or a process generator re-enters the dispatch loop "
            "mid-event and corrupts the (time, priority, FIFO) total order.  "
            "Only top-level drivers may pump the kernel."
        ),
        hint=(
            "Return control to the kernel (yield a waitable / schedule an "
            "event) instead of calling run() from model code."
        ),
        scope=None,
    ),
    Rule(
        code="SIM006",
        title="hot-path class without slots",
        rationale=(
            "Packets, flits, events and trace rows are instantiated millions "
            "of times per run, and the network substrate's routers, VCs and "
            "arbiters are touched every simulated cycle; a __dict__ per "
            "instance costs memory and cache misses, and open attribute "
            "namespaces hide typos that determinism tests can't see.  "
            "Dataclasses anywhere on the hot path must declare slots=True; "
            "plain classes in the network substrate "
            "(SLOTTED_CLASS_PREFIXES) must define __slots__ in the class "
            "body."
        ),
        hint=(
            "Declare the dataclass with @dataclass(slots=True, ...), or add "
            "a __slots__ tuple to the class body."
        ),
        scope=HOT_PATH_PREFIXES,
    ),
    Rule(
        code="SIM007",
        title="iteration over an unordered or history-ordered container",
        rationale=(
            "Engine state feeds the kernel's (time, priority, FIFO) event "
            "order, so *what order you touch things in* is part of the "
            "result.  set/frozenset iterate in hash order (PYTHONHASHSEED-"
            "dependent for strings), and dict.keys()/.values() iterate in "
            "construction-history order — both change silently when "
            "unrelated code is refactored, which is exactly the drift the "
            "same-seed auditor can only catch after the fact.  The batch "
            "slab orchestrator (repro.perf.executor) is in scope for the "
            "same reason: slab grouping iterates dicts whose order must be "
            "provably immaterial to results."
        ),
        hint=(
            "Iterate `sorted(...)` over the keys (then index), or suppress "
            "with `# sim-lint: ignore[SIM007]` plus a comment proving the "
            "body is order-insensitive."
        ),
        scope=VECTOR_ENGINE_PREFIXES,
    ),
    Rule(
        code="SIM008",
        title="RNG machinery constructed outside repro.sim.rng",
        rationale=(
            "Every stochastic draw must route through a named "
            "`RngRegistry.stream(...)` generator.  SIM002 bans unseeded "
            "draws; SIM008 closes the remaining hole: hand-built seeded "
            "machinery (`np.random.Generator`, `SeedSequence`, `PCG64`, "
            "bare `Random()`) outside :mod:`repro.sim.rng` creates streams "
            "the registry cannot see, so they escape the common-random-"
            "numbers discipline and the spawn-key collision guarantees.  "
            "In the engine scope (VECTOR_ENGINE_PREFIXES) the rule also "
            "flags *vectorized* draws — `rng.<dist>(..., size=n)` on an "
            "rng-ish receiver — because bulk draws must go through the "
            "chunk-consistent helpers in repro.sim.rng "
            "(`geometric_gap_array`, `integer_array`) or the scalar and "
            "batch engines stop consuming streams identically."
        ),
        hint=(
            "Accept an `np.random.Generator` parameter and have the caller "
            "pass `registry.stream('<entity name>')`; only repro.sim.rng "
            "may construct generator machinery.  For bulk draws in engine "
            "code, use repro.sim.rng.geometric_gap_array / integer_array "
            "instead of direct `size=` draws."
        ),
        scope=REPRO_PREFIXES,
        exempt=("repro.sim.rng",),
    ),
    Rule(
        code="SIM009",
        title="host environment read in simulation state code",
        rationale=(
            "A run must be a pure function of (config, seed).  "
            "`os.environ`/`os.getenv` leak per-host configuration and "
            "`os.urandom` leaks entropy into simulation state, so the same "
            "seed stops meaning the same run.  Wall-clock calls in the "
            "simulation-state packages outside SIM001's core scope "
            "(traffic, power, metrics) are flagged here for the same "
            "reason.  Benchmarks, the CLI and the experiment harness are "
            "exempt by path, and the sweep service (repro.service) is "
            "exempt explicitly — a long-running server legitimately reads "
            "wall clock and environment (spool paths, cache dirs, audit "
            "timestamps); determinism lives below it, in the runs it "
            "schedules."
        ),
        hint=(
            "Thread configuration through ERapidConfig/WorkloadSpec and "
            "read the environment in the harness layer (repro.perf, "
            "repro.cli, repro.experiments, repro.service) only."
        ),
        scope=SIM_STATE_PREFIXES,
        exempt=("repro.service",),
    ),
    Rule(
        code="SIM010",
        title="zero-delay p0 event in engine code",
        rationale=(
            "`schedule(0.0, ...)`/`schedule_fast(0.0, ...)` enqueue at "
            "priority 0, *ahead* of every pending continuation at the same "
            "timestamp — the same-time ordering ambiguity PR 3 and PR 4 "
            "fixed by hand.  Engine-layer same-instant hops must use the "
            "priority-1 continuation class so cascades replay in FIFO "
            "order regardless of who scheduled first."
        ),
        hint=(
            "Use `sim.schedule_late(0.0, ...)` for same-instant engine "
            "continuations; literal zero-delay p0 scheduling belongs only "
            "to the kernel's own wakeup machinery (repro.sim)."
        ),
        scope=("repro.core", "repro.network"),
    ),
    Rule(
        code="SIM011",
        title="fractional float arithmetic on cycle counters",
        rationale=(
            "The cycle-synchronous clock loop keeps every tick time on the "
            "integer cycle grid (integral-valued floats); PR 4's router "
            "phases are only correct under that discipline.  True division "
            "on a cycle/time counter, or combining one with a fractional "
            "float constant, silently moves ticks off the grid where "
            "`now.is_integer()` gating and DueQueue monotonicity break."
        ),
        hint=(
            "Keep cycle arithmetic on integers or integral floats: use "
            "`//`, integer constants, or pre-scaled integral steps; never "
            "`/` or fractional literals on a tick/cycle counter."
        ),
        scope=CYCLE_PREFIXES,
    ),
)

_BY_CODE = {r.code: r for r in RULES}


def rule_for(code: str) -> Rule:
    """Look up a rule by its ``SIMxxx`` code."""
    return _BY_CODE[code]
