"""Ratchet baseline for lint findings.

The baseline file (``analysis-baseline.json`` at the repo root) records the
findings that existed when the linter was introduced.  The ratchet rule:

* a finding **not** in the baseline fails the build (no new debt), and
* a baseline entry that no longer reproduces is *stale* — the expectation
  is that it is removed (``--write-baseline``), so the file only ever
  shrinks.

Keys are ``path:CODE:line`` with repo-relative forward-slash paths, so the
file is stable across machines: :meth:`Baseline.write` normalizes every
path component to POSIX separators and orders entries by
``(rule, path, line)`` with the line compared *numerically* — re-writing
an unchanged baseline is byte-stable on every platform.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path, PureWindowsPath
from typing import FrozenSet, List, Sequence, Tuple

from repro.analysis.linter import Finding

__all__ = ["Baseline", "RatchetResult", "baseline_sort_key", "normalize_key"]

_FORMAT_VERSION = 1


def normalize_key(key: str) -> str:
    """Canonicalize one ``path:CODE:line`` key to POSIX path separators."""
    try:
        path, code, line = key.rsplit(":", 2)
    except ValueError:
        return key
    return f"{PureWindowsPath(path).as_posix()}:{code}:{line}"


def baseline_sort_key(key: str) -> Tuple[str, str, int, str]:
    """Sort key ordering entries by ``(rule, path, numeric line)``.

    A plain lexical sort puts line 10 before line 9; parsing the trailing
    line number keeps the file's ordering meaningful (and byte-stable, so
    baseline diffs only ever show real entry changes).  Malformed keys
    sort last, lexically.
    """
    try:
        path, code, line = key.rsplit(":", 2)
        return (code, path, int(line), "")
    except ValueError:
        return ("￿", "", 0, key)


@dataclass(frozen=True, slots=True)
class RatchetResult:
    """Outcome of comparing current findings against the baseline."""

    #: Findings not covered by the baseline — these fail the gate.
    new: List[Finding] = field(default_factory=list)
    #: Findings covered by the baseline — tolerated, ratcheted debt.
    known: List[Finding] = field(default_factory=list)
    #: Baseline keys that no longer reproduce — remove via --write-baseline.
    stale: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.new


@dataclass(frozen=True, slots=True)
class Baseline:
    """An immutable set of tolerated finding keys."""

    keys: FrozenSet[str] = frozenset()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or "findings" not in data:
            raise ValueError(f"malformed baseline file {path}")
        return cls(keys=frozenset(str(k) for k in data["findings"]))

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        return cls(keys=frozenset(f.key for f in findings))

    def write(self, path: Path) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "comment": (
                "Ratchet baseline for `python -m repro.analysis lint`. "
                "Entries may only ever be removed; new findings must be "
                "fixed, not added here."
            ),
            "findings": sorted(
                (normalize_key(k) for k in self.keys), key=baseline_sort_key
            ),
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def ratchet(self, findings: Sequence[Finding]) -> RatchetResult:
        """Split ``findings`` into new vs. known and report stale keys."""
        new = [f for f in findings if f.key not in self.keys]
        known = [f for f in findings if f.key in self.keys]
        present = {f.key for f in findings}
        stale = sorted(self.keys - present)
        return RatchetResult(new=new, known=known, stale=stale)
