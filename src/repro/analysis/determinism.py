"""Determinism auditor — a race detector for the event kernel.

The reproduction's figures are diffs between seeded runs, so any hidden
nondeterminism (dict/set iteration order, ``id()``-keyed containers, global
RNG state, wall-clock leakage) silently corrupts every result.  The auditor
exercises **both engines** — the abstract :class:`FastEngine` on a small
16-node experiment and the cycle-synchronous flit-level
:class:`DetailedEngine` on a 4-node platform — two ways each:

1. twice under the same seed with the default event-insertion order — the
   two runs must produce *bit-identical* trace streams and metric
   summaries; and
2. twice under the same seed with a **permuted event-insertion order**
   (process registration and channel start-up order are deterministically
   shuffled) — the permuted schedule must itself be bit-repeatable.

Run 2 is the race detector: a simulation whose behaviour is a pure function
of the kernel's ``(time, priority, FIFO)`` total order repeats exactly even
when same-time events were *inserted* in a different order, while code that
leans on incidental iteration order diverges.

The comparison is a SHA-256 digest over the canonicalized trace stream plus
the metric summary, with a first-divergence diff for humans.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.core.config import ControlParams, ERapidConfig
from repro.core.detailed import DetailedEngine
from repro.core.engine import FastEngine
from repro.core.policies import make_policy
from repro.metrics.collector import MeasurementPlan, RunResult
from repro.network.topology import ERapidTopology
from repro.sim.trace import TraceLog
from repro.traffic.workload import WorkloadSpec

__all__ = [
    "RunFingerprint",
    "AuditCheck",
    "AuditReport",
    "audit",
    "simulate_fingerprint",
    "simulate_detailed_fingerprint",
    "sweep_fingerprint",
    "fingerprint_parts",
    "check_repeatable",
    "compare_fingerprints",
]

_T = TypeVar("_T")


@dataclass(frozen=True, slots=True)
class RunFingerprint:
    """Canonical, comparable record of one simulation run."""

    digest: str
    metrics: Tuple[Tuple[str, str], ...]
    trace_lines: Tuple[str, ...]

    @property
    def metric_dict(self) -> Dict[str, str]:
        return dict(self.metrics)


@dataclass(frozen=True, slots=True)
class AuditCheck:
    """One pass/fail determinism check."""

    name: str
    ok: bool
    detail: str


@dataclass(frozen=True, slots=True)
class AuditReport:
    """All checks from one auditor invocation."""

    checks: Tuple[AuditCheck, ...]

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def format(self) -> str:
        lines = []
        for c in self.checks:
            status = "PASS" if c.ok else "FAIL"
            lines.append(f"[{status}] {c.name}: {c.detail}")
        verdict = "deterministic" if self.ok else "NONDETERMINISM DETECTED"
        lines.append(f"determinism audit: {verdict}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "checks": [
                {"name": c.name, "ok": c.ok, "detail": c.detail}
                for c in self.checks
            ],
        }


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def fingerprint_parts(
    trace_lines: Sequence[str],
    metrics: Dict[str, object],
) -> RunFingerprint:
    """Build a fingerprint from raw parts (also used by toy-kernel tests)."""
    canon_metrics = tuple(
        sorted((k, repr(v)) for k, v in metrics.items())
    )
    payload = json.dumps(
        {"metrics": canon_metrics, "trace": list(trace_lines)},
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return RunFingerprint(
        digest=digest,
        metrics=canon_metrics,
        trace_lines=tuple(trace_lines),
    )


def _permuted(seq: Sequence[_T]) -> List[_T]:
    """A fixed, seed-free derangement-ish permutation of ``seq``."""
    n = len(seq)
    if n < 2:
        return list(seq)
    stride = 7919  # prime; the index map is bijective when gcd(stride, n) == 1
    if _gcd(stride, n) != 1:
        return list(reversed(seq))
    return [seq[(i * stride + 1) % n] for i in range(n)]


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def simulate_fingerprint(
    seed: int = 1,
    boards: int = 4,
    nodes_per_board: int = 4,
    load: float = 0.4,
    pattern: str = "uniform",
    policy: str = "P-B",
    permuted: bool = False,
) -> RunFingerprint:
    """Run the small audit experiment once and fingerprint it.

    ``permuted=True`` registers node processes and optical-channel
    processes in a deterministically shuffled order, changing the FIFO
    sequence numbers of all same-time start-up events.
    """
    topo = ERapidTopology(boards=boards, nodes_per_board=nodes_per_board)
    config = ERapidConfig(
        topology=topo,
        policy=make_policy(policy),
        control=ControlParams(window_cycles=500),
        seed=seed,
    )
    plan = MeasurementPlan(warmup=500.0, measure=1500.0, drain_limit=3000.0)
    workload = WorkloadSpec(pattern=pattern, load=load, seed=seed)
    trace = TraceLog(max_records=200_000)
    engine = FastEngine(config, workload, plan, trace=trace)
    node_order: Optional[List[int]] = None
    channel_order: Optional[List[Tuple[int, int]]] = None
    if permuted:
        node_order = _permuted(list(range(topo.total_nodes)))
        channel_order = _permuted(sorted(engine.channels))
    engine.start(node_order=node_order, channel_order=channel_order)
    result = engine.run()

    metrics: Dict[str, object] = {
        "throughput": result.throughput,
        "offered": result.offered,
        "avg_latency": result.avg_latency,
        "p99_latency": result.p99_latency,
        "max_latency": result.max_latency,
        "power_mw": result.power_mw,
        "labeled_injected": result.labeled_injected,
        "labeled_delivered": result.labeled_delivered,
        "delivered_measure": result.delivered_measure,
        "final_time": engine.sim.now,
        "event_count": engine.sim.event_count,
    }
    for k, v in sorted(result.extra.items()):
        metrics[f"extra.{k}"] = v
    trace_lines = [rec.format() for rec in trace.records]
    return fingerprint_parts(trace_lines, metrics)


def simulate_detailed_fingerprint(
    seed: int = 1,
    boards: int = 2,
    nodes_per_board: int = 2,
    load: float = 0.3,
    pattern: str = "uniform",
    policy: str = "P-NB",
    permuted: bool = False,
) -> RunFingerprint:
    """Run the cycle-synchronous detailed engine once and fingerprint it.

    The detailed engine has no trace stream, so the fingerprint covers the
    full metric summary plus per-router flit counts, the final simulated
    time, and the executed-event count — enough to expose any iteration-
    order or RNG-order sensitivity in the flit path.

    ``permuted=True`` registers injector processes and optical-channel
    processes in a deterministically shuffled order, changing the FIFO
    sequence numbers of all same-time start-up events.
    """
    topo = ERapidTopology(boards=boards, nodes_per_board=nodes_per_board)
    config = ERapidConfig(
        topology=topo,
        policy=make_policy(policy),
        control=ControlParams(window_cycles=500),
        seed=seed,
    )
    plan = MeasurementPlan(warmup=300.0, measure=900.0, drain_limit=1800.0)
    workload = WorkloadSpec(pattern=pattern, load=load, seed=seed)
    engine = DetailedEngine(config, workload, plan)
    node_order: Optional[List[int]] = None
    optical_order: Optional[List[Tuple[int, int]]] = None
    if permuted:
        node_order = _permuted(list(range(topo.total_nodes)))
        optical_order = _permuted(
            sorted(
                key
                for key in engine.tx_queues
                if engine.rwa.dest_served_by(*key) != key[0]
            )
        )
    engine.start(node_order=node_order, optical_order=optical_order)
    result = engine.run()

    metrics: Dict[str, object] = {
        "throughput": result.throughput,
        "offered": result.offered,
        "avg_latency": result.avg_latency,
        "p99_latency": result.p99_latency,
        "max_latency": result.max_latency,
        "power_mw": result.power_mw,
        "labeled_injected": result.labeled_injected,
        "labeled_delivered": result.labeled_delivered,
        "delivered_measure": result.delivered_measure,
        "final_time": engine.sim.now,
        "event_count": engine.sim.event_count,
        "flits_routed": tuple(r.flits_routed for r in engine.routers),
    }
    for k, v in sorted(result.extra.items()):
        metrics[f"extra.{k}"] = v
    return fingerprint_parts((), metrics)


def sweep_fingerprint(
    results: Dict[str, List[RunResult]],
    exclude_extra: Sequence[str] = (),
) -> str:
    """SHA-256 over a ``{policy: [RunResult, ...]}`` sweep outcome.

    The digest covers every scalar metric and ``extra`` entry of every
    run via the exact (repr-based) :meth:`RunResult.to_dict` encoding, so
    two sweeps fingerprint equal iff they are bit-identical.  Used to
    assert that parallel (``jobs=N``) and cached sweep execution
    reproduce serial output exactly.

    ``exclude_extra`` drops the named ``extra`` entries before hashing.
    The engine benchmark uses ``("events",)`` to assert the callback
    engine's metrics against the frozen coroutine engine: every metric
    must match bit-for-bit, but the executed-event count is the one
    quantity the rewrite legitimately changes.
    """

    def _encoded(r: RunResult) -> Dict[str, object]:
        d = r.to_dict()
        extra = d.get("extra")
        if isinstance(extra, dict):
            for key in exclude_extra:
                extra.pop(key, None)
        return d

    payload = json.dumps(
        {
            policy: [_encoded(r) for r in runs]
            for policy, runs in sorted(results.items())
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Comparison and checks
# ----------------------------------------------------------------------
def compare_fingerprints(a: RunFingerprint, b: RunFingerprint) -> Optional[str]:
    """``None`` when identical, else a first-divergence description."""
    if a.digest == b.digest:
        return None
    am, bm = a.metric_dict, b.metric_dict
    for key in sorted(set(am) | set(bm)):
        if am.get(key) != bm.get(key):
            return f"metric {key!r} diverged: {am.get(key)} != {bm.get(key)}"
    for i, (la, lb) in enumerate(zip(a.trace_lines, b.trace_lines)):
        if la != lb:
            return f"trace line {i} diverged:\n  run A: {la}\n  run B: {lb}"
    if len(a.trace_lines) != len(b.trace_lines):
        return (
            f"trace length diverged: {len(a.trace_lines)} != "
            f"{len(b.trace_lines)} records"
        )
    return "digests differ but no field-level divergence found"


def check_repeatable(
    name: str,
    make_fingerprint: Callable[[], RunFingerprint],
    runs: int = 2,
) -> AuditCheck:
    """Run ``make_fingerprint`` ``runs`` times; all must be identical."""
    first = make_fingerprint()
    for i in range(1, runs):
        other = make_fingerprint()
        diff = compare_fingerprints(first, other)
        if diff is not None:
            return AuditCheck(
                name=name,
                ok=False,
                detail=f"run 0 vs run {i}: {diff}",
            )
    return AuditCheck(
        name=name,
        ok=True,
        detail=f"{runs} runs bit-identical (sha256 {first.digest[:12]}…, "
        f"{len(first.trace_lines)} trace records)",
    )


def audit(
    seed: int = 1,
    boards: int = 4,
    nodes_per_board: int = 4,
    detailed_boards: int = 2,
    detailed_nodes_per_board: int = 2,
    include_detailed: bool = True,
) -> AuditReport:
    """Full determinism audit across both engines.

    The abstract FastEngine runs the 16-node default; the flit-level
    detailed engine runs a smaller 4-node platform (its process-per-NI
    model is ~100x slower per simulated cycle).  ``include_detailed=False``
    restores the fast-only audit for quick local iteration.
    """
    checks: List[AuditCheck] = [
        check_repeatable(
            "fast engine: same-seed repeatability (default event-insertion order)",
            lambda: simulate_fingerprint(
                seed=seed, boards=boards, nodes_per_board=nodes_per_board
            ),
        ),
        check_repeatable(
            "fast engine: same-seed repeatability (permuted event-insertion order)",
            lambda: simulate_fingerprint(
                seed=seed,
                boards=boards,
                nodes_per_board=nodes_per_board,
                permuted=True,
            ),
        ),
    ]
    if include_detailed:
        checks.extend(
            (
                check_repeatable(
                    "detailed engine: same-seed repeatability "
                    "(default process-registration order)",
                    lambda: simulate_detailed_fingerprint(
                        seed=seed,
                        boards=detailed_boards,
                        nodes_per_board=detailed_nodes_per_board,
                    ),
                ),
                check_repeatable(
                    "detailed engine: same-seed repeatability "
                    "(permuted process-registration order)",
                    lambda: simulate_detailed_fingerprint(
                        seed=seed,
                        boards=detailed_boards,
                        nodes_per_board=detailed_nodes_per_board,
                        permuted=True,
                    ),
                ),
            )
        )
    return AuditReport(checks=tuple(checks))
