"""CLI plumbing for ``python -m repro.analysis``.

Subcommands
-----------
``lint PATH...``
    Run the SIM001–SIM011 lint pass.  Exit 0 when no *new* findings exist
    relative to the ratchet baseline; exit 1 otherwise.
``layering [PATH...]``
    Check the real import graph against the declared package DAG and the
    frozen-legacy import prohibition.  Exit 0 when clean.
``frozen``
    Verify the SHA-256 manifest of the frozen bit-identity oracles
    (``analysis-frozen.json``); ``--write-manifest`` regenerates it.
``determinism``
    Run the determinism audit (same-seed and permuted-insertion-order
    repeatability on both engines).  Exit 0 on pass.
``all PATH...``
    All four gates; exit non-zero if any fails.

``--format=json`` emits machine-readable findings for future tooling (the
benchmarks panel consumes this); ``--format=sarif`` emits a SARIF 2.1.0
log for the static passes (lint, layering, frozen) so CI can surface
findings as GitHub annotations.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.determinism import audit
from repro.analysis.frozen import (
    FrozenMismatch,
    verify_manifest,
    write_manifest,
)
from repro.analysis.layering import (
    LayerViolation,
    analyze_paths,
    format_dag,
)
from repro.analysis.linter import Finding, lint_paths
from repro.analysis.sarif import SarifResult, sarif_dumps
from repro.errors import ReproError

__all__ = ["main"]

_DEFAULT_BASELINE = "analysis-baseline.json"
_DEFAULT_MANIFEST = "analysis-frozen.json"


def _findings_json(findings: Sequence[Finding]) -> List[Dict[str, object]]:
    return [
        {
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "code": f.code,
            "message": f.message,
            "hint": f.rule.hint,
        }
        for f in findings
    ]


def _findings_sarif(findings: Sequence[Finding]) -> List[SarifResult]:
    return [
        SarifResult(
            rule_id=f.code, message=f.message, path=f.path, line=f.line
        )
        for f in findings
    ]


def _violations_sarif(violations: Sequence[LayerViolation]) -> List[SarifResult]:
    return [
        SarifResult(
            rule_id=v.kind.upper(),
            message=v.message,
            path=v.path,
            line=v.line,
        )
        for v in violations
    ]


def _mismatches_sarif(mismatches: Sequence[FrozenMismatch]) -> List[SarifResult]:
    return [
        SarifResult(rule_id="FROZEN", message=m.format(), path=m.path)
        for m in mismatches
    ]


def _run_lint(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(map(str, missing))}", file=sys.stderr)
        return 2
    findings = lint_paths(paths, include_fixtures=args.include_fixtures)

    baseline_path = Path(args.baseline) if args.baseline else Path(_DEFAULT_BASELINE)
    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.write_baseline:
        Baseline.from_findings(findings).write(baseline_path)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    result = baseline.ratchet(findings)
    if args.format == "sarif":
        print(sarif_dumps(_findings_sarif(result.new)))
    elif args.format == "json":
        print(
            json.dumps(
                {
                    "ok": result.ok,
                    "new": _findings_json(result.new),
                    "known": _findings_json(result.known),
                    "stale": result.stale,
                },
                indent=2,
            )
        )
    else:
        for f in result.new:
            print(f.format())
            print(f"    hint: {f.rule.hint}")
        if result.known:
            print(f"{len(result.known)} known finding(s) tolerated by baseline")
        if result.stale:
            print(
                f"note: {len(result.stale)} baseline entr(ies) no longer "
                "reproduce — ratchet down with --write-baseline"
            )
        if result.ok:
            print("lint: clean")
        else:
            print(f"lint: {len(result.new)} new finding(s)")
    return 0 if result.ok else 1


def _run_layering(args: argparse.Namespace) -> int:
    if args.print_dag:
        print(format_dag())
        return 0
    paths = [Path(p) for p in (args.paths or ["src"])]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(map(str, missing))}", file=sys.stderr)
        return 2
    edges, violations = analyze_paths(paths)
    if args.format == "sarif":
        print(sarif_dumps(_violations_sarif(violations)))
    elif args.format == "json":
        print(
            json.dumps(
                {
                    "ok": not violations,
                    "edges": len(edges),
                    "violations": [v.to_json() for v in violations],
                },
                indent=2,
            )
        )
    else:
        for v in violations:
            print(v.format())
        if violations:
            print(f"layering: {len(violations)} violation(s) in {len(edges)} import edge(s)")
        else:
            print(f"layering: clean ({len(edges)} import edge(s) checked)")
    return 0 if not violations else 1


def _run_frozen(args: argparse.Namespace) -> int:
    root = Path(args.root)
    manifest_path = Path(args.manifest) if args.manifest else root / _DEFAULT_MANIFEST
    if args.write_manifest:
        files = write_manifest(root, manifest_path)
        print(f"wrote {len(files)} fingerprint(s) to {manifest_path}")
        return 0
    try:
        mismatches = verify_manifest(root, manifest_path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "sarif":
        print(sarif_dumps(_mismatches_sarif(mismatches)))
    elif args.format == "json":
        print(
            json.dumps(
                {
                    "ok": not mismatches,
                    "manifest": str(manifest_path),
                    "mismatches": [m.to_json() for m in mismatches],
                },
                indent=2,
            )
        )
    else:
        for m in mismatches:
            print(m.format())
        if mismatches:
            print(f"frozen: {len(mismatches)} integrity failure(s)")
        else:
            print("frozen: all oracle fingerprints match the manifest")
    return 0 if not mismatches else 1


def _run_determinism(args: argparse.Namespace) -> int:
    if args.format == "sarif":
        print(
            "error: --format=sarif applies to the static passes "
            "(lint, layering, frozen) only",
            file=sys.stderr,
        )
        return 2
    try:
        report = audit(
            seed=args.seed,
            boards=args.boards,
            nodes_per_board=args.nodes_per_board,
            include_detailed=not args.fast_only,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.format())
    return 0 if report.ok else 1


def _run_all(args: argparse.Namespace) -> int:
    lint_rc = _run_lint(args)
    layering_rc = _run_layering(args)
    frozen_rc = _run_frozen(args)
    det_rc = _run_determinism(args)
    return max(lint_rc, layering_rc, frozen_rc, det_rc)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Correctness tooling: simulation-invariant linter, "
        "import-layering analyzer, frozen-oracle integrity manifest, and "
        "determinism auditor for the E-RAPID reproduction.",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text; sarif applies to the static "
        "passes only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the SIM001–SIM011 lint pass")
    lint.add_argument("paths", nargs="+", help="files or directories to lint")
    lint.add_argument(
        "--baseline",
        default=None,
        help=f"ratchet baseline file (default: ./{_DEFAULT_BASELINE})",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline with the current findings and exit 0",
    )
    lint.add_argument(
        "--include-fixtures",
        action="store_true",
        help="also lint */fixtures/* files (skipped by default: the test "
        "suite keeps intentionally-bad snippets there)",
    )
    lint.set_defaults(func=_run_lint)

    layering = sub.add_parser(
        "layering", help="check imports against the declared package DAG"
    )
    layering.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to scan (default: src)",
    )
    layering.add_argument(
        "--print-dag",
        action="store_true",
        help="print the declared DAG and exit",
    )
    layering.set_defaults(func=_run_layering)

    frozen = sub.add_parser(
        "frozen", help="verify the frozen-oracle integrity manifest"
    )
    frozen.add_argument(
        "--root", default=".", help="repository root (default: .)"
    )
    frozen.add_argument(
        "--manifest",
        default=None,
        help=f"manifest path (default: <root>/{_DEFAULT_MANIFEST})",
    )
    frozen.add_argument(
        "--write-manifest",
        action="store_true",
        help="regenerate the manifest from the on-disk frozen files "
        "(legitimate ONLY alongside a new equivalence gate)",
    )
    frozen.set_defaults(func=_run_frozen)

    det = sub.add_parser("determinism", help="run the determinism audit")
    det.add_argument("--seed", type=int, default=1)
    det.add_argument("--boards", type=int, default=4)
    det.add_argument("--nodes-per-board", type=int, default=4)
    det.add_argument(
        "--fast-only",
        action="store_true",
        help="skip the detailed-engine checks (quick local iteration)",
    )
    det.set_defaults(func=_run_determinism)

    both = sub.add_parser(
        "all", help="lint + layering + frozen + determinism audit"
    )
    both.add_argument("paths", nargs="+", help="files or directories to lint")
    both.add_argument("--baseline", default=None)
    both.add_argument("--no-baseline", action="store_true")
    both.add_argument("--write-baseline", action="store_true")
    both.add_argument("--include-fixtures", action="store_true")
    both.add_argument("--root", default=".")
    both.add_argument("--manifest", default=None)
    both.add_argument("--seed", type=int, default=1)
    both.add_argument("--boards", type=int, default=4)
    both.add_argument("--nodes-per-board", type=int, default=4)
    both.add_argument("--fast-only", action="store_true")
    both.set_defaults(func=_run_all, print_dag=False, write_manifest=False)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    rc = args.func(args)
    return int(rc)


if __name__ == "__main__":
    sys.exit(main())
