"""CLI plumbing for ``python -m repro.analysis``.

Subcommands
-----------
``lint PATH...``
    Run the SIM001–SIM006 lint pass.  Exit 0 when no *new* findings exist
    relative to the ratchet baseline; exit 1 otherwise.
``determinism``
    Run the determinism audit (same-seed and permuted-insertion-order
    repeatability on a small 16-node experiment).  Exit 0 on pass.
``all``
    Both of the above; exit non-zero if either gate fails.

``--format=json`` emits machine-readable findings for future tooling (the
benchmarks panel consumes this).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.determinism import audit
from repro.analysis.linter import Finding, lint_paths
from repro.errors import ReproError

__all__ = ["main"]

_DEFAULT_BASELINE = "analysis-baseline.json"


def _findings_json(findings: Sequence[Finding]) -> List[dict]:
    return [
        {
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "code": f.code,
            "message": f.message,
            "hint": f.rule.hint,
        }
        for f in findings
    ]


def _run_lint(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(map(str, missing))}", file=sys.stderr)
        return 2
    findings = lint_paths(paths, include_fixtures=args.include_fixtures)

    baseline_path = Path(args.baseline) if args.baseline else Path(_DEFAULT_BASELINE)
    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.write_baseline:
        Baseline.from_findings(findings).write(baseline_path)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    result = baseline.ratchet(findings)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "ok": result.ok,
                    "new": _findings_json(result.new),
                    "known": _findings_json(result.known),
                    "stale": result.stale,
                },
                indent=2,
            )
        )
    else:
        for f in result.new:
            print(f.format())
            print(f"    hint: {f.rule.hint}")
        if result.known:
            print(f"{len(result.known)} known finding(s) tolerated by baseline")
        if result.stale:
            print(
                f"note: {len(result.stale)} baseline entr(ies) no longer "
                "reproduce — ratchet down with --write-baseline"
            )
        if result.ok:
            print("lint: clean")
        else:
            print(f"lint: {len(result.new)} new finding(s)")
    return 0 if result.ok else 1


def _run_determinism(args: argparse.Namespace) -> int:
    try:
        report = audit(
            seed=args.seed, boards=args.boards, nodes_per_board=args.nodes_per_board
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.format())
    return 0 if report.ok else 1


def _run_all(args: argparse.Namespace) -> int:
    lint_rc = _run_lint(args)
    det_rc = _run_determinism(args)
    return max(lint_rc, det_rc)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Correctness tooling: simulation-invariant linter and "
        "determinism auditor for the E-RAPID reproduction.",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the SIM001–SIM006 lint pass")
    lint.add_argument("paths", nargs="+", help="files or directories to lint")
    lint.add_argument(
        "--baseline",
        default=None,
        help=f"ratchet baseline file (default: ./{_DEFAULT_BASELINE})",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline with the current findings and exit 0",
    )
    lint.add_argument(
        "--include-fixtures",
        action="store_true",
        help="also lint */fixtures/* files (skipped by default: the test "
        "suite keeps intentionally-bad snippets there)",
    )
    lint.set_defaults(func=_run_lint)

    det = sub.add_parser("determinism", help="run the determinism audit")
    det.add_argument("--seed", type=int, default=1)
    det.add_argument("--boards", type=int, default=4)
    det.add_argument("--nodes-per-board", type=int, default=4)
    det.set_defaults(func=_run_determinism)

    both = sub.add_parser("all", help="lint + determinism audit")
    both.add_argument("paths", nargs="+", help="files or directories to lint")
    both.add_argument("--baseline", default=None)
    both.add_argument("--no-baseline", action="store_true")
    both.add_argument("--write-baseline", action="store_true")
    both.add_argument("--include-fixtures", action="store_true")
    both.add_argument("--seed", type=int, default=1)
    both.add_argument("--boards", type=int, default=4)
    both.add_argument("--nodes-per-board", type=int, default=4)
    both.set_defaults(func=_run_all)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    rc = args.func(args)
    return int(rc)


if __name__ == "__main__":
    sys.exit(main())
