"""Correctness tooling for the E-RAPID reproduction.

The headline results (power savings and latency under Lock-Step
reconfiguration) rest on *bit-reproducible* discrete-event runs: common
random numbers make the four NP/P × NB/B configurations comparable, and
every figure is a diff between seeded runs.  This package enforces that
discipline mechanically:

* :mod:`repro.analysis.linter` — an AST lint pass with repo-specific rules
  (SIM001–SIM011): no wall-clock or environment reads in simulation code,
  no randomness outside :class:`repro.sim.rng.RngRegistry` streams, no
  mutable default arguments, no float equality on simulation timestamps,
  no kernel re-entry from callbacks, ``slots=True`` on hot-path
  dataclasses, no iteration over unordered containers in engine code, no
  RNG machinery construction outside the registry, no literal zero-delay
  p0 events where a ``schedule_late`` continuation is meant, and no float
  arithmetic off the integer cycle grid.
* :mod:`repro.analysis.layering` — an import-layering analyzer that checks
  the real (AST-parsed) import graph against a declared package DAG, with
  a short allowlist for deliberate exceptions and a hard prohibition on
  importing the frozen ``repro.perf.legacy*`` oracles from production
  code.
* :mod:`repro.analysis.frozen` — a SHA-256 integrity manifest pinning the
  frozen bit-identity oracles (``analysis-frozen.json``); a drive-by edit
  to a legacy file fails ``make check`` and CI.
* :mod:`repro.analysis.determinism` — a determinism auditor that runs both
  engines twice under one seed plus twice under a permuted
  event-insertion order and diffs trace streams and metric summaries — a
  race detector for the event kernel.
* :mod:`repro.analysis.baseline` — a ratchet: pre-existing findings live
  in a checked-in baseline file and may only ever be removed.
* :mod:`repro.analysis.sarif` — a SARIF 2.1.0 emitter shared by the three
  static passes so CI renders findings as GitHub annotations.

Run everything with ``python -m repro.analysis`` (see ``--help``).
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, RatchetResult
from repro.analysis.determinism import (
    AuditCheck,
    AuditReport,
    RunFingerprint,
    audit,
)
from repro.analysis.frozen import (
    FROZEN_FILES,
    FrozenMismatch,
    compute_manifest,
    verify_manifest,
    write_manifest,
)
from repro.analysis.layering import (
    EDGE_ALLOWLIST,
    LAYER_DAG,
    ImportEdge,
    LayerViolation,
    analyze_paths,
    check_layering,
    collect_import_edges,
)
from repro.analysis.linter import Finding, lint_paths, lint_source
from repro.analysis.rules import RULES, Rule
from repro.analysis.sarif import SarifResult, sarif_dumps, sarif_log

__all__ = [
    "AuditCheck",
    "AuditReport",
    "Baseline",
    "EDGE_ALLOWLIST",
    "FROZEN_FILES",
    "Finding",
    "FrozenMismatch",
    "ImportEdge",
    "LAYER_DAG",
    "LayerViolation",
    "RatchetResult",
    "RULES",
    "Rule",
    "RunFingerprint",
    "SarifResult",
    "analyze_paths",
    "audit",
    "check_layering",
    "collect_import_edges",
    "compute_manifest",
    "lint_paths",
    "lint_source",
    "sarif_dumps",
    "sarif_log",
    "verify_manifest",
    "write_manifest",
]
