"""Correctness tooling for the E-RAPID reproduction.

The headline results (power savings and latency under Lock-Step
reconfiguration) rest on *bit-reproducible* discrete-event runs: common
random numbers make the four NP/P × NB/B configurations comparable, and
every figure is a diff between seeded runs.  This package enforces that
discipline mechanically:

* :mod:`repro.analysis.linter` — an AST lint pass with repo-specific rules
  (SIM001–SIM006): no wall-clock time in simulation code, no randomness
  outside :class:`repro.sim.rng.RngRegistry` streams, no mutable default
  arguments, no float equality on simulation timestamps, no kernel
  re-entry from callbacks, and ``slots=True`` on hot-path dataclasses.
* :mod:`repro.analysis.determinism` — a determinism auditor that runs a
  small 16-node experiment twice under one seed plus twice under a
  permuted event-insertion order and diffs trace streams and metric
  summaries — a race detector for the event kernel.
* :mod:`repro.analysis.baseline` — a ratchet: pre-existing findings live
  in a checked-in baseline file and may only ever be removed.

Run everything with ``python -m repro.analysis`` (see ``--help``).
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, RatchetResult
from repro.analysis.determinism import AuditCheck, AuditReport, RunFingerprint, audit
from repro.analysis.linter import Finding, lint_paths, lint_source
from repro.analysis.rules import RULES, Rule

__all__ = [
    "AuditCheck",
    "AuditReport",
    "Baseline",
    "Finding",
    "RatchetResult",
    "RULES",
    "Rule",
    "RunFingerprint",
    "audit",
    "lint_paths",
    "lint_source",
]
