"""AST-based simulation-invariant linter.

Checks the repo-specific rules SIM001–SIM011 (see
:mod:`repro.analysis.rules`).  The linter is a single :mod:`ast` pass per
file; it never imports the code under analysis, so it is safe to run on
broken or intentionally-bad fixture files.

Module scoping
--------------
Rules are scoped by *dotted module name* (e.g. SIM001 only fires inside the
simulation core).  The module name is normally derived from the file path
(``src/repro/sim/kernel.py`` → ``repro.sim.kernel``).  Fixture files that
live outside the package tree can opt into a scope with a marker comment in
their first lines::

    # sim-lint: module=repro.sim.fixture

Suppressions
------------
One finding can be silenced with ``# sim-lint: ignore`` (that line, any
rule) or ``# sim-lint: ignore[SIM004]`` (that line, that rule).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.rules import (
    RULES,
    SLOTTED_CLASS_PREFIXES,
    VECTOR_ENGINE_PREFIXES,
    Rule,
    rule_for,
)

__all__ = ["Finding", "lint_source", "lint_paths", "module_name_for_path"]


@dataclass(frozen=True, slots=True)
class Finding:
    """One lint violation, pinned to a file, line and rule."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def rule(self) -> Rule:
        return rule_for(self.code)

    @property
    def key(self) -> str:
        """Stable identity used by the ratchet baseline."""
        return f"{self.path}:{self.code}:{self.line}"

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


# ----------------------------------------------------------------------
# Rule tables
# ----------------------------------------------------------------------

#: Wall-clock entry points (SIM001), as fully-qualified dotted names.
_WALLCLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``numpy.random`` attributes that construct *seeded* generator machinery
#: (what :class:`repro.sim.rng.RngRegistry` itself is built from); everything
#: else on ``numpy.random`` is banned by SIM002.
_ALLOWED_NP_RANDOM = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

_MUTABLE_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.deque",
        "collections.OrderedDict",
        "collections.Counter",
    }
)

#: Terminal attribute/variable names treated as simulation timestamps
#: (SIM004).
_TIME_NAME = re.compile(
    r"(^(now|_now|t0|t1|timestamp|deadline|time)$)|(_(at|until|now|time|end)$)"
)

#: Terminal names treated as cycle counters / tick times (SIM011): the
#: integer-grid quantities of the cycle-synchronous clock loop.
_CYCLE_NAME = re.compile(
    r"(^(now|time|due|cycle|cycles|tick|ticks|delay)$)"
    r"|(_(at|until|now|time|end|due|cycle|cycles|tick|ticks)$)"
)

#: Environment/entropy entry points (SIM009), as dotted names.
_ENV_READ_CALLS = frozenset({"os.getenv", "os.urandom", "os.getenvb"})
_ENV_READ_ATTRS = frozenset({"os.environ", "os.environb"})

#: ``numpy.random`` machinery whose *construction* outside repro.sim.rng
#: is banned by SIM008.  Exactly the SIM002 allowance: SIM002 bans
#: unseeded/global draws everywhere, SIM008 bans the remaining (seeded)
#: machinery outside the registry module — together every RNG use outside
#: repro.sim.rng is flagged by exactly one rule.
_RNG_MACHINERY = _ALLOWED_NP_RANDOM

_KERNEL_NAMES = frozenset({"sim", "simulator", "kernel"})

#: Receiver names that read as an RNG stream (SIM008's vectorized-draw
#: check): `rng.geometric(p, size=n)` etc.  Matched on the terminal
#: variable/attribute name, so `self._rng` and `gap_rng` both qualify.
_RNG_RECEIVER = re.compile(r"(^(rng|gen|generator|stream|rand|random)$)|(_(rng|gen|stream)$)")

#: ``numpy.random.Generator`` distribution methods whose bulk (`size=`)
#: form must route through repro.sim.rng's chunk-consistent helpers when
#: called from engine-scope code.
_DIST_METHODS = frozenset(
    {
        "integers",
        "random",
        "choice",
        "geometric",
        "exponential",
        "poisson",
        "uniform",
        "normal",
        "standard_normal",
        "binomial",
        "permutation",
        "shuffle",
    }
)

_MODULE_MARKER = re.compile(r"#\s*sim-lint:\s*module=([\w.]+)")
_IGNORE_MARKER = re.compile(r"#\s*sim-lint:\s*ignore(?:\[([\w,\s]+)\])?")


def module_name_for_path(path: Path) -> Optional[str]:
    """Dotted module name for a file under a ``repro`` package tree."""
    parts = path.resolve().parts
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
    dotted = list(parts[idx:-1])
    stem = path.stem
    if stem != "__init__":
        dotted.append(stem)
    return ".".join(dotted)


def _scan_module_marker(source: str) -> Optional[str]:
    for line in source.splitlines()[:5]:
        m = _MODULE_MARKER.search(line)
        if m:
            return m.group(1)
    return None


def _suppressed(lines: Sequence[str], line: int, code: str) -> bool:
    if not 1 <= line <= len(lines):
        return False
    m = _IGNORE_MARKER.search(lines[line - 1])
    if not m:
        return False
    codes = m.group(1)
    if codes is None:
        return True
    return code in {c.strip() for c in codes.split(",")}


def _own_body_walk(fn: ast.AST) -> Iterable[ast.AST]:
    """Walk a function's own body, skipping nested function bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(fn: ast.AST) -> bool:
    """Whether a function node has a yield in its *own* body (nested
    functions don't count — their yields belong to them)."""
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom)) for node in _own_body_walk(fn)
    )


def _assigned_names(fn: ast.AST) -> FrozenSet[str]:
    """Names bound by assignment in the function's own body (not params)."""
    names = set()
    for node in _own_body_walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return frozenset(names)


class _Visitor(ast.NodeVisitor):
    """One-pass rule evaluation over a module's AST."""

    def __init__(self, path: str, module: Optional[str], lines: Sequence[str]) -> None:
        self.path = path
        self.module = module
        self.lines = lines
        self.findings: List[Finding] = []
        #: local name -> fully-qualified dotted origin, for imported names.
        self.imports: Dict[str, str] = {}
        #: Enclosing function stack: (node, is_generator, assigned_names).
        self._funcs: List[Tuple[ast.AST, bool, FrozenSet[str]]] = []
        self._active = {r.code: r.applies_to(module) for r in RULES}
        #: SIM008's vectorized-draw check only fires in the engine scope
        #: (plus the batch slab orchestrator) — harness code may draw
        #: arrays, engine code must use repro.sim.rng's helpers.
        self._vector_scope = module is not None and any(
            module == p or module.startswith(p + ".")
            for p in VECTOR_ENGINE_PREFIXES
        )
        #: Plain (non-dataclass) classes here must carry __slots__ (SIM006).
        self._slotted_classes = module is not None and any(
            module == p or module.startswith(p + ".")
            for p in SLOTTED_CLASS_PREFIXES
        )

    # -- helpers -------------------------------------------------------
    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        if not self._active[code]:
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if _suppressed(self.lines, line, code):
            return
        self.findings.append(Finding(self.path, line, col, code, message))

    def _qualname(self, node: ast.AST) -> Optional[str]:
        """Resolve an attribute chain to a dotted name via the import table."""
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id)
        if root is None:
            return None
        chain.append(root)
        return ".".join(reversed(chain))

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
            if alias.name == "random" or alias.name.startswith("random."):
                self._emit(
                    node,
                    "SIM002",
                    "import of the stdlib `random` module; draw from "
                    "RngRegistry.stream(...) instead",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        for alias in node.names:
            local = alias.asname or alias.name
            origin = f"{mod}.{alias.name}" if mod else alias.name
            self.imports[local] = origin
            if mod == "random" or mod.startswith("random."):
                self._emit(
                    node,
                    "SIM002",
                    f"import of `random.{alias.name}`; draw from "
                    "RngRegistry.stream(...) instead",
                )
            elif origin in _WALLCLOCK:
                self._emit(
                    node,
                    self._wallclock_code(),
                    f"import of wall-clock source `{origin}`; simulation "
                    "code must use the simulation clock (sim.now)",
                )
            elif mod in ("numpy.random", "np.random"):
                if alias.name not in _ALLOWED_NP_RANDOM:
                    self._emit(
                        node,
                        "SIM002",
                        f"import of `numpy.random.{alias.name}`; draw from "
                        "RngRegistry.stream(...) instead",
                    )
                else:
                    self._emit(
                        node,
                        "SIM008",
                        f"import of RNG machinery `numpy.random."
                        f"{alias.name}` outside repro.sim.rng; route draws "
                        "through RngRegistry.stream(...)",
                    )
            elif origin in _ENV_READ_ATTRS or origin in _ENV_READ_CALLS:
                self._emit(
                    node,
                    "SIM009",
                    f"import of environment source `{origin}`; simulation "
                    "state must be a pure function of (config, seed)",
                )
        self.generic_visit(node)

    # -- functions -----------------------------------------------------
    def _check_defaults(self, node: ast.AST, args: ast.arguments) -> None:
        for default in list(args.defaults) + [d for d in args.kw_defaults if d]:
            bad = False
            if isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
            ):
                bad = True
            elif isinstance(default, ast.Call):
                name = self._qualname(default.func)
                if name is None and isinstance(default.func, ast.Name):
                    name = default.func.id
                if name in _MUTABLE_CALLS:
                    bad = True
            if bad:
                self._emit(
                    default,
                    "SIM003",
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside the body",
                )

    def _visit_function(self, node: ast.AST, args: ast.arguments) -> None:
        self._check_defaults(node, args)
        self._funcs.append((node, _is_generator(node), _assigned_names(node)))
        self.generic_visit(node)
        self._funcs.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.args)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.args)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_function(node, node.args)

    # -- calls ---------------------------------------------------------
    def _wallclock_code(self) -> str:
        """SIM001 in the simulation core, SIM009 in the wider state scope."""
        return "SIM001" if self._active["SIM001"] else "SIM009"

    def visit_Call(self, node: ast.Call) -> None:
        qual = self._qualname(node.func)
        if qual is not None:
            if qual in _WALLCLOCK:
                self._emit(
                    node,
                    self._wallclock_code(),
                    f"call to wall-clock source `{qual}` inside simulation "
                    "code; use the simulation clock (sim.now)",
                )
            elif qual.startswith("random."):
                self._emit(
                    node,
                    "SIM002",
                    f"call to `{qual}` bypasses RngRegistry; pass a named "
                    "stream (`registry.stream(...)`) instead",
                )
            elif qual.startswith("numpy.random."):
                if qual.split(".")[2] not in _ALLOWED_NP_RANDOM:
                    self._emit(
                        node,
                        "SIM002",
                        f"call to `{qual}` bypasses RngRegistry; pass a "
                        "named stream (`registry.stream(...)`) instead",
                    )
                else:
                    self._emit(
                        node,
                        "SIM008",
                        f"construction of RNG machinery `{qual}` outside "
                        "repro.sim.rng; route draws through "
                        "RngRegistry.stream(...)",
                    )
            elif qual in _ENV_READ_CALLS:
                self._emit(
                    node,
                    "SIM009",
                    f"call to environment source `{qual}`; simulation "
                    "state must be a pure function of (config, seed)",
                )
        elif isinstance(node.func, ast.Name) and node.func.id == "Random":
            self._emit(
                node,
                "SIM008",
                "bare `Random()` construction outside repro.sim.rng; route "
                "draws through RngRegistry.stream(...)",
            )
        self._check_vectorized_draw(node)
        self._check_zero_delay_schedule(node)
        self._check_kernel_reentry(node)
        self.generic_visit(node)

    def _check_vectorized_draw(self, node: ast.Call) -> None:
        """SIM008 (vectorized form): bulk draws on an rng-ish receiver in
        engine-scope code must use repro.sim.rng's chunk-consistent
        helpers, or scalar and batch engines diverge in stream use."""
        if not self._vector_scope:
            return
        fn = node.func
        if not (isinstance(fn, ast.Attribute) and fn.attr in _DIST_METHODS):
            return
        if not any(kw.arg == "size" for kw in node.keywords):
            return
        receiver = self._terminal_name(fn.value)
        if receiver is None or not _RNG_RECEIVER.search(receiver):
            return
        self._emit(
            node,
            "SIM008",
            f"vectorized draw `{receiver}.{fn.attr}(..., size=...)` in "
            "engine code bypasses the chunk-consistent helpers; use "
            "repro.sim.rng.geometric_gap_array / integer_array so scalar "
            "and batch engines consume streams identically",
        )

    def _check_zero_delay_schedule(self, node: ast.Call) -> None:
        """SIM010: literal zero-delay p0 scheduling in engine code."""
        fn = node.func
        if not (
            isinstance(fn, ast.Attribute)
            and fn.attr in ("schedule", "schedule_fast")
        ):
            return
        if not node.args:
            return
        delay = node.args[0]
        if (
            isinstance(delay, ast.Constant)
            and type(delay.value) in (int, float)
            and delay.value == 0
        ):
            self._emit(
                node,
                "SIM010",
                f"zero-delay `{fn.attr}(0, ...)` enqueues at priority 0 "
                "ahead of pending continuations; use "
                "`schedule_late(0.0, ...)` for same-instant engine hops",
            )

    # -- attribute reads (SIM009: os.environ) --------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        qual = self._qualname(node)
        if qual in _ENV_READ_ATTRS:
            self._emit(
                node,
                "SIM009",
                f"read of `{qual}`; simulation state must be a pure "
                "function of (config, seed) — read the environment in the "
                "harness layer",
            )
        self.generic_visit(node)

    def _check_kernel_reentry(self, node: ast.Call) -> None:
        fn = node.func
        if not (isinstance(fn, ast.Attribute) and fn.attr == "run"):
            return
        recv = fn.value
        is_kernel = (isinstance(recv, ast.Name) and recv.id in _KERNEL_NAMES) or (
            isinstance(recv, ast.Attribute) and recv.attr in _KERNEL_NAMES
        )
        if not is_kernel:
            return
        # A kernel *assigned inside* the innermost function is that
        # function's own sub-simulator (e.g. a microbench body building a
        # fresh Simulator): pumping it is not re-entry.
        if (
            self._funcs
            and isinstance(recv, ast.Name)
            and recv.id in self._funcs[-1][2]
        ):
            return
        # Re-entry risk: the call site lives inside a process generator or a
        # nested function (an event callback closure).  Top-level drivers —
        # plain functions and methods — may pump the kernel.
        in_generator = any(gen for _, gen, _names in self._funcs)
        nested = len(self._funcs) >= 2
        if in_generator or nested:
            self._emit(
                node,
                "SIM005",
                "kernel run() called from a process/callback; "
                "Simulator.run() is not reentrant — yield a waitable or "
                "schedule an event instead",
            )

    # -- comparisons ---------------------------------------------------
    @staticmethod
    def _terminal_name(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    @staticmethod
    def _is_approx_call(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        fn = node.func
        name = fn.attr if isinstance(fn, ast.Attribute) else getattr(fn, "id", "")
        return name in ("approx", "isclose")

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            pair = (left, right)
            if any(
                isinstance(o, ast.Constant) and o.value is None for o in pair
            ):
                continue
            if any(self._is_approx_call(o) for o in pair):
                continue
            for o in pair:
                name = self._terminal_name(o)
                if name is not None and _TIME_NAME.search(name):
                    self._emit(
                        node,
                        "SIM004",
                        f"float equality on simulation timestamp `{name}`; "
                        "use ordered comparisons or math.isclose",
                    )
                    break
        self.generic_visit(node)

    # -- iteration order (SIM007) --------------------------------------
    def _check_unordered_iter(self, iter_node: ast.AST) -> None:
        """Flag iteration whose order is hash- or history-dependent."""
        if isinstance(iter_node, ast.Call):
            fn = iter_node.func
            fname = (
                fn.attr
                if isinstance(fn, ast.Attribute)
                else getattr(fn, "id", None)
            )
            if fname == "sorted":
                return
            if isinstance(fn, ast.Attribute) and fn.attr in ("keys", "values"):
                self._emit(
                    iter_node,
                    "SIM007",
                    f"iteration over `.{fn.attr}()` follows dict "
                    "construction-history order; iterate sorted keys (then "
                    "index) or suppress with a proof of order-insensitivity",
                )
                return
            if fname in ("set", "frozenset"):
                self._emit(
                    iter_node,
                    "SIM007",
                    f"iteration over `{fname}(...)` follows hash order; "
                    "wrap in sorted(...)",
                )
            return
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            self._emit(
                iter_node,
                "SIM007",
                "iteration over a set literal follows hash order; wrap in "
                "sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST, comps: List[ast.comprehension]) -> None:
        for gen in comps:
            self._check_unordered_iter(gen.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, node.generators)

    # -- cycle-counter arithmetic (SIM011) -----------------------------
    def _is_cycle_name(self, node: ast.AST) -> bool:
        name = self._terminal_name(node)
        return name is not None and bool(_CYCLE_NAME.search(name))

    @staticmethod
    def _is_fractional_const(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Constant)
            and type(node.value) is float
            and not node.value.is_integer()
        )

    def _check_cycle_arith(
        self, node: ast.AST, op: ast.operator, left: ast.AST, right: ast.AST
    ) -> None:
        if not self._active["SIM011"]:
            return
        operands = (left, right)
        if isinstance(op, ast.Div) and any(map(self._is_cycle_name, operands)):
            self._emit(
                node,
                "SIM011",
                "true division on a cycle counter leaves the integer cycle "
                "grid; use `//` or pre-scaled integral steps",
            )
            return
        if isinstance(op, (ast.Add, ast.Sub, ast.Mult, ast.Mod)) and (
            (self._is_cycle_name(left) and self._is_fractional_const(right))
            or (self._is_fractional_const(left) and self._is_cycle_name(right))
        ):
            self._emit(
                node,
                "SIM011",
                "fractional float constant combined with a cycle counter "
                "moves tick times off the integer cycle grid",
            )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        self._check_cycle_arith(node, node.op, node.left, node.right)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_cycle_arith(node, node.op, node.target, node.value)
        self.generic_visit(node)

    # -- classes (dataclass slots=True / plain-class __slots__) --------

    #: Base classes that manage their own instance layout; subclasses are
    #: exempt from the plain-class __slots__ requirement.
    _OPEN_LAYOUT_BASES = frozenset(
        {"Protocol", "Enum", "IntEnum", "StrEnum", "IntFlag", "Flag",
         "Exception", "Generic"}
    )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        is_dataclass = False
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = self._terminal_name(target)
            if name != "dataclass":
                continue
            is_dataclass = True
            has_slots = isinstance(dec, ast.Call) and any(
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in dec.keywords
            )
            if not has_slots:
                self._emit(
                    node,
                    "SIM006",
                    f"hot-path dataclass `{node.name}` without slots=True; "
                    "declare @dataclass(slots=True, ...)",
                )
        if not is_dataclass and self._slotted_classes:
            self._check_plain_class_slots(node)
        self.generic_visit(node)

    def _check_plain_class_slots(self, node: ast.ClassDef) -> None:
        for base in node.bases:
            base_name = self._terminal_name(
                base.value if isinstance(base, ast.Subscript) else base
            )
            if base_name in self._OPEN_LAYOUT_BASES:
                return
        for stmt in node.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return
        self._emit(
            node,
            "SIM006",
            f"network-substrate class `{node.name}` without __slots__; "
            "define a __slots__ tuple in the class body (subclasses too — "
            "one inherited __dict__ voids the whole chain)",
        )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
) -> List[Finding]:
    """Lint one source blob; ``module`` overrides path-derived scoping."""
    if module is None:
        module = _scan_module_marker(source)
    if module is None and path != "<string>":
        module = module_name_for_path(Path(path))
    tree = ast.parse(source, filename=path)
    visitor = _Visitor(path, module, source.splitlines())
    visitor.visit(tree)
    return sorted(visitor.findings, key=lambda f: (f.line, f.col, f.code))


_SKIP_DIRS = {"__pycache__", ".git", ".mypy_cache", ".pytest_cache", "build", "dist"}


def _iter_py_files(paths: Iterable[Path], include_fixtures: bool) -> List[Path]:
    files: List[Path] = []
    for p in paths:
        if p.is_file() and p.suffix == ".py":
            files.append(p)
            continue
        if not p.is_dir():
            continue
        for f in p.rglob("*.py"):
            parts = set(f.parts)
            if parts & _SKIP_DIRS:
                continue
            if not include_fixtures and "fixtures" in f.parts:
                continue
            files.append(f)
    return sorted(set(files))


def lint_paths(
    paths: Sequence[Path],
    include_fixtures: bool = False,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (fixture dirs skipped).

    Unparseable files produce a synthetic ``SIM000``-style parse finding so
    they fail loudly instead of being skipped silently.
    """
    findings: List[Finding] = []
    for f in _iter_py_files(paths, include_fixtures):
        rel = _relpath(f)
        try:
            source = f.read_text(encoding="utf-8")
        except OSError as exc:  # pragma: no cover - filesystem race
            findings.append(Finding(rel, 1, 0, "SIM003", f"unreadable file: {exc}"))
            continue
        try:
            findings.extend(
                Finding(rel, fd.line, fd.col, fd.code, fd.message)
                for fd in lint_source(source, path=str(f))
            )
        except SyntaxError as exc:
            findings.append(
                Finding(rel, exc.lineno or 1, 0, "SIM003", f"syntax error: {exc.msg}")
            )
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))


def _relpath(path: Path) -> str:
    """Repo-relative forward-slash path when possible (stable baseline keys)."""
    try:
        rel = path.resolve().relative_to(Path.cwd())
    except ValueError:
        rel = path
    return rel.as_posix()
