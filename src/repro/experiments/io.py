"""CSV persistence for sweep results.

Every figure bench can dump its measured series next to the printed chart
so downstream users can re-plot with real tooling.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.errors import MeasurementError
from repro.metrics.collector import RunResult

__all__ = ["sweep_rows", "write_csv", "read_csv"]

_FIELDS = [
    "policy",
    "pattern",
    "load",
    "throughput",
    "offered",
    "avg_latency",
    "p99_latency",
    "power_mw",
    "grants",
    "dpm_transitions",
]


def sweep_rows(results: Dict[str, List[RunResult]]) -> List[Dict[str, object]]:
    """Flatten {policy: [RunResult per load]} into CSV-ready dicts."""
    rows: List[Dict[str, object]] = []
    for policy, runs in results.items():
        for r in runs:
            rows.append(
                {
                    "policy": policy,
                    "pattern": r.extra.get("pattern", ""),
                    "load": r.extra.get("load", ""),
                    "throughput": r.throughput,
                    "offered": r.offered,
                    "avg_latency": r.avg_latency,
                    "p99_latency": r.p99_latency,
                    "power_mw": r.power_mw,
                    "grants": r.extra.get("grants", 0),
                    "dpm_transitions": r.extra.get("dpm_transitions", 0),
                }
            )
    return rows


def write_csv(path: Union[str, Path], rows: Sequence[Dict[str, object]]) -> Path:
    """Write rows (must cover the standard fields) to ``path``."""
    path = Path(path)
    if not rows:
        raise MeasurementError("refusing to write an empty CSV")
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_FIELDS, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def read_csv(path: Union[str, Path]) -> List[Dict[str, str]]:
    """Read a CSV produced by :func:`write_csv`."""
    path = Path(path)
    with path.open() as fh:
        return list(csv.DictReader(fh))
