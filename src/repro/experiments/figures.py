"""Shared rendering for the Figure 5/6 load-sweep panels.

Each panel = one traffic pattern, three stacked charts (throughput,
latency, power vs offered load) for the four configurations, plus a table
and the headline ratios the paper quotes in §4.2.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.experiments.ascii_plot import ascii_chart
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.metrics.collector import RunResult
from repro.metrics.report import format_table, ratio

__all__ = ["FigurePanel", "render_panel", "headline_ratios"]


class FigurePanel:
    """Results of one pattern sweep, ready to render or persist."""

    def __init__(self, spec: SweepSpec, results: Dict[str, List[RunResult]]) -> None:
        self.spec = spec
        self.results = results

    @classmethod
    def run(cls, spec: SweepSpec, **kwargs) -> "FigurePanel":
        return cls(spec, run_sweep(spec, **kwargs))

    # ------------------------------------------------------------------
    def series(self, metric: str) -> Dict[str, List[float]]:
        out = {}
        for policy, runs in self.results.items():
            values = []
            for r in runs:
                v = getattr(r, metric)
                if metric == "avg_latency" and r.labeled_delivered == 0:
                    v = math.nan  # saturated: no labeled packet came back
                values.append(v)
            out[policy] = values
        return out

    def render(self) -> str:
        return render_panel(self)

    def table(self) -> str:
        rows = []
        for policy, runs in self.results.items():
            for load, r in zip(self.spec.loads, runs):
                rows.append(
                    [
                        policy,
                        load,
                        r.throughput,
                        r.avg_latency if r.labeled_delivered else float("nan"),
                        r.power_mw,
                        r.extra.get("grants", 0),
                    ]
                )
        return format_table(
            ["policy", "load", "throughput", "latency", "power_mW", "grants"],
            rows,
            title=f"== {self.spec.pattern} sweep ({self.spec.boards}x"
            f"{self.spec.nodes_per_board} nodes) ==",
        )


def render_panel(panel: FigurePanel) -> str:
    loads = list(panel.spec.loads)
    parts = [panel.table(), ""]
    for metric, label in (
        ("throughput", "throughput [pkt/node/cyc]"),
        ("avg_latency", "latency [cycles]"),
        ("power_mw", "power [mW]"),
    ):
        parts.append(
            ascii_chart(
                loads,
                panel.series(metric),
                title=f"-- {panel.spec.pattern}: {label} vs load --",
                x_label="offered load (fraction of N_c)",
                y_label=label.split(" [")[0],
            )
        )
        parts.append("")
    parts.append(headline_ratios(panel))
    return "\n".join(parts)


def headline_ratios(panel: FigurePanel) -> str:
    """The §4.2 comparisons: peak-throughput and mean-power ratios vs NP-NB."""
    results = panel.results
    if "NP-NB" not in results:
        return ""
    base = results["NP-NB"]
    base_peak = max(r.throughput for r in base)
    base_power = sum(r.power_mw for r in base) / len(base)
    rows = []
    for policy, runs in results.items():
        peak = max(r.throughput for r in runs)
        power = sum(r.power_mw for r in runs) / len(runs)
        rows.append(
            [
                policy,
                peak,
                ratio(peak, base_peak),
                power,
                ratio(power, base_power),
            ]
        )
    return format_table(
        ["policy", "peak_thr", "thr_vs_NP-NB", "mean_power_mW", "power_vs_NP-NB"],
        rows,
        title=f"-- {panel.spec.pattern}: headline ratios (vs NP-NB) --",
    )
