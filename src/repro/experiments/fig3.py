"""Figure 3: the power/bandwidth design space as time series.

The paper's conceptual figure shows, for each of NP-NB / P-NB / NP-B / P-B,
how link power level and utilization evolve as traffic intensity changes.
We reproduce it with an actual simulation: a hot board-pair whose offered
load steps low -> high -> low, probing the pair's static channel every
quarter-window.  The four corners then show exactly the paper's story:

* NP-NB: power pinned at P_high regardless of utilization;
* P-NB : power tracks utilization between the three levels;
* NP-B : extra wavelengths appear under load (channel count steps up),
  power roughly doubles while it does;
* P-B  : extra wavelengths *and* per-channel scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import ERapidConfig
from repro.core.engine import FastEngine
from repro.core.policies import POLICIES
from repro.metrics.collector import MeasurementPlan
from repro.metrics.timeseries import ProbeSample
from repro.network.packet import PacketFactory
from repro.network.topology import ERapidTopology
from repro.sim.rng import RngRegistry
from repro.traffic.injection import ProfiledBernoulliProcess, TrafficSource
from repro.traffic.patterns import complement
from repro.traffic.workload import WorkloadSpec

__all__ = ["DesignSpaceResult", "run_fig3", "render_fig3"]

#: Offered-load profile (cycles, packets/node/cycle): low -> high -> low.
#: The high phase oversubscribes one channel (~0.006 pkt/node/cyc for the
#: hot pair) but fits in two, so the bandwidth-reconfigured corners absorb
#: it and the backlog drains quickly once the load drops.
DEFAULT_PROFILE = [(0.0, 0.002), (8000.0, 0.008), (18000.0, 0.002)]


@dataclass
class DesignSpaceResult:
    """Per-policy channel samples + system power series."""

    policy: str
    samples: List[ProbeSample]
    pair_channels: List[int]
    times: List[float]


def run_fig3(
    boards: int = 4,
    nodes_per_board: int = 4,
    profile: List = None,
    horizon: float = 28000.0,
    sample_period: float = 500.0,
) -> Dict[str, DesignSpaceResult]:
    """Run the staged-traffic experiment for all four configurations."""
    profile = profile if profile is not None else list(DEFAULT_PROFILE)
    topo = ERapidTopology(boards=boards, nodes_per_board=nodes_per_board)
    pattern = complement(topo.total_nodes)
    out: Dict[str, DesignSpaceResult] = {}
    # The probed channel: board 0's static wavelength toward its complement
    # board (the hot pair under complement traffic).
    hot_dst = boards - 1
    for name, policy in POLICIES.items():
        config = ERapidConfig(topology=topo, policy=policy)
        hot_w = None
        plan = MeasurementPlan(warmup=1000, measure=horizon - 1000, drain_limit=0)
        factory = PacketFactory()
        registry = RngRegistry(seed=3)
        sources = [
            TrafficSource(
                node,
                pattern,
                ProfiledBernoulliProcess(list(profile)),
                factory=factory,
                rng=registry.stream(f"fig3.{node}"),
            )
            for node in range(topo.total_nodes)
        ]
        engine = FastEngine(config, WorkloadSpec(pattern="complement"), plan,
                            sources=sources)
        hot_w = engine.srs.rwa.wavelength_for(0, hot_dst)
        from repro.metrics.timeseries import ChannelProbe

        probe = ChannelProbe(engine, hot_w, hot_dst, period=sample_period)
        pair_counts: List[int] = []
        times: List[float] = []

        def sampler(engine=engine, pair_counts=pair_counts, times=times):
            while True:
                yield engine.sim.timeout(sample_period)
                times.append(engine.sim.now)
                pair_counts.append(len(engine.srs.channels_from(0, hot_dst)))

        engine.start()
        probe.start()
        engine.sim.process(sampler(), name="pair-count-probe")
        engine.sim.run(until=horizon)
        out[name] = DesignSpaceResult(
            policy=name,
            samples=list(probe.samples),
            pair_channels=pair_counts,
            times=times,
        )
    return out


def render_fig3(results: Dict[str, DesignSpaceResult]) -> str:
    """Text rendering: per-policy time series of level/power/util/channels."""
    from repro.metrics.report import format_table

    parts = []
    for name, res in results.items():
        rows = []
        for sample, nch in zip(res.samples, res.pair_channels):
            rows.append(
                [
                    sample.time,
                    sample.level_name,
                    sample.power_mw,
                    round(sample.utilization, 3),
                    nch,
                ]
            )
        parts.append(
            format_table(
                ["t", "level", "power_mW", "util", "pair_channels"],
                rows[:: max(1, len(rows) // 14)],
                title=f"== Figure 3 ({name}): hot channel over the load ramp ==",
            )
        )
        parts.append("")
    return "\n".join(parts)
