"""Wavelength-allocation timeline rendering.

Makes DBR visible: sample the SRS ownership map on a fixed period and
render, per destination board, one row per wavelength whose cells show the
owning board over time (``.`` = dark, ``X`` = failed).  The textual
equivalent of an allocation Gantt chart::

    dest board 3 (owner per λ per sample)
    λ0 | . . . 0 0 0 0 0
    λ1 | 2 2 2 0 0 0 0 0
    λ2 | 1 1 1 1 1 1 1 1
    ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from repro.errors import MeasurementError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import FastEngine

__all__ = ["AllocationProbe", "render_allocation"]


@dataclass
class AllocationProbe:
    """Samples the full ownership map every ``period`` cycles."""

    engine: "FastEngine"
    period: float = 1000.0
    times: List[float] = field(default_factory=list)
    #: snapshots[i][d][w] = owner board or None.
    snapshots: List[List[List[Optional[int]]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise MeasurementError(f"probe period must be positive, got {self.period}")

    def start(self) -> None:
        self.engine.sim.process(self._run(), name="allocation-probe")

    def _run(self):
        sim = self.engine.sim
        srs = self.engine.srs
        while True:
            yield sim.timeout(self.period)
            self.times.append(sim.now)
            self.snapshots.append([list(row) for row in srs.owner])

    # ------------------------------------------------------------------
    def grants_observed(self) -> int:
        """Number of ownership changes between consecutive snapshots."""
        changes = 0
        for prev, cur in zip(self.snapshots, self.snapshots[1:]):
            for row_p, row_c in zip(prev, cur):
                changes += sum(1 for a, b in zip(row_p, row_c) if a != b)
        return changes


def render_allocation(
    probe: AllocationProbe, dests: Optional[List[int]] = None
) -> str:
    """Render the sampled ownership timeline as text."""
    if not probe.snapshots:
        raise MeasurementError("probe has no samples; was it started?")
    engine = probe.engine
    boards = engine.topology.boards
    wavelengths = engine.topology.wavelengths
    dests = list(range(boards)) if dests is None else dests
    lines: List[str] = []
    header = "t/1000:  " + " ".join(
        f"{t / 1000:.0f}".rjust(2) for t in probe.times
    )
    for d in dests:
        lines.append(f"dest board {d} (owner per λ per sample)")
        lines.append(header)
        for w in range(wavelengths):
            cells = []
            for snap in probe.snapshots:
                owner = snap[d][w]
                if engine.srs.is_failed(d, w):
                    cells.append(" X")
                elif owner is None:
                    cells.append(" .")
                else:
                    cells.append(str(owner).rjust(2))
            lines.append(f"λ{w}      |" + " ".join(cells))
        lines.append("")
    return "\n".join(lines)
