"""Experiment harness: load sweeps, figure panels, Table 1 regeneration,
ablations, ASCII charts and CSV persistence."""

from repro.experiments.ablations import (
    ablate_dpm_smoothing,
    ablate_limited_dbr,
    ablate_power_levels,
    ablate_thresholds,
    ablate_window,
)
from repro.experiments.allocation_view import AllocationProbe, render_allocation
from repro.experiments.ascii_plot import ascii_chart
from repro.experiments.fig3 import DesignSpaceResult, render_fig3, run_fig3
from repro.experiments.fig5 import fig5_complement, fig5_uniform
from repro.experiments.fig6 import fig6_butterfly, fig6_shuffle
from repro.experiments.figures import FigurePanel, headline_ratios, render_panel
from repro.experiments.io import read_csv, sweep_rows, write_csv
from repro.experiments.runner import FIGURE_PATTERNS, reproduce_all
from repro.experiments.sweep import PAPER_LOADS, SweepSpec, run_sweep
from repro.experiments.table1 import render_table1, table1_checks

__all__ = [
    "AllocationProbe",
    "DesignSpaceResult",
    "FigurePanel",
    "PAPER_LOADS",
    "SweepSpec",
    "ablate_dpm_smoothing",
    "ablate_limited_dbr",
    "ablate_power_levels",
    "ablate_thresholds",
    "ablate_window",
    "ascii_chart",
    "fig5_complement",
    "fig5_uniform",
    "fig6_butterfly",
    "fig6_shuffle",
    "headline_ratios",
    "FIGURE_PATTERNS",
    "read_csv",
    "render_allocation",
    "render_fig3",
    "reproduce_all",
    "render_panel",
    "render_table1",
    "run_fig3",
    "run_sweep",
    "sweep_rows",
    "table1_checks",
    "write_csv",
]
