"""ASCII line charts.

The execution environment has no plotting stack, so the harness renders the
paper's figures as aligned text charts (plus CSV for external plotting).
Good enough to eyeball who wins, by what factor, and where curves cross.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import MeasurementError

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def ascii_chart(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render multiple y-series over shared x values as an ASCII chart."""
    if not x or not series:
        raise MeasurementError("ascii_chart needs x values and >= 1 series")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise MeasurementError(
                f"series {name!r} has {len(ys)} points but x has {len(x)}"
            )
    if width < 16 or height < 4:
        raise MeasurementError("chart too small")

    all_y = [y for ys in series.values() for y in ys if y == y]  # drop NaN
    if not all_y:
        raise MeasurementError("all series values are NaN")
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(x), max(x)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for (name, ys), marker in zip(series.items(), _MARKERS):
        for xv, yv in zip(x, ys):
            if yv != yv:  # NaN: skip
                continue
            col = int((xv - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((yv - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(f"[{y_label}]  {legend}")
    top_label = format(y_hi, ".4g")
    bot_label = format(y_lo, ".4g")
    label_w = max(len(top_label), len(bot_label))
    for i, row_cells in enumerate(grid):
        if i == 0:
            label = top_label.rjust(label_w)
        elif i == height - 1:
            label = bot_label.rjust(label_w)
        else:
            label = " " * label_w
        lines.append(f"{label} |{''.join(row_cells)}")
    lines.append(" " * label_w + " +" + "-" * width)
    left = format(x_lo, ".4g")
    right = format(x_hi, ".4g")
    pad = width - len(left) - len(right)
    lines.append(
        " " * (label_w + 2) + left + " " * max(1, pad) + right + f"  [{x_label}]"
    )
    return "\n".join(lines)
