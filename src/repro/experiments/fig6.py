"""Figure 6: throughput, latency and power vs load — butterfly and perfect
shuffle traffic on the 64-node E-RAPID, all four configurations."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.fig5 import _spec
from repro.experiments.figures import FigurePanel
from repro.experiments.sweep import PAPER_LOADS
from repro.metrics.collector import MeasurementPlan

__all__ = ["fig6_butterfly", "fig6_shuffle"]


def fig6_butterfly(
    loads: Sequence[float] = PAPER_LOADS,
    plan: Optional[MeasurementPlan] = None,
) -> FigurePanel:
    """Left half of Figure 6: butterfly (swap MSB/LSB) permutation —
    each board concentrates on two destination boards."""
    return FigurePanel.run(_spec("butterfly", loads, plan))


def fig6_shuffle(
    loads: Sequence[float] = PAPER_LOADS,
    plan: Optional[MeasurementPlan] = None,
) -> FigurePanel:
    """Right half of Figure 6: perfect shuffle (rotate-left) permutation."""
    return FigurePanel.run(_spec("perfect_shuffle", loads, plan))
