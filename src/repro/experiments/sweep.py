"""Load-sweep runner — the engine behind Figures 5 and 6.

§4: the network load is varied from 0.1 to 0.9 of the (uniform-random)
network capacity; each (policy, pattern, load) triple is one simulation
run.  :func:`run_sweep` executes the matrix with common random numbers
across policies so curves differ only by the mechanism under test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import ERapidConfig
from repro.core.engine import FastEngine
from repro.core.policies import POLICIES
from repro.errors import ConfigurationError
from repro.metrics.collector import MeasurementPlan, RunResult
from repro.traffic.workload import WorkloadSpec

__all__ = ["SweepSpec", "run_sweep", "PAPER_LOADS"]

#: §4's sweep points.
PAPER_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass(frozen=True)
class SweepSpec:
    """One figure panel: a pattern swept over loads for several policies."""

    pattern: str = "uniform"
    loads: Sequence[float] = PAPER_LOADS
    policies: Sequence[str] = ("NP-NB", "P-NB", "NP-B", "P-B")
    boards: int = 8
    nodes_per_board: int = 8
    seed: int = 1
    plan: MeasurementPlan = field(
        default_factory=lambda: MeasurementPlan(
            warmup=8000.0, measure=12000.0, drain_limit=24000.0
        )
    )

    def __post_init__(self) -> None:
        if not self.loads:
            raise ConfigurationError("sweep needs at least one load point")
        for p in self.policies:
            if p not in POLICIES:
                raise ConfigurationError(f"unknown policy {p!r}")


def run_sweep(
    spec: SweepSpec,
    base_config: Optional[ERapidConfig] = None,
    progress=None,
) -> Dict[str, List[RunResult]]:
    """Run the full (policy × load) matrix; returns {policy: [results]}.

    ``progress(policy, load, result)`` is invoked after each run when
    given (the CLI uses it for live output).
    """
    from repro.network.topology import ERapidTopology

    if base_config is None:
        base_config = ERapidConfig(
            topology=ERapidTopology(
                boards=spec.boards, nodes_per_board=spec.nodes_per_board
            )
        )
    results: Dict[str, List[RunResult]] = {}
    for policy_name in spec.policies:
        config = base_config.with_policy(POLICIES[policy_name])
        runs: List[RunResult] = []
        for load in spec.loads:
            workload = WorkloadSpec(
                pattern=spec.pattern, load=load, seed=spec.seed
            )
            engine = FastEngine(config, workload, spec.plan)
            result = engine.run()
            runs.append(result)
            if progress is not None:
                progress(policy_name, load, result)
        results[policy_name] = runs
    return results
