"""Load-sweep runner — the engine behind Figures 5 and 6.

§4: the network load is varied from 0.1 to 0.9 of the (uniform-random)
network capacity; each (policy, pattern, load) triple is one simulation
run.  :func:`run_sweep` executes the matrix with common random numbers
across policies so curves differ only by the mechanism under test.

Every cell of the matrix is an independent simulation, so the runner
supports:

* ``jobs=N`` — fan the runs out to a process pool
  (:mod:`repro.perf.executor`); results are reassembled in task order and
  are bit-identical to serial execution;
* ``cache=RunCache(...)`` — skip runs whose content address
  (:mod:`repro.perf.cache`) is already on disk;
* ``progress(...)`` — stream per-run completion lines (cache hits first,
  in deterministic order, then live runs as they finish).

:func:`run_sweep_matrix` is the multi-panel generalization ``reproduce``
uses to fan all four Figure 5/6 panels into one pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.config import ERapidConfig
from repro.core.policies import POLICIES
from repro.errors import ConfigurationError
from repro.metrics.collector import MeasurementPlan, RunResult
from repro.traffic.workload import WorkloadSpec

__all__ = [
    "SweepSpec",
    "run_sweep",
    "run_sweep_matrix",
    "PAPER_LOADS",
    "MatrixProgress",
    "SweepProgress",
]

#: §4's sweep points.
PAPER_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)

#: ``progress(policy, load, result)`` — per-run completion hook.
SweepProgress = Callable[[str, float, RunResult], None]

#: Fresh results buffered per batched cache write (see
#: :meth:`repro.perf.cache.RunCache.put_many`).
_PUT_CHUNK = 32
#: ``progress(panel, policy, load, result, cached)`` — matrix-wide hook.
MatrixProgress = Callable[[str, str, float, RunResult, bool], None]


@dataclass(frozen=True)
class SweepSpec:
    """One figure panel: a pattern swept over loads for several policies."""

    pattern: str = "uniform"
    loads: Sequence[float] = PAPER_LOADS
    policies: Sequence[str] = ("NP-NB", "P-NB", "NP-B", "P-B")
    boards: int = 8
    nodes_per_board: int = 8
    seed: int = 1
    plan: MeasurementPlan = field(
        default_factory=lambda: MeasurementPlan(
            warmup=8000.0, measure=12000.0, drain_limit=24000.0
        )
    )

    def __post_init__(self) -> None:
        if not self.loads:
            raise ConfigurationError("sweep needs at least one load point")
        for p in self.policies:
            if p not in POLICIES:
                raise ConfigurationError(f"unknown policy {p!r}")

    def tasks(
        self, base_config: Optional[ERapidConfig] = None
    ) -> List["RunTask"]:
        """The exact run-task list :func:`run_sweep` executes, in order.

        Exposed so callers (the CLI's verbose shard-plan output, the
        shard planner) can reason about a sweep's layout without running
        it; kept in lock-step with :func:`run_sweep_matrix`'s cell
        construction by test.
        """
        from repro.perf.executor import RunTask

        base = base_config or _default_config(self)
        out: List[RunTask] = []
        for policy_name in self.policies:
            config = base.with_policy(POLICIES[policy_name])
            for load in self.loads:
                out.append(
                    RunTask(
                        config,
                        WorkloadSpec(
                            pattern=self.pattern, load=load, seed=self.seed
                        ),
                        self.plan,
                    )
                )
        return out


def _default_config(spec: SweepSpec) -> ERapidConfig:
    from repro.network.topology import ERapidTopology

    return ERapidConfig(
        topology=ERapidTopology(
            boards=spec.boards, nodes_per_board=spec.nodes_per_board
        )
    )


def run_sweep(
    spec: SweepSpec,
    base_config: Optional[ERapidConfig] = None,
    progress: Optional[SweepProgress] = None,
    jobs: int = 1,
    cache: Optional["RunCache"] = None,
    engine: str = "fast",
    slab_shard: Optional[int] = None,
) -> Dict[str, List[RunResult]]:
    """Run the full (policy × load) matrix; returns {policy: [results]}.

    ``progress(policy, load, result)`` is invoked after each run when
    given (the CLI uses it for live output).  ``jobs``/``cache``/
    ``engine``/``slab_shard`` behave as documented on
    :func:`run_sweep_matrix`; outputs are bit-identical for every
    ``jobs`` value, every shard layout, and across cache hits.
    """
    matrix_progress: Optional[MatrixProgress] = None
    if progress is not None:
        hook = progress  # narrow for the closure

        def matrix_progress(
            panel: str, policy: str, load: float, result: RunResult, cached: bool
        ) -> None:
            hook(policy, load, result)

    return run_sweep_matrix(
        {"sweep": spec},
        base_configs={"sweep": base_config} if base_config is not None else None,
        progress=matrix_progress,
        jobs=jobs,
        cache=cache,
        engine=engine,
        slab_shard=slab_shard,
    )["sweep"]


def run_sweep_matrix(
    specs: Mapping[str, SweepSpec],
    base_configs: Optional[Mapping[str, Optional[ERapidConfig]]] = None,
    progress: Optional[MatrixProgress] = None,
    jobs: int = 1,
    cache: Optional["RunCache"] = None,
    engine: str = "fast",
    slab_shard: Optional[int] = None,
) -> Dict[str, Dict[str, List[RunResult]]]:
    """Run several sweep panels as one flat (panel × policy × load) batch.

    Parameters
    ----------
    specs:
        ``{panel name: SweepSpec}``; iteration order fixes task order.
    base_configs:
        Optional per-panel config override (same keys as ``specs``).
    progress:
        ``progress(panel, policy, load, result, cached)`` — called once
        per run: immediately (deterministic order) for cache hits, then
        as live runs complete.
    jobs:
        Process-pool width; ``1`` executes inline.  Results are
        reassembled by task index, so every ``jobs`` value yields
        byte-identical output.
    cache:
        Optional :class:`repro.perf.cache.RunCache`; hits skip execution
        (answered by one batched :meth:`~repro.perf.cache.RunCache.
        get_many` lookup), misses are stored after running through
        chunked :meth:`~repro.perf.cache.RunCache.put_many` writes.
    engine:
        ``"fast"`` (default) runs every point on the scalar
        :class:`~repro.core.engine.FastEngine`; ``"batch"`` routes points
        the vectorized model covers through the sharded
        :func:`repro.perf.executor.run_sweep_batched` path — under
        ``jobs > 1`` covered runs are split into per-worker sub-slabs
        scheduled alongside scalar fallback on one pool.  Cache keys are
        engine-aware per point: a point the batch engine executes is
        keyed in the batch keyspace, a fallback point keeps its scalar
        key (its result *is* a scalar result).
    slab_shard:
        Batch-engine shard-size override (see :mod:`repro.perf.shards`);
        layout never changes results, only wall-clock time.

    Returns ``{panel: {policy: [RunResult per load]}}``.
    """
    from repro.perf.executor import RunTask, execute_tasks, run_sweep_batched

    if engine not in ("fast", "batch"):
        raise ConfigurationError(
            f"unknown sweep engine {engine!r}; expected 'fast' or 'batch'"
        )
    batch_covers: Optional[Callable[..., Optional[str]]] = None
    if engine == "batch":
        from repro.core.batch import coverage_gap

        batch_covers = coverage_gap

    results: Dict[str, Dict[str, List[Optional[RunResult]]]] = {
        name: {p: [None] * len(spec.loads) for p in spec.policies}
        for name, spec in specs.items()
    }
    #: Every (panel, policy, load, slot, config, workload, plan, key,
    #: point engine) cell in deterministic spec order.
    cells: List[Tuple] = []
    for name, spec in specs.items():
        base = (base_configs or {}).get(name) or _default_config(spec)
        for policy_name in spec.policies:
            config = base.with_policy(POLICIES[policy_name])
            for li, load in enumerate(spec.loads):
                workload = WorkloadSpec(
                    pattern=spec.pattern, load=load, seed=spec.seed
                )
                point_engine = "fast"
                if batch_covers is not None and (
                    batch_covers(config, workload, spec.plan) is None
                ):
                    point_engine = "batch"
                key: Optional[str] = None
                if cache is not None:
                    key = cache.key_for(
                        config, workload, spec.plan, engine=point_engine
                    )
                cells.append(
                    (name, policy_name, load, li, config, workload,
                     spec.plan, key, point_engine)
                )

    # One batched lookup answers every cache-addressable cell up front;
    # hits report in deterministic spec order, exactly as before.
    cached: List[Optional[RunResult]] = (
        cache.get_many([c[7] for c in cells])
        if cache is not None
        else [None] * len(cells)
    )

    tasks: List[RunTask] = []
    #: Parallel to ``tasks``: (panel, policy, load, slot index, cache key,
    #: engine keyspace of the point).
    meta: List[Tuple[str, str, float, int, Optional[str], str]] = []
    for cell, hit in zip(cells, cached):
        name, policy_name, load, li, config, workload, plan, key, pe = cell
        if hit is not None:
            results[name][policy_name][li] = hit
            if progress is not None:
                progress(name, policy_name, load, hit, True)
            continue
        tasks.append(RunTask(config, workload, plan))
        meta.append((name, policy_name, load, li, key, pe))

    put_buffer: List[Tuple] = []

    def flush_puts() -> None:
        if cache is not None and put_buffer:
            cache.put_many(put_buffer)
            put_buffer.clear()

    def on_result(index: int, result: RunResult) -> None:
        name, policy_name, load, li, key, point_engine = meta[index]
        results[name][policy_name][li] = result
        if cache is not None and key is not None:
            put_buffer.append((key, result, point_engine))
            if len(put_buffer) >= _PUT_CHUNK:
                flush_puts()
        if progress is not None:
            progress(name, policy_name, load, result, False)

    if engine == "batch":
        run_sweep_batched(
            tasks, jobs=jobs, on_result=on_result, slab_shard=slab_shard
        )
    else:
        execute_tasks(tasks, jobs=jobs, on_result=on_result)
    flush_puts()

    # All slots are filled now; narrow Optional away for callers.
    return {
        name: {p: list(runs) for p, runs in panels.items()}  # type: ignore[misc]
        for name, panels in results.items()
    }


from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.cache import RunCache
    from repro.perf.executor import RunTask
