"""Table 1: simulation network parameters.

Regenerates the paper's parameter table from the actual objects the
simulator runs with — so the bench fails if the code ever drifts from the
published operating points.
"""

from __future__ import annotations

from typing import List

from repro.core.config import ControlParams, RouterParams
from repro.metrics.report import format_kv, format_table
from repro.optics.optical_link import OpticalLinkTiming
from repro.power.components import ComponentPower
from repro.power.levels import PowerLevelTable

__all__ = ["render_table1", "table1_checks"]


def render_table1() -> str:
    """The full Table 1, regenerated."""
    router = RouterParams()
    control = ControlParams()
    timing = OpticalLinkTiming()
    levels = PowerLevelTable()
    comp = ComponentPower()

    parts: List[str] = []
    parts.append(
        format_kv(
            {
                "channel width": f"{router.channel_bits} bits",
                "router clock": f"{router.clock_ghz * 1000:.0f} MHz",
                "unidirectional port bandwidth": f"{router.port_gbps} Gbps",
                "bidirectional port bandwidth": f"{2 * router.port_gbps} Gbps",
                "packet size": f"{router.packet_bytes} B = "
                f"{router.flits_per_packet} flits",
                "per-packet pipeline": "RC + VA + SA + ST, 1 cycle each",
                "flow control": f"credit-based, {router.credit_cycles}-cycle "
                "credit delay",
                "reconfiguration window R_w": f"{control.window_cycles} cycles",
            },
            title="-- Electrical router model (SGI Spider) --",
        )
    )
    rows = []
    for level in levels.levels:
        ser = timing.packet_service_cycles(router.packet_bytes, level.bit_rate_gbps)
        rows.append(
            [
                level.name,
                level.bit_rate_gbps,
                level.vdd,
                level.link_power_mw,
                round(ser, 2),
            ]
        )
    parts.append("")
    parts.append(
        format_table(
            ["level", "bit rate (Gbps)", "V_DD (V)", "link power (mW)",
             "64B packet (cycles)"],
            rows,
            title="-- Optical power levels --",
        )
    )
    breakdown = comp.breakdown_mw(0.9, 5.0)
    parts.append("")
    parts.append(
        format_table(
            ["component", "power @ 5 Gbps / 0.9 V (mW)"],
            [[k, round(v, 4)] for k, v in breakdown.items()],
            title="-- Link component breakdown --",
        )
    )
    return "\n".join(parts)


def table1_checks() -> None:
    """Hard assertions against the published numbers (used by the bench)."""
    router = RouterParams()
    assert router.port_gbps == 6.4
    assert router.packet_serialization_cycles == 32
    levels = PowerLevelTable()
    published = [(2.5, 0.45, 8.6), (3.3, 0.60, 26.0), (5.0, 0.90, 43.03)]
    for level, (br, vdd, mw) in zip(levels.levels, published):
        assert level.bit_rate_gbps == br
        assert level.vdd == vdd
        assert level.link_power_mw == mw
    comp = ComponentPower().breakdown_mw(0.9, 5.0)
    assert abs(comp["vcsel_driver"] - 1.23) < 1e-9
    assert abs(comp["tia"] - 25.02) < 1e-9
    assert abs(comp["cdr"] - 17.05) < 1e-9
