"""Figure 5: throughput, latency and power vs load — uniform and complement
traffic on the 64-node E-RAPID, all four configurations."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.figures import FigurePanel
from repro.experiments.sweep import PAPER_LOADS, SweepSpec
from repro.metrics.collector import MeasurementPlan

__all__ = ["fig5_uniform", "fig5_complement"]


def _spec(pattern: str, loads: Sequence[float], plan: Optional[MeasurementPlan]) -> SweepSpec:
    kwargs = {"pattern": pattern, "loads": tuple(loads)}
    if plan is not None:
        kwargs["plan"] = plan
    return SweepSpec(**kwargs)


def fig5_uniform(
    loads: Sequence[float] = PAPER_LOADS,
    plan: Optional[MeasurementPlan] = None,
) -> FigurePanel:
    """Left half of Figure 5: uniform random traffic."""
    return FigurePanel.run(_spec("uniform", loads, plan))


def fig5_complement(
    loads: Sequence[float] = PAPER_LOADS,
    plan: Optional[MeasurementPlan] = None,
) -> FigurePanel:
    """Right half of Figure 5: complement traffic — E-RAPID's worst case,
    where every board's traffic collapses onto one static wavelength."""
    return FigurePanel.run(_spec("complement", loads, plan))
