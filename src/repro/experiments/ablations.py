"""Ablation studies for the design choices the paper calls out.

* :func:`ablate_window` — R_w sweep ("We use network simulation to
  determine an optimum value of R_w to be 2000 simulation cycles", §3.1).
* :func:`ablate_thresholds` — L_min/L_max/B_max sensitivity (§3.1–3.2).
* :func:`ablate_power_levels` — number of power levels ("More power levels
  … can further improve the performance", §5).
* :func:`ablate_limited_dbr` — grant caps ("Cost-effective design
  alternatives that provide limited flexibility for reconfigurability",
  §5).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from repro.core.config import ControlParams, ERapidConfig
from repro.core.engine import FastEngine
from repro.core.policies import P_B, ReconfigPolicy, Thresholds
from repro.metrics.collector import MeasurementPlan, RunResult
from repro.metrics.report import format_table
from repro.network.topology import ERapidTopology
from repro.power.levels import PowerLevelTable
from repro.traffic.workload import WorkloadSpec

__all__ = [
    "ablate_window",
    "ablate_thresholds",
    "ablate_power_levels",
    "ablate_limited_dbr",
    "ablate_dpm_smoothing",
]

_PLAN = MeasurementPlan(warmup=8000, measure=10000, drain_limit=16000)


def _run(config: ERapidConfig, pattern: str, load: float, seed: int = 1,
         plan: MeasurementPlan = _PLAN) -> RunResult:
    engine = FastEngine(config, WorkloadSpec(pattern=pattern, load=load, seed=seed), plan)
    return engine.run()


def _base_config(boards: int = 4, nodes: int = 4, policy: ReconfigPolicy = P_B,
                 **over) -> ERapidConfig:
    return ERapidConfig(
        topology=ERapidTopology(boards=boards, nodes_per_board=nodes),
        policy=policy,
        **over,
    )


# ----------------------------------------------------------------------
def ablate_window(
    windows: Sequence[int] = (500, 1000, 2000, 4000, 8000),
    pattern: str = "uniform",
    load: float = 0.5,
) -> Tuple[List[List[object]], str]:
    """Sweep R_w; returns (rows, rendered table)."""
    rows: List[List[object]] = []
    for rw in windows:
        cfg = _base_config(control=ControlParams(window_cycles=rw))
        r = _run(cfg, pattern, load)
        rows.append(
            [rw, r.throughput, r.avg_latency, r.power_mw,
             r.extra["dpm_transitions"]]
        )
    table = format_table(
        ["R_w", "throughput", "latency", "power_mW", "transitions"],
        rows,
        title=f"== Ablation: reconfiguration window R_w "
        f"({pattern} @ {load} N_c, P-B) ==",
    )
    return rows, table


def ablate_thresholds(
    bands: Sequence[Tuple[float, float, float]] = (
        (0.3, 0.5, 0.3),
        (0.5, 0.7, 0.3),
        (0.7, 0.9, 0.3),
        (0.7, 0.9, 0.0),
        (0.7, 0.9, 0.6),
    ),
    pattern: str = "uniform",
    load: float = 0.5,
) -> Tuple[List[List[object]], str]:
    """Sweep the (L_min, L_max, B_max) triple for P-B."""
    rows: List[List[object]] = []
    for l_min, l_max, b_max in bands:
        policy = replace(
            P_B,
            name=f"P-B[{l_min},{l_max},{b_max}]",
            thresholds=Thresholds(l_min=l_min, l_max=l_max, b_max=b_max),
        )
        r = _run(_base_config(policy=policy), pattern, load)
        rows.append([l_min, l_max, b_max, r.throughput, r.avg_latency, r.power_mw])
    table = format_table(
        ["L_min", "L_max", "B_max", "throughput", "latency", "power_mW"],
        rows,
        title=f"== Ablation: DPM/DBR thresholds ({pattern} @ {load} N_c) ==",
    )
    return rows, table


def ablate_power_levels(
    level_counts: Sequence[int] = (2, 3, 5, 8),
    pattern: str = "uniform",
    load: float = 0.4,
) -> Tuple[List[List[object]], str]:
    """Sweep the number of power levels (§5 future work).

    More levels track the traffic more finely (less power) but re-clock
    more often (more transition stalls).
    """
    rows: List[List[object]] = []
    for n in level_counts:
        table_n = (
            PowerLevelTable() if n == 3 else PowerLevelTable.synthesize(n)
        )
        cfg = _base_config(power_levels=table_n)
        r = _run(cfg, pattern, load)
        rows.append(
            [n, r.throughput, r.avg_latency, r.power_mw, r.extra["dpm_transitions"]]
        )
    table = format_table(
        ["levels", "throughput", "latency", "power_mW", "transitions"],
        rows,
        title=f"== Ablation: number of power levels ({pattern} @ {load} N_c, P-B) ==",
    )
    return rows, table


def ablate_dpm_smoothing(
    alphas: Sequence[float] = (0.0, 0.25, 0.5, 0.75),
    pattern: str = "uniform",
    load: float = 0.5,
) -> Tuple[List[List[object]], str]:
    """Sweep the history weight of the DPM utilization estimate (§5's
    "multiple power scaling techniques" direction).

    Heavier smoothing suppresses level thrash (fewer re-clock stalls,
    better latency) at the cost of slower adaptation.
    """
    rows: List[List[object]] = []
    for alpha in alphas:
        policy = replace(P_B, name=f"P-B[ewma={alpha}]", dpm_smoothing=alpha)
        r = _run(_base_config(policy=policy), pattern, load)
        rows.append(
            [alpha, r.throughput, r.avg_latency, r.power_mw,
             r.extra["dpm_transitions"]]
        )
    table = format_table(
        ["ewma weight", "throughput", "latency", "power_mW", "transitions"],
        rows,
        title=f"== Ablation: DPM history smoothing ({pattern} @ {load} N_c) ==",
    )
    return rows, table


def ablate_limited_dbr(
    caps: Sequence[object] = (0, 1, 2, None),
    pattern: str = "complement",
    load: float = 0.7,
) -> Tuple[List[List[object]], str]:
    """Cap grants per destination per window (§5 cost-reduced design)."""
    rows: List[List[object]] = []
    for cap in caps:
        policy = replace(P_B, name=f"P-B[cap={cap}]", max_grants_per_dest=cap)
        r = _run(_base_config(policy=policy), pattern, load)
        rows.append(
            ["unlimited" if cap is None else cap, r.throughput, r.avg_latency,
             r.power_mw, r.extra["grants"]]
        )
    table = format_table(
        ["grant cap", "throughput", "latency", "power_mW", "grants"],
        rows,
        title=f"== Ablation: limited reconfigurability ({pattern} @ {load} N_c) ==",
    )
    return rows, table
