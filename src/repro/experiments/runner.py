"""One-command reproduction: regenerate every table and figure.

``erapid reproduce --out results/`` (or :func:`reproduce_all`) runs the
whole evaluation — Table 1, Figures 1/3/4/5/6 and the ablations — and
writes text renderings plus CSVs into the output directory.  This is the
programmatic equivalent of running the full bench suite.

The dominant cost is stage 3, the Figure 5/6 load sweeps: a (4 patterns ×
4 policies × loads) matrix of independent runs.  That stage fans out to a
process pool (``jobs=N`` / ``erapid reproduce --jobs N``) and is backed by
the content-addressed run cache (:mod:`repro.perf.cache`), so a repeated
invocation replays the sweep stage entirely from disk.  Stage timings are
measured with ``time.perf_counter`` and reported per stage in the final
log line.
"""

from __future__ import annotations

from pathlib import Path
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.experiments.ablations import (
    ablate_limited_dbr,
    ablate_power_levels,
    ablate_thresholds,
    ablate_window,
)
from repro.experiments.fig3 import render_fig3, run_fig3
from repro.experiments.figures import FigurePanel
from repro.experiments.io import sweep_rows, write_csv
from repro.experiments.sweep import SweepSpec, run_sweep_matrix
from repro.experiments.table1 import render_table1, table1_checks
from repro.metrics.collector import MeasurementPlan, RunResult
from repro.perf.cache import RunCache

__all__ = ["reproduce_all", "FIGURE_PATTERNS"]

#: The four Figure 5/6 panels.
FIGURE_PATTERNS = {
    "fig5_uniform": "uniform",
    "fig5_complement": "complement",
    "fig6_butterfly": "butterfly",
    "fig6_shuffle": "perfect_shuffle",
}


def _resolve_cache(cache: Union[bool, RunCache, None]) -> Optional[RunCache]:
    """``True`` → default store, ``False``/``None`` → disabled."""
    if isinstance(cache, RunCache):
        return cache
    if cache:
        return RunCache()
    return None


def reproduce_all(
    out_dir: Union[str, Path],
    loads: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    plan: Optional[MeasurementPlan] = None,
    log: Callable[[str], None] = print,
    jobs: int = 1,
    cache: Union[bool, RunCache, None] = True,
    engine: str = "fast",
) -> Dict[str, Path]:
    """Run every experiment; returns {artifact name: path}.

    Parameters
    ----------
    jobs:
        Process-pool width for the sweep stage (``1`` = serial).  Output
        is bit-identical for every value.
    cache:
        ``True`` (default) memoizes sweep runs in the default run cache
        (``$ERAPID_CACHE_DIR`` or ``~/.cache/erapid/runs``); pass a
        :class:`RunCache` to choose the store, or ``False`` to disable.
    engine:
        Sweep-stage engine: ``"fast"`` (scalar, default) or ``"batch"``
        (vectorized slabs with scalar fallback; statistically equivalent
        under the declared tolerances, not bit-identical).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    plan = plan or MeasurementPlan(warmup=8000, measure=10000, drain_limit=16000)
    run_cache = _resolve_cache(cache)
    written: Dict[str, Path] = {}

    def save(name: str, text: str) -> None:
        path = out / f"{name}.txt"
        path.write_text(text + "\n")
        written[name] = path
        log(f"  wrote {path}")

    start = perf_counter()
    log("[1/4] Table 1 + Figure 1 ...")
    table1_checks()
    save("table1_parameters", render_table1())
    from repro.optics.rwa import StaticRWA

    rwa = StaticRWA(8)
    rwa.validate()
    save("fig1_rwa", "Static RWA, R(1,8,8):\n" + rwa.render_table())
    table_s = perf_counter() - start

    start = perf_counter()
    log("[2/4] Figure 3 design-space time series ...")
    save("fig3_design_space", render_fig3(run_fig3()))
    fig3_s = perf_counter() - start

    start = perf_counter()
    mode = f"jobs={jobs}" if jobs > 1 else "serial"
    if engine != "fast":
        mode = f"{engine} engine, {mode}"
    cache_note = "cached" if run_cache is not None else "no cache"
    log(f"[3/4] Figure 5/6 load sweeps (4 patterns x 4 policies, {mode}, "
        f"{cache_note}) ...")
    specs = {
        name: SweepSpec(pattern=pattern, loads=tuple(loads), plan=plan)
        for name, pattern in FIGURE_PATTERNS.items()
    }

    def progress(
        panel: str, policy: str, load: float, result: RunResult, cached: bool
    ) -> None:
        suffix = " (cached)" if cached else ""
        log(
            f"  [{panel}] {policy:>5} load={load:.1f} "
            f"thr={result.throughput:.4f} power={result.power_mw:.1f}mW{suffix}"
        )

    matrix = run_sweep_matrix(
        specs, progress=progress, jobs=jobs, cache=run_cache, engine=engine
    )
    for name, spec in specs.items():
        panel = FigurePanel(spec, matrix[name])
        save(name, panel.render())
        csv_path = write_csv(out / f"{name}.csv", sweep_rows(panel.results))
        written[f"{name}.csv"] = csv_path
        log(f"  wrote {csv_path}")
    if run_cache is not None:
        stats = run_cache.stats()
        total = stats["hits"] + stats["misses"]
        log(
            f"  sweep cache: {stats['hits']}/{total} hits "
            f"({stats['puts']} stored) in {run_cache.root}"
        )
        # Fold this invocation into the store's cumulative counters so
        # `erapid cache stats` reflects harness traffic too.
        run_cache.flush_counters()
    sweeps_s = perf_counter() - start

    start = perf_counter()
    log("[4/4] Ablations ...")
    for name, fn in (
        ("ablation_window", ablate_window),
        ("ablation_thresholds", ablate_thresholds),
        ("ablation_power_levels", ablate_power_levels),
        ("ablation_limited_dbr", ablate_limited_dbr),
    ):
        _, table = fn()
        save(name, table)
    ablations_s = perf_counter() - start

    total_s = table_s + fig3_s + sweeps_s + ablations_s
    log(
        f"done in {total_s:.1f}s (table {table_s:.1f}s, fig3 {fig3_s:.1f}s, "
        f"sweeps {sweeps_s:.1f}s, ablations {ablations_s:.1f}s) — "
        f"{len(written)} artifacts in {out}"
    )
    return written
