"""One-command reproduction: regenerate every table and figure.

``erapid reproduce --out results/`` (or :func:`reproduce_all`) runs the
whole evaluation — Table 1, Figures 1/3/4/5/6 and the ablations — and
writes text renderings plus CSVs into the output directory.  This is the
programmatic equivalent of running the full bench suite.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.experiments.ablations import (
    ablate_limited_dbr,
    ablate_power_levels,
    ablate_thresholds,
    ablate_window,
)
from repro.experiments.fig3 import render_fig3, run_fig3
from repro.experiments.figures import FigurePanel
from repro.experiments.io import sweep_rows, write_csv
from repro.experiments.sweep import SweepSpec
from repro.experiments.table1 import render_table1, table1_checks
from repro.metrics.collector import MeasurementPlan

__all__ = ["reproduce_all", "FIGURE_PATTERNS"]

#: The four Figure 5/6 panels.
FIGURE_PATTERNS = {
    "fig5_uniform": "uniform",
    "fig5_complement": "complement",
    "fig6_butterfly": "butterfly",
    "fig6_shuffle": "perfect_shuffle",
}


def reproduce_all(
    out_dir: Union[str, Path],
    loads: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    plan: Optional[MeasurementPlan] = None,
    log: Callable[[str], None] = print,
) -> Dict[str, Path]:
    """Run every experiment; returns {artifact name: path}."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    plan = plan or MeasurementPlan(warmup=8000, measure=10000, drain_limit=16000)
    written: Dict[str, Path] = {}

    def save(name: str, text: str) -> None:
        path = out / f"{name}.txt"
        path.write_text(text + "\n")
        written[name] = path
        log(f"  wrote {path}")

    t0 = time.time()
    log("[1/4] Table 1 + Figure 1 ...")
    table1_checks()
    save("table1_parameters", render_table1())
    from repro.optics.rwa import StaticRWA

    rwa = StaticRWA(8)
    rwa.validate()
    save("fig1_rwa", "Static RWA, R(1,8,8):\n" + rwa.render_table())

    log("[2/4] Figure 3 design-space time series ...")
    save("fig3_design_space", render_fig3(run_fig3()))

    log("[3/4] Figure 5/6 load sweeps (4 patterns x 4 policies) ...")
    for name, pattern in FIGURE_PATTERNS.items():
        panel = FigurePanel.run(
            SweepSpec(pattern=pattern, loads=tuple(loads), plan=plan)
        )
        save(name, panel.render())
        csv_path = write_csv(out / f"{name}.csv", sweep_rows(panel.results))
        written[f"{name}.csv"] = csv_path
        log(f"  wrote {csv_path}")

    log("[4/4] Ablations ...")
    for name, fn in (
        ("ablation_window", ablate_window),
        ("ablation_thresholds", ablate_thresholds),
        ("ablation_power_levels", ablate_power_levels),
        ("ablation_limited_dbr", ablate_limited_dbr),
    ):
        _, table = fn()
        save(name, table)

    log(f"done in {time.time() - t0:.0f}s — {len(written)} artifacts in {out}")
    return written
