"""Exception hierarchy for the E-RAPID reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SimulationError(ReproError):
    """Raised for illegal operations on the discrete-event kernel."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled in the past or on a finished kernel."""


class ProcessError(SimulationError):
    """Raised for illegal process operations (e.g. yielding a non-waitable)."""


class ConfigurationError(ReproError):
    """Raised when a system/network configuration is inconsistent."""


class TopologyError(ConfigurationError):
    """Raised for invalid topology parameters or addresses."""


class WavelengthError(ReproError):
    """Raised for invalid wavelength assignments (e.g. receiver collisions)."""


class PowerModelError(ReproError):
    """Raised for invalid power-model parameters or operating points."""


class ProtocolError(ReproError):
    """Raised when the Lock-Step reconfiguration protocol is violated."""


class MeasurementError(ReproError):
    """Raised for invalid measurement configuration (e.g. zero-length window)."""


class CacheError(ReproError):
    """Raised when a run-cache key cannot be derived (unfingerprintable
    configuration object) — never for a routine miss."""


class ServiceError(ReproError):
    """Base class for sweep-service (job orchestration) errors."""


class JobSpecError(ServiceError):
    """Raised for an invalid or unparseable job specification."""


class QueueFullError(ServiceError):
    """Backpressure signal: the bounded job queue rejected a submission."""


class JobFailedError(ServiceError):
    """Raised to subscribers when the job they wait on failed."""
