"""Content-addressed on-disk cache for simulation runs.

A simulation run is a pure function of ``(ERapidConfig, WorkloadSpec,
MeasurementPlan, kernel version)`` — the determinism auditor
(:mod:`repro.analysis.determinism`) exists to keep it that way.  That
purity makes runs memoizable: the cache key is a SHA-256 over a canonical
JSON encoding of the full run description, and the value is the
:class:`~repro.metrics.collector.RunResult` (whose JSON round trip is
exact, so a cache hit is bit-identical to re-running).

Invalidation is structural, never temporal:

* any config/workload/plan field change → different key;
* a kernel semantics change → :data:`repro.sim.kernel.KERNEL_VERSION`
  bump → different key for *every* run;
* a corrupt or truncated entry reads as a miss (and is re-written).

The store location is ``$ERAPID_CACHE_DIR`` when set, else
``~/.cache/erapid/runs``.  Entries are one JSON file per key, written
atomically (tmp file + rename) so concurrent workers can share a cache
directory.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.config import ERapidConfig
from repro.errors import CacheError
from repro.metrics.collector import MeasurementPlan, RunResult
from repro.power.levels import PowerLevelTable
from repro.traffic.workload import WorkloadSpec

__all__ = [
    "RunCache",
    "run_cache_key",
    "default_cache_dir",
    "canonical_payload",
    "ENGINES",
]

#: Bump when the cache entry *format* changes (key derivation or value
#: encoding) — orthogonal to the kernel version, which tracks simulation
#: semantics.
CACHE_FORMAT = 1

#: Engine keyspaces the cache knows about.  "fast" is the default and its
#: keys are byte-for-byte what they were before engines existed (so every
#: pre-existing entry stays addressable); other engines fold their name —
#: and any engine-specific kernel version — into the payload, so a batch
#: result can never alias a scalar entry.
ENGINES = ("fast", "detailed", "batch")

_ENV_VAR = "ERAPID_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$ERAPID_CACHE_DIR`` when set, else ``~/.cache/erapid/runs``."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "erapid" / "runs"


# ----------------------------------------------------------------------
# Canonical encoding
# ----------------------------------------------------------------------
def _canonical(obj: Any) -> Any:
    """Reduce a run-description object to canonical JSON-ready data.

    Dataclasses encode as ``{"<ClassName>": {field: value, ...}}`` (the
    class name guards against two config types with coincidentally equal
    fields).  Anything unrecognized raises :class:`CacheError` — a new
    config component must be taught to the fingerprint, never silently
    repr'd (a memory address in the key would defeat caching; a partial
    encoding would alias distinct configs).
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {type(obj).__name__: fields}
    if isinstance(obj, PowerLevelTable):
        return {"PowerLevelTable": [_canonical(l) for l in obj.levels]}
    if isinstance(obj, (list, tuple)):
        return [_canonical(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    raise CacheError(
        f"cannot fingerprint {type(obj).__name__!r} for the run cache; "
        "teach repro.perf.cache._canonical about it"
    )


def canonical_payload(
    config: ERapidConfig,
    workload: WorkloadSpec,
    plan: MeasurementPlan,
    engine: str = "fast",
) -> Dict[str, Any]:
    """The full, canonical description of one run (pre-hash).

    ``engine="fast"`` produces *exactly* the historical payload (no
    ``engine`` field), so scalar keys — and every entry already on disk —
    are stable across this parameter's introduction.  Any other engine
    adds its name, and ``"batch"`` additionally folds in
    :data:`repro.core.batch.BATCH_KERNEL_VERSION` so vectorized-kernel
    changes invalidate batch entries without touching scalar ones.
    """
    from repro.sim.kernel import KERNEL_VERSION

    if engine not in ENGINES:
        raise CacheError(f"unknown engine keyspace {engine!r}")
    payload: Dict[str, Any] = {
        "cache_format": CACHE_FORMAT,
        "kernel_version": KERNEL_VERSION,
        "config": _canonical(config),
        "workload": _canonical(workload),
        "plan": _canonical(plan),
    }
    if engine != "fast":
        payload["engine"] = engine
    if engine == "batch":
        from repro.core.batch import BATCH_KERNEL_VERSION

        payload["batch_kernel_version"] = BATCH_KERNEL_VERSION
    return payload


def run_cache_key(
    config: ERapidConfig,
    workload: WorkloadSpec,
    plan: MeasurementPlan,
    engine: str = "fast",
) -> str:
    """SHA-256 content address of one run."""
    payload = json.dumps(
        canonical_payload(config, workload, plan, engine=engine),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
#: Sidecar file holding cumulative hit/miss/put counters for the store.
#: Lives alongside the entries but is never a valid entry name (keys are
#: 64 hex chars), so entry iteration skips it structurally.
_STATS_NAME = "_stats.json"


class RunCache:
    """On-disk run store with hit/miss/put counters.

    Counters are per-instance (this process's session) until
    :meth:`flush_counters` merges them into the ``_stats.json`` sidecar in
    the cache directory — the cumulative view ``erapid cache stats``
    reports.  The merge is read-modify-write under an atomic replace, so a
    racing flush from another process can drop increments but can never
    corrupt the file; the counters are operational telemetry, not
    correctness state.

    Parameters
    ----------
    root:
        Cache directory; defaults to :func:`default_cache_dir`.  Created
        lazily on the first :meth:`put`.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.batched_gets = 0
        self.batched_puts = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def key_for(
        self,
        config: ERapidConfig,
        workload: WorkloadSpec,
        plan: MeasurementPlan,
        engine: str = "fast",
    ) -> str:
        return run_cache_key(config, workload, plan, engine=engine)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or None (counts a hit/miss)."""
        path = self._path(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            result = RunResult.from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, corrupt or truncated entry: a miss, never an error.
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return result

    def put(self, key: str, result: RunResult, engine: str = "fast") -> None:
        """Store ``result`` under ``key``, crash- and race-safe.

        The payload goes to a uniquely-named temp file in the cache
        directory (``mkstemp`` — unique even across threads sharing a
        PID), is flushed to disk, and is then ``os.replace``d into place.
        A crash mid-write leaves only a stray ``*.tmp`` file, never a torn
        entry; concurrent writers of the same key each publish a complete
        entry and the last replace wins (all writers of one key carry
        bit-identical payloads by construction).  ``engine`` tags the
        entry for :meth:`by_engine_stats`; it does not affect the key
        (callers derive engine-aware keys via :meth:`key_for`).
        """
        if engine not in ENGINES:
            raise CacheError(f"unknown engine keyspace {engine!r}")
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        payload = json.dumps(
            {
                "cache_format": CACHE_FORMAT,
                "engine": engine,
                "result": result.to_dict(),
            },
            sort_keys=True,
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=f".put-{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            # Never leave the temp file behind on a failed publish.
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        with self._lock:
            self.puts += 1

    # ------------------------------------------------------------------
    # Batched I/O (slab-granular)
    # ------------------------------------------------------------------
    def get_many(self, keys: Sequence[str]) -> List[Optional[RunResult]]:
        """Look up many keys; one counter update for the whole batch.

        Results are positional (``None`` per miss).  Semantically
        identical to ``[self.get(k) for k in keys]`` but takes the
        counter lock once instead of ``len(keys)`` times and bumps
        ``batched_gets`` so ``erapid cache stats`` can show how much
        traffic goes through the batched path.
        """
        out: List[Optional[RunResult]] = []
        hits = misses = 0
        for key in keys:
            try:
                data = json.loads(self._path(key).read_text(encoding="utf-8"))
                result = RunResult.from_dict(data["result"])
            except (OSError, ValueError, KeyError, TypeError):
                # Missing, corrupt or truncated entry: a miss, never an
                # error (same contract as :meth:`get`).
                misses += 1
                out.append(None)
                continue
            hits += 1
            out.append(result)
        with self._lock:
            self.hits += hits
            self.misses += misses
            self.batched_gets += 1
        return out

    def put_many(
        self, items: Sequence[Tuple[str, RunResult, str]]
    ) -> int:
        """Store ``(key, result, engine)`` triples; returns the count.

        Two-phase publish with a batched fsync policy:

        1. **Stage** — every payload is written to its own ``mkstemp``
           temp file, flushed and fsynced (the slow, coalescible I/O all
           happens before anything becomes visible);
        2. **Publish** — each staged file is ``os.replace``d into place.

        PR 7's crash-safety invariant is preserved *per entry*: an entry
        is only ever observable as a complete, fsynced file, because the
        only publish operation is the atomic rename of a fully-synced
        temp.  A failure anywhere during staging unlinks every temp file
        and publishes nothing; a crash mid-publish leaves a prefix of
        complete entries (each individually valid) and no torn ones.
        Counters are updated once for the whole batch.
        """
        for _, _, engine in items:
            if engine not in ENGINES:
                raise CacheError(f"unknown engine keyspace {engine!r}")
        if not items:
            return 0
        self.root.mkdir(parents=True, exist_ok=True)
        staged: List[Tuple[str, Path]] = []
        try:
            for key, result, engine in items:
                payload = json.dumps(
                    {
                        "cache_format": CACHE_FORMAT,
                        "engine": engine,
                        "result": result.to_dict(),
                    },
                    sort_keys=True,
                )
                fd, tmp_name = tempfile.mkstemp(
                    dir=self.root, prefix=f".put-{key[:16]}-", suffix=".tmp"
                )
                staged.append((tmp_name, self._path(key)))
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(payload)
                    fh.flush()
                    os.fsync(fh.fileno())
        except BaseException:
            # Staging failed: publish nothing, leave no temp files.
            for tmp_name, _ in staged:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            raise
        published = 0
        try:
            for tmp_name, path in staged:
                os.replace(tmp_name, path)
                published += 1
        except BaseException:
            for tmp_name, _ in staged[published + 1 :]:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            # The entry whose replace failed still has its temp on disk.
            try:
                os.unlink(staged[published][0])
            except OSError:
                pass
            raise
        finally:
            with self._lock:
                self.puts += published
                self.batched_puts += 1
        return published

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[Path]:
        """Entry files in the store (sidecar and temp files excluded)."""
        if not self.root.is_dir():
            return iter(())
        return iter(
            sorted(
                f
                for f in self.root.glob("*.json")
                if len(f.stem) == 64 and f.name != _STATS_NAME
            )
        )

    def entry_count(self) -> int:
        return sum(1 for _ in self.entries())

    def disk_bytes(self) -> int:
        """Total on-disk size of all entries (sidecar excluded)."""
        total = 0
        for f in self.entries():
            try:
                total += f.stat().st_size
            except OSError:  # pragma: no cover - racing unlink
                pass
        return total

    def by_engine_stats(self) -> Dict[str, Dict[str, int]]:
        """Entry count and on-disk bytes per engine keyspace.

        Reads each entry's ``engine`` tag; entries written before tagging
        existed (or whose tag is unreadable) count as ``"fast"`` — exactly
        the keyspace they were written from.  The three known engines are
        always present in the result so callers can render a stable table.
        """
        out: Dict[str, Dict[str, int]] = {
            e: {"entries": 0, "bytes": 0} for e in ENGINES
        }
        for f in self.entries():
            engine = "fast"
            try:
                data = json.loads(f.read_text(encoding="utf-8"))
                tag = data.get("engine")
                if isinstance(tag, str) and tag:
                    engine = tag
                size = f.stat().st_size
            except (OSError, ValueError):  # pragma: no cover - racing unlink
                continue
            bucket = out.setdefault(engine, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
        return out

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for f in self.entries():
            f.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        """This instance's session counters (not the persistent totals)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "batched_gets": self.batched_gets,
                "batched_puts": self.batched_puts,
            }

    # ------------------------------------------------------------------
    # Persistent counters
    # ------------------------------------------------------------------
    @property
    def _stats_path(self) -> Path:
        return self.root / _STATS_NAME

    def persistent_stats(self) -> Dict[str, int]:
        """Cumulative counters from the ``_stats.json`` sidecar.

        Sidecars written before the batched-I/O counters existed simply
        report them as 0.
        """
        try:
            data = json.loads(self._stats_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            data = {}
        return {
            k: int(data.get(k, 0)) if isinstance(data.get(k, 0), int) else 0
            for k in ("hits", "misses", "puts", "batched_gets", "batched_puts")
        }

    def flush_counters(self) -> Dict[str, int]:
        """Merge session counters into the sidecar; returns the totals.

        Session counters reset to zero after the merge so repeated flushes
        never double-count.  The sidecar write is tmp-file + replace like
        :meth:`put`.
        """
        with self._lock:
            session = {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "batched_gets": self.batched_gets,
                "batched_puts": self.batched_puts,
            }
            self.hits = self.misses = self.puts = 0
            self.batched_gets = self.batched_puts = 0
        totals = self.persistent_stats()
        for k, v in sorted(session.items()):
            totals[k] += v
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=".stats-", suffix=".tmp"
        )
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(totals, sort_keys=True))
        os.replace(tmp_name, self._stats_path)
        return totals

    def reset_counters(self) -> None:
        """Zero the session counters and delete the persistent sidecar."""
        with self._lock:
            self.hits = self.misses = self.puts = 0
            self.batched_gets = self.batched_puts = 0
        self._stats_path.unlink(missing_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RunCache {self.root} hits={self.hits} misses={self.misses} "
            f"puts={self.puts}>"
        )
