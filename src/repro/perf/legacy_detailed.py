"""The frozen pre-rewrite detailed engine (flit-level, coroutine-driven).

This module preserves the detailed engine exactly as it stood before the
cycle-synchronous rewrite of ``repro.core.detailed``: every router, NI and
channel delivery is an event on the kernel heap, and each router/NI runs a
yield-per-cycle generator process.  The benchmark harness
(``python -m repro.perf bench --only detailed``) and the equivalence tests
(``tests/test_detailed_equivalence.py``) measure and cross-check the
rewritten engine against this one: every :class:`RunResult` field except
the executed-event count must match bit-for-bit.

Unlike :mod:`repro.perf.legacy_engine` (which froze only the engine class),
this freeze also carries private copies of the coroutine-driven
:class:`Channel`, :class:`VCRouter`, :class:`SourceNI` and :class:`SinkNI`,
because the rewrite converts those very classes to tick methods — the
frozen reference must not share the machinery under test.  Only leaf
primitives whose semantics are pinned by their own unit tests (VC state
machines, arbiters, credit counters, buffers, stores, stats) are imported.

Do not "fix" or optimize this module; its value is standing still.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.config import ERapidConfig
from repro.core.dpm import DpmAction, LinkWindowStats, dpm_decide
from repro.errors import ConfigurationError, SimulationError
from repro.metrics.collector import Collector, MeasurementPlan, RunResult
from repro.network.arbiters import RoundRobinArbiter
from repro.network.credit import CreditCounter
from repro.network.packet import Flit, Packet
from repro.network.routing import ibi_routing
from repro.network.vc import InputVC, OutputVC, VCStatus
from repro.optics.rwa import StaticRWA
from repro.power.energy import EnergyAccountant
from repro.power.levels import PowerLevel
from repro.sim.kernel import Simulator
from repro.sim.stats import TimeWeighted
from repro.sim.queues import MonitoredStore
from repro.traffic.injection import TrafficSource
from repro.traffic.workload import WorkloadSpec

__all__ = ["LegacyDetailedEngine"]


# ----------------------------------------------------------------------
# Frozen copy of repro.network.channel.Channel (event-scheduled delivery)
# ----------------------------------------------------------------------
class _Channel:
    """Unidirectional flit channel with serialization and wire latency."""

    def __init__(
        self,
        sim: Simulator,
        sink=None,
        sink_port: int = 0,
        latency: int = 1,
        cycles_per_flit: int = 4,
        name: str = "",
    ) -> None:
        if latency < 0:
            raise SimulationError(f"negative channel latency {latency}")
        if cycles_per_flit < 1:
            raise SimulationError(f"cycles_per_flit must be >= 1, got {cycles_per_flit}")
        self.sim = sim
        self.sink = sink
        self.sink_port = sink_port
        self.latency = latency
        self.cycles_per_flit = cycles_per_flit
        self.name = name
        self._busy_until = 0.0
        self.flits_sent = 0

    @property
    def busy(self) -> bool:
        return self.sim.now < self._busy_until

    def send(self, flit: Flit) -> None:
        if self.sink is None:
            raise SimulationError(f"channel {self.name!r} has no sink")
        if self.busy:
            raise SimulationError(
                f"channel {self.name!r} busy until {self._busy_until}; "
                "router ST stage must check Channel.busy"
            )
        self._busy_until = self.sim.now + self.cycles_per_flit
        self.flits_sent += 1
        delay = self.cycles_per_flit + self.latency
        self.sim.schedule(delay, self.sink.receive_flit, flit, self.sink_port)


# ----------------------------------------------------------------------
# Frozen copy of repro.network.router.VCRouter (per-cycle process)
# ----------------------------------------------------------------------
class _VCRouter:
    """Input-queued virtual-channel router driven by a per-cycle process."""

    def __init__(
        self,
        sim: Simulator,
        n_ports: int,
        routing_fn,
        n_vcs: int = 2,
        buf_depth: int = 1,
        credit_latency: int = 1,
        name: str = "router",
    ) -> None:
        if n_ports < 1 or n_vcs < 1:
            raise ConfigurationError("router needs >= 1 port and >= 1 VC")
        self.sim = sim
        self.n_ports = n_ports
        self.n_vcs = n_vcs
        self.buf_depth = buf_depth
        self.routing_fn = routing_fn
        self.credit_latency = credit_latency
        self.name = name

        self.inputs: List[List[InputVC]] = [
            [InputVC(sim, buf_depth, name=f"{name}.in{p}.vc{v}") for v in range(n_vcs)]
            for p in range(n_ports)
        ]
        self.outputs: List[List[OutputVC]] = [
            [OutputVC(buf_depth) for _ in range(n_vcs)] for _ in range(n_ports)
        ]
        self.channels: List[Optional[_Channel]] = [None] * n_ports
        self.credit_returns: List[Optional[Callable[[int], None]]] = [None] * n_ports

        self._va_arbiters = [
            [RoundRobinArbiter(n_ports * n_vcs) for _ in range(n_vcs)]
            for _ in range(n_ports)
        ]
        self._sa_input = [RoundRobinArbiter(n_vcs) for _ in range(n_ports)]
        self._sa_output = [RoundRobinArbiter(n_ports) for _ in range(n_ports)]

        self.flits_routed = 0
        self.packets_routed = 0
        self._proc = None

    def attach_output(self, port: int, channel: _Channel) -> None:
        self.channels[port] = channel

    def set_credit_return(self, port: int, fn: Callable[[int], None]) -> None:
        self.credit_returns[port] = fn

    def start(self) -> None:
        if self._proc is not None:
            raise SimulationError(f"router {self.name!r} already started")
        self._proc = self.sim.process(self._run(), name=f"{self.name}.pipeline")

    def receive_flit(self, flit: Flit, port: int) -> None:
        if flit.vc is None:
            raise SimulationError(f"flit {flit!r} arrived without a VC assignment")
        ivc = self.inputs[port][flit.vc]
        ivc.buffer.push(flit)
        if flit.is_head and ivc.status is VCStatus.IDLE:
            ivc.start_packet()

    def restore_credit(self, port: int, vc: int) -> None:
        self.outputs[port][vc].credits.restore()

    def _run(self):
        while True:
            self._cycle()
            yield self.sim.timeout(1)

    def _cycle(self) -> None:
        self._stage_st_sa()
        self._stage_va()
        self._stage_rc()

    def _stage_rc(self) -> None:
        for port in range(self.n_ports):
            for ivc in self.inputs[port]:
                if ivc.status is VCStatus.ROUTING:
                    head = ivc.buffer.front()
                    if head is None:  # pragma: no cover - defensive
                        continue
                    out = self.routing_fn(self, head.dst)
                    if not 0 <= out < self.n_ports:
                        raise ConfigurationError(
                            f"routing_fn returned invalid port {out} "
                            f"for dst {head.dst} at {self.name!r}"
                        )
                    ivc.routed(out)

    def _stage_va(self) -> None:
        for out_port in range(self.n_ports):
            for out_vc in range(self.n_vcs):
                ovc = self.outputs[out_port][out_vc]
                if not ovc.is_free:
                    continue
                mask = [False] * (self.n_ports * self.n_vcs)
                any_req = False
                for in_port in range(self.n_ports):
                    for in_vc_idx in range(self.n_vcs):
                        ivc = self.inputs[in_port][in_vc_idx]
                        if ivc.status is VCStatus.WAITING_VC and ivc.out_port == out_port:
                            mask[in_port * self.n_vcs + in_vc_idx] = True
                            any_req = True
                if not any_req:
                    continue
                winner = self._va_arbiters[out_port][out_vc].arbitrate(mask)
                if winner is None:
                    continue
                w_port, w_vc = divmod(winner, self.n_vcs)
                ivc = self.inputs[w_port][w_vc]
                ovc.allocate(w_port, w_vc)
                ivc.vc_granted(out_vc)

    def _stage_st_sa(self) -> None:
        requests_per_out: Dict[int, List[bool]] = {}
        chosen_vc: Dict[int, int] = {}
        for in_port in range(self.n_ports):
            mask = [False] * self.n_vcs
            for vc_idx in range(self.n_vcs):
                ivc = self.inputs[in_port][vc_idx]
                if ivc.status is not VCStatus.ACTIVE or ivc.buffer.is_empty:
                    continue
                assert ivc.out_port is not None and ivc.out_vc is not None
                ovc = self.outputs[ivc.out_port][ivc.out_vc]
                channel = self.channels[ivc.out_port]
                if not ovc.credits.has_credit:
                    continue
                if channel is None or channel.busy:
                    continue
                mask[vc_idx] = True
            pick = self._sa_input[in_port].arbitrate(mask)
            if pick is not None:
                chosen_vc[in_port] = pick
                out_port = self.inputs[in_port][pick].out_port
                assert out_port is not None
                requests_per_out.setdefault(
                    out_port, [False] * self.n_ports
                )[in_port] = True
        for out_port, mask in requests_per_out.items():
            winner = self._sa_output[out_port].arbitrate(mask)
            if winner is None:
                continue
            self._traverse(winner, chosen_vc[winner])

    def _traverse(self, in_port: int, in_vc_idx: int) -> None:
        ivc = self.inputs[in_port][in_vc_idx]
        assert ivc.out_port is not None and ivc.out_vc is not None
        out_port, out_vc = ivc.out_port, ivc.out_vc
        flit = ivc.buffer.pop()
        flit.vc = out_vc
        self.outputs[out_port][out_vc].credits.consume()
        channel = self.channels[out_port]
        assert channel is not None
        channel.send(flit)
        self.flits_routed += 1
        ret = self.credit_returns[in_port]
        if ret is not None:
            if self.credit_latency == 0:
                ret(in_vc_idx)
            else:
                self.sim.schedule(self.credit_latency, ret, in_vc_idx)
        if flit.is_tail:
            self.packets_routed += 1
            self.outputs[out_port][out_vc].free()
            ivc.finish_packet()
            nxt = ivc.buffer.front()
            if nxt is not None and nxt.is_head:
                ivc.start_packet()


# ----------------------------------------------------------------------
# Frozen copies of repro.network.interface.{SourceNI, SinkNI}
# ----------------------------------------------------------------------
class _SourceNI:
    """Send port: packets in, credit-controlled flits out (process pump)."""

    def __init__(
        self,
        sim: Simulator,
        router: _VCRouter,
        port: int,
        latency: int = 1,
        cycles_per_flit: int = 4,
        queue_capacity: Optional[int] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.name = name or f"src-ni.p{port}"
        self.queue: MonitoredStore = MonitoredStore(
            sim, capacity=queue_capacity, name=f"{self.name}.q"
        )
        self.channel = _Channel(
            sim,
            sink=router,
            sink_port=port,
            latency=latency,
            cycles_per_flit=cycles_per_flit,
            name=f"{self.name}.ch",
        )
        self._credits: List[CreditCounter] = [
            CreditCounter(router.buf_depth) for _ in range(router.n_vcs)
        ]
        self._vc_busy: List[bool] = [False] * router.n_vcs
        router.set_credit_return(port, self._restore_credit)
        self.packets_injected = 0
        sim.process(self._run(), name=f"{self.name}.inject")

    def send(self, packet: Packet):
        return self.queue.put(packet)

    def _restore_credit(self, vc: int) -> None:
        self._credits[vc].restore()

    def _pick_vc(self) -> Optional[int]:
        for vc, busy in enumerate(self._vc_busy):
            if not busy:
                return vc
        return None

    def _run(self):
        while True:
            packet: Packet = yield self.queue.get()
            while True:
                vc = self._pick_vc()
                if vc is not None:
                    break
                yield self.sim.timeout(1)
            self._vc_busy[vc] = True
            packet.injected_at = self.sim.now
            for flit in packet.flits():
                flit.vc = vc
                while not self._credits[vc].has_credit or self.channel.busy:
                    yield self.sim.timeout(1)
                self._credits[vc].consume()
                self.channel.send(flit)
                if flit.is_tail:
                    self._vc_busy[vc] = False
            self.packets_injected += 1


class _SinkNI:
    """Receive port: reassembles flits into packets, records delivery."""

    def __init__(
        self,
        sim: Simulator,
        on_packet: Optional[Callable[[Packet], None]] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.name = name or "sink-ni"
        self.on_packet = on_packet
        self.packets_received = 0
        self.flits_received = 0
        self._credit_restore: Optional[Callable[[int], None]] = None

    def attach(self, router: _VCRouter, out_port: int, latency: int = 1,
               cycles_per_flit: int = 4) -> _Channel:
        channel = _Channel(
            self.sim,
            sink=self,
            sink_port=out_port,
            latency=latency,
            cycles_per_flit=cycles_per_flit,
            name=f"{self.name}.ch",
        )
        router.attach_output(out_port, channel)
        self._credit_restore = lambda vc: router.restore_credit(out_port, vc)
        return channel

    def receive_flit(self, flit: Flit, port: int) -> None:
        self.flits_received += 1
        if self._credit_restore is not None:
            if flit.vc is None:
                raise ConfigurationError("flit arrived at sink without a VC")
            self.sim.schedule(1, self._credit_restore, flit.vc)
        if flit.is_tail:
            packet = flit.packet
            packet.delivered_at = self.sim.now
            self.packets_received += 1
            if self.on_packet is not None:
                self.on_packet(packet)


# ----------------------------------------------------------------------
# Frozen copy of repro.core.detailed (pre-rewrite)
# ----------------------------------------------------------------------
class _TxSink(_SinkNI):
    """Transmitter-port sink: reassembles flits, queues whole packets."""

    def __init__(self, sim: Simulator, queue: MonitoredStore, name: str) -> None:
        super().__init__(sim, on_packet=None, name=name)
        self.queue = queue

    def receive_flit(self, flit, port):  # noqa: D102 - see _SinkNI
        self.flits_received += 1
        if self._credit_restore is not None:
            self.sim.schedule(1, self._credit_restore, flit.vc)
        if flit.is_tail:
            self.packets_received += 1
            self.queue.put(flit.packet)


class _DetailedLC:
    """Flit-level link controller: per-transmitter DPM state."""

    def __init__(self, engine: "LegacyDetailedEngine", board: int, wavelength: int) -> None:
        self.engine = engine
        self.board = board
        self.wavelength = wavelength
        self.level: PowerLevel = engine.config.power_levels.highest
        self.stall_until = 0.0
        self.busy = False
        self.busy_signal = TimeWeighted(engine.sim.now, 0.0)
        self.dpm_transitions = 0
        self._push_power()

    @property
    def key(self):
        return (self.board, self.wavelength)

    def _push_power(self) -> None:
        mw = self.engine.config.link_power.instantaneous_mw(
            True, self.level, self.busy
        )
        self.engine.accountant.set_channel_power(
            self.key, self.engine.sim.now, mw
        )

    def set_busy(self, busy: bool) -> None:
        if busy == self.busy:
            return
        self.busy = busy
        self.busy_signal.update(self.engine.sim.now, 1.0 if busy else 0.0)
        self._push_power()

    def window_decide(self, queue: MonitoredStore) -> None:
        now = self.engine.sim.now
        cfg = self.engine.config
        stats = LinkWindowStats(
            link_util=min(1.0, self.busy_signal.window(now)),
            buffer_util=min(1.0, queue.buffer_util(now)),
            queue_empty=len(queue) == 0,
        )
        self.busy_signal.reset_window(now)
        queue.reset_window(now)
        table = cfg.power_levels
        action = dpm_decide(
            stats,
            cfg.policy.thresholds,
            at_lowest=self.level is table.lowest,
            at_highest=self.level is table.highest,
        )
        if action in (DpmAction.SLEEP, DpmAction.HOLD):
            return
        target = table.up(self.level) if action is DpmAction.UP else table.down(self.level)
        if target is self.level:
            return
        stall = cfg.transitions.stall_cycles(table, self.level, target)
        self.level = target
        self.stall_until = max(self.stall_until, now + stall)
        self.dpm_transitions += 1
        self._push_power()


class LegacyDetailedEngine:
    """Flit-level simulation of one E-RAPID run (pre-rewrite reference)."""

    def __init__(
        self,
        config: ERapidConfig,
        workload: WorkloadSpec,
        plan: MeasurementPlan = MeasurementPlan(),
    ) -> None:
        if config.policy.dbr:
            raise ConfigurationError(
                "the detailed engine models the static wavelength allocation; "
                "run DBR policies on the fast engine"
            )
        self.config = config
        self.topology = config.topology
        self.workload = workload
        self.plan = plan
        self.sim = Simulator()
        self.collector = Collector(plan, self.topology.total_nodes)
        self.accountant = EnergyAccountant(cycle_ns=1.0 / config.router.clock_ghz)
        self.rwa = StaticRWA(self.topology.boards)
        self.lcs: Dict[tuple, _DetailedLC] = {}

        topo = self.topology
        D, W, B = topo.nodes_per_board, topo.wavelengths, topo.boards
        r = config.router

        self.routers: List[_VCRouter] = []
        self.source_nis: Dict[int, _SourceNI] = {}
        self.sink_nis: Dict[int, _SinkNI] = {}
        self.tx_queues: Dict[tuple, MonitoredStore] = {}
        self.rx_nis: Dict[tuple, _SourceNI] = {}

        flit_cycles = (r.flit_bytes * 8) // r.channel_bits

        for b in range(B):
            def tx_port_of(dest_board: int, _b: int = b) -> int:
                return D + self.rwa.wavelength_for(_b, dest_board)

            router = _VCRouter(
                self.sim,
                n_ports=D + W,
                routing_fn=ibi_routing(topo, b, tx_port_of),
                n_vcs=r.n_vcs,
                buf_depth=r.buf_depth,
                credit_latency=r.credit_cycles,
                name=f"ibi{b}",
            )
            self.routers.append(router)

        for b in range(B):
            router = self.routers[b]
            for local in range(D):
                node = topo.node_id(b, local)
                sink = _SinkNI(self.sim, on_packet=self._on_delivered, name=f"eject{node}")
                sink.attach(router, local, latency=1, cycles_per_flit=flit_cycles)
                self.sink_nis[node] = sink
                self.source_nis[node] = _SourceNI(
                    self.sim, router, local,
                    latency=1, cycles_per_flit=flit_cycles, name=f"inject{node}",
                )
            for w in range(W):
                port = D + w
                q = MonitoredStore(
                    self.sim, capacity=config.tx_queue_capacity, name=f"b{b}.λ{w}.txq"
                )
                self.tx_queues[(b, w)] = q
                tx_sink = _TxSink(self.sim, q, name=f"b{b}.λ{w}.tx")
                tx_sink.attach(router, port, latency=1, cycles_per_flit=flit_cycles)
                dest_board = self.rwa.dest_served_by(b, w)
                if dest_board != b:
                    self.lcs[(b, w)] = _DetailedLC(self, b, w)
                    rx_router = self.routers[dest_board]
                    self.rx_nis[(b, w)] = _SourceNI(
                        self.sim, rx_router, D + w,
                        latency=1, cycles_per_flit=flit_cycles,
                        name=f"b{dest_board}.λ{w}.rx",
                    )
            router.start()

        from repro.traffic.capacity import CapacityParams

        params = CapacityParams(
            packet_bits=r.packet_bytes * 8,
            optical_gbps=config.power_levels.highest.bit_rate_gbps,
            electrical_gbps=r.port_gbps,
            clock_ghz=r.clock_ghz,
        )
        self.sources: List[TrafficSource] = workload.build_sources(topo, params)
        self._started = False

    # ------------------------------------------------------------------
    def _on_delivered(self, pkt: Packet) -> None:
        self.collector.on_delivered(pkt, self.sim.now)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise ConfigurationError("engine already started")
        self._started = True
        for node in range(self.topology.total_nodes):
            self.sim.process(
                self._injector_proc(node, self.sources[node]), name=f"dinj{node}"
            )
        for (b, w), queue in self.tx_queues.items():
            dest = self.rwa.dest_served_by(b, w)
            if dest != b:
                self.sim.process(
                    self._optical_proc(b, w, dest, queue), name=f"opt{b}.{w}"
                )
        if self.config.policy.dpm:
            self.sim.process(self._dpm_window_proc(), name="detailed-dpm")

    def _dpm_window_proc(self):
        sim = self.sim
        window = self.config.control.window_cycles
        latency = self.config.control.power_cycle_latency(
            self.topology.nodes_per_board
        )
        while True:
            yield sim.timeout(window)
            for (b, w), lc in self.lcs.items():
                sim.schedule(latency, lc.window_decide, self.tx_queues[(b, w)])

    def _injector_proc(self, node: int, source: TrafficSource):
        sim = self.sim
        hard_end = self.plan.hard_end
        ni = self.source_nis[node]
        while True:
            yield sim.timeout(source.next_gap())
            now = sim.now
            if now >= hard_end:
                return
            pkt = source.next_packet(now, labeled=self.collector.labeling(now))
            self.collector.on_injected(pkt, now)
            yield ni.send(pkt)

    def _optical_proc(self, board: int, wavelength: int, dest: int, queue):
        sim = self.sim
        cfg = self.config
        fiber = cfg.optical.fiber_latency_cycles
        rx_ni = self.rx_nis[(board, wavelength)]
        lc = self.lcs[(board, wavelength)]
        while True:
            pkt: Packet = yield queue.get()
            if sim.now < lc.stall_until:  # DVS transition in progress
                yield sim.timeout(lc.stall_until - sim.now)
            lc.set_busy(True)
            yield sim.timeout(
                cfg.optical.packet_service_cycles(
                    pkt.size_bytes, lc.level.bit_rate_gbps
                )
            )
            lc.set_busy(False)
            pkt.wavelength = wavelength
            sim.schedule(fiber, self._relay, rx_ni, pkt)

    @staticmethod
    def _relay(rx_ni: _SourceNI, pkt: Packet) -> None:
        rx_ni.send(pkt)

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        if not self._started:
            self.start()
        plan = self.plan
        self.sim.run(until=plan.warmup)
        self.accountant.reset_window(self.sim.now)
        self.sim.run(until=plan.measure_end)
        self.collector.power_avg_mw = self.accountant.window_average_mw(self.sim.now)
        t = plan.measure_end
        while not self.collector.drained() and t < plan.hard_end:
            t = min(t + 2000.0, plan.hard_end)
            self.sim.run(until=t)
        return self.collector.result(
            engine="detailed",
            pattern=self.workload.pattern,
            load=self.workload.load,
            events=self.sim.event_count,
            dpm_transitions=sum(lc.dpm_transitions for lc in self.lcs.values()),
        )
