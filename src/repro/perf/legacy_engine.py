"""Frozen pre-rewrite coroutine engine (benchmark baseline).

This is :class:`repro.core.engine.FastEngine` exactly as it stood before
the callback state-machine rewrite: one generator *process* per injector,
send port, receive port and optical channel, every packet crossing ~6
generator suspensions (gap timeout, send-queue get, ``ser`` timeout,
``pipeline`` timeout, tx-queue put, channel work signal / service timeout,
recv-queue get, ejection timeout), and ``_poke_pair`` scanning every
channel into the destination board.

It exists so ``python -m repro.perf bench`` can report a *measured*
packets/sec speedup of the callback engine over the coroutine engine on
every machine, forever — not a number hard-coded at rewrite time — and so
the bit-identity of every :class:`~repro.metrics.collector.RunResult`
metric (all fields except the executed-``events`` count) can be asserted
against the pre-rewrite engine on the full sweep matrix.

Do not "fix" or optimize this module; its value is standing still.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.board import BoardModel
from repro.core.config import ERapidConfig
from repro.core.link_controller import OpticalChannel
from repro.core.lockstep import LockStepCoordinator
from repro.core.node import NodeModel
from repro.core.reconfig_controller import ReconfigController
from repro.errors import ConfigurationError
from repro.metrics.collector import Collector, MeasurementPlan, RunResult
from repro.network.packet import Packet
from repro.optics.srs import SuperHighway
from repro.power.energy import EnergyAccountant
from repro.sim.kernel import Simulator
from repro.sim.queues import MonitoredStore
from repro.sim.trace import TraceLog
from repro.traffic.injection import TrafficSource
from repro.traffic.workload import WorkloadSpec

__all__ = ["LegacyFastEngine"]


class LegacyFastEngine:
    """Coroutine-based event-driven simulation of one E-RAPID run."""

    def __init__(
        self,
        config: ERapidConfig,
        workload: WorkloadSpec,
        plan: MeasurementPlan = MeasurementPlan(),
        trace: Optional[TraceLog] = None,
        sources: Optional[List[TrafficSource]] = None,
    ) -> None:
        self.config = config
        self.topology = config.topology
        self.workload = workload
        self.plan = plan
        self.trace = trace
        self.sim = Simulator(trace=trace)
        self.srs = SuperHighway(self.topology)
        self.accountant = EnergyAccountant(cycle_ns=1.0 / config.router.clock_ghz)
        self.collector = Collector(plan, self.topology.total_nodes)

        self.boards: List[BoardModel] = [
            BoardModel(self.sim, b, self.topology, config.tx_queue_capacity)
            for b in range(self.topology.boards)
        ]
        #: (wavelength, dest) -> channel state; one per receiver slot.
        self.channels: Dict[Tuple[int, int], OpticalChannel] = {}
        self._channels_by_dest: Dict[int, List[OpticalChannel]] = {
            d: [] for d in range(self.topology.boards)
        }
        for d in range(self.topology.boards):
            for w in range(self.topology.wavelengths):
                ch = OpticalChannel(self, w, d)
                self.channels[(w, d)] = ch
                self._channels_by_dest[d].append(ch)

        self.rcs: List[ReconfigController] = [
            ReconfigController(self, b) for b in range(self.topology.boards)
        ]
        self.lockstep = LockStepCoordinator(self)

        from repro.traffic.capacity import CapacityParams

        params = CapacityParams(
            packet_bits=config.router.packet_bytes * 8,
            optical_gbps=config.power_levels.highest.bit_rate_gbps,
            electrical_gbps=config.router.port_gbps,
            clock_ghz=config.router.clock_ghz,
        )
        if sources is not None:
            if len(sources) != self.topology.total_nodes:
                raise ConfigurationError(
                    f"need {self.topology.total_nodes} sources, got {len(sources)}"
                )
            self.sources = list(sources)
        else:
            self.sources = workload.build_sources(self.topology, params)
        self._started = False

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def pair_queue(self, src_board: int, dst_board: int) -> MonitoredStore:
        """The transmitter queue of board ``src_board`` toward ``dst_board``."""
        return self.boards[src_board].tx_queue(dst_board)

    def channels_owned_by(self, board: int) -> List[OpticalChannel]:
        """Every channel the board's transmitters currently drive.

        The pre-rewrite O(W x B) scan (the :mod:`repro.core.engine` version
        goes through the maintained owner index).
        """
        return [ch for ch in self.channels.values() if ch.owner == board]

    def node_model(self, node: int) -> NodeModel:
        b = self.topology.board_of(node)
        return self.boards[b].nodes[self.topology.local_of(node)]

    # ------------------------------------------------------------------
    # Reconfiguration actuation
    # ------------------------------------------------------------------
    def apply_grant(self, dest: int, wavelength: int, new_owner: Optional[int]) -> None:
        """Link-Response-stage actuation of one ownership change."""
        self.srs.grant(dest, wavelength, new_owner)
        ch = self.channels[(wavelength, dest)]
        ch.on_ownership_change()
        if new_owner is not None and len(self.pair_queue(new_owner, dest)) > 0:
            self._poke_channel(ch)

    def inject_laser_failure(self, dest: int, wavelength: int, at: float) -> None:
        """Schedule a hard channel failure at simulation time ``at``."""
        if self.sim.now > at:
            raise ConfigurationError(f"failure time {at} is in the past")
        self.sim.schedule_at(at, self._fail_now, dest, wavelength)

    def _fail_now(self, dest: int, wavelength: int) -> None:
        old_owner = self.srs.fail_channel(dest, wavelength)
        ch = self.channels[(wavelength, dest)]
        ch.on_ownership_change()
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "failure", f"ch({wavelength},{dest})",
                "laser failed", lost_owner=old_owner,
            )

    def _poke_channel(self, ch: OpticalChannel) -> None:
        if ch.idle and ch.work_signal is not None:
            signal, ch.work_signal = ch.work_signal, None
            signal.trigger()

    def _poke_pair(self, src_board: int, dst_board: int) -> None:
        """Wake one idle channel owned by the pair (called after a put).

        The pre-rewrite O(W) scan over every channel into the destination.
        """
        for ch in self._channels_by_dest[dst_board]:
            if (
                ch.idle
                and ch.work_signal is not None
                and self.srs.owner_of(dst_board, ch.wavelength) == src_board
            ):
                signal, ch.work_signal = ch.work_signal, None
                signal.trigger()
                return

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def start(
        self,
        *,
        node_order: Optional[List[int]] = None,
        channel_order: Optional[List[Tuple[int, int]]] = None,
    ) -> None:
        """Register all simulation processes (idempotent guard)."""
        if self._started:
            raise ConfigurationError("engine already started")
        self._started = True
        nodes = list(range(self.topology.total_nodes))
        if node_order is not None:
            if sorted(node_order) != nodes:
                raise ConfigurationError(
                    f"node_order must permute 0..{len(nodes) - 1}"
                )
            nodes = list(node_order)
        for node in nodes:
            model = self.node_model(node)
            source = self.sources[node]
            if hasattr(source.process, "bind_clock"):
                source.process.bind_clock(lambda: self.sim.now)
            self.sim.process(self._injector_proc(model, source), name=f"inj{node}")
            self.sim.process(self._send_proc(model), name=f"send{node}")
            self.sim.process(self._recv_proc(model), name=f"recv{node}")
        if channel_order is not None:
            if sorted(channel_order) != sorted(self.channels):
                raise ConfigurationError(
                    "channel_order must permute the engine's channel keys"
                )
            channels = [self.channels[key] for key in channel_order]
        else:
            channels = list(self.channels.values())
        for ch in channels:
            self.sim.process(self._channel_proc(ch), name=f"ch{ch.key}")
        self.lockstep.start()

    def _injector_proc(self, model: NodeModel, source: TrafficSource):
        sim = self.sim
        hard_end = self.plan.hard_end
        while True:
            yield sim.timeout(source.next_gap())
            now = sim.now
            if now >= hard_end:
                return
            pkt = source.next_packet(now, labeled=self.collector.labeling(now))
            model.injected += 1
            self.collector.on_injected(pkt, now)
            yield model.send_queue.put(pkt)

    def _send_proc(self, model: NodeModel):
        sim = self.sim
        cfg = self.config
        ser = cfg.router.packet_serialization_cycles
        pipeline = cfg.router.pipeline_cycles
        s = model.board
        while True:
            pkt: Packet = yield model.send_queue.get()
            pkt.injected_at = sim.now
            yield sim.timeout(ser)
            d = self.topology.board_of(pkt.dst)
            yield sim.timeout(pipeline)
            if d == s:
                dest = self.node_model(pkt.dst)
                dest.recv_queue.put(pkt)
            else:
                q = self.pair_queue(s, d)
                req = q.put(pkt)
                self._poke_pair(s, d)
                # Backpressure: the send port stalls while the LC buffer is
                # full (wormhole blocking into the IBI).
                yield req

    def _recv_proc(self, model: NodeModel):
        sim = self.sim
        ser = self.config.router.packet_serialization_cycles
        while True:
            pkt: Packet = yield model.recv_queue.get()
            yield sim.timeout(ser)
            pkt.delivered_at = sim.now
            model.delivered += 1
            self.collector.on_delivered(pkt, sim.now)

    def _channel_proc(self, ch: OpticalChannel):
        sim = self.sim
        fiber = self.config.optical.fiber_latency_cycles
        pipeline = self.config.router.pipeline_cycles
        while True:
            owner = ch.owner
            pkt: Optional[Packet] = None
            if owner is not None:
                ok, item = self.pair_queue(owner, ch.dest).try_get()
                if ok:
                    pkt = item
            if pkt is None:
                ch.idle = True
                ch.work_signal = sim.event()
                yield ch.work_signal
                ch.work_signal = None
                ch.idle = False
                continue
            wake_stall = ch.wake()
            if wake_stall > 0:
                yield sim.timeout(wake_stall)
            if sim.now < ch.stall_until:
                yield sim.timeout(ch.stall_until - sim.now)
            ch.set_busy(True)
            yield sim.timeout(ch.service_cycles(pkt.size_bytes))
            ch.set_busy(False)
            ch.packets_served += 1
            pkt.wavelength = ch.wavelength
            dest_model = self.node_model(pkt.dst)
            sim.schedule(fiber + pipeline, self._deliver, dest_model, pkt)

    @staticmethod
    def _deliver(dest_model: NodeModel, pkt: Packet) -> None:
        dest_model.recv_queue.put(pkt)

    # ------------------------------------------------------------------
    # Window bookkeeping
    # ------------------------------------------------------------------
    def reset_windows(self) -> None:
        for ch in self.channels.values():
            ch.reset_window()
        for board in self.boards:
            board.reset_windows()

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Warm up, measure, drain; return the run metrics."""
        if not self._started:
            self.start()
        plan = self.plan
        self.sim.run(until=plan.warmup)
        self.accountant.reset_window(self.sim.now)
        self.sim.run(until=plan.measure_end)
        self.collector.power_avg_mw = self.accountant.window_average_mw(self.sim.now)
        # Drain: run in chunks until every labeled packet lands (or cap).
        chunk = max(1000.0, self.config.control.window_cycles / 2)
        t = plan.measure_end
        while not self.collector.drained() and t < plan.hard_end:
            t = min(t + chunk, plan.hard_end)
            self.sim.run(until=t)
        return self.collector.result(
            policy=self.config.policy.name,
            pattern=self.workload.pattern,
            load=self.workload.load,
            grants=self.srs.grants,
            dpm_transitions=sum(c.dpm_transitions for c in self.channels.values()),
            sleeps=sum(c.sleeps for c in self.channels.values()),
            lasers_on_final=self.srs.lasers_on(),
            events=self.sim.event_count,
        )
