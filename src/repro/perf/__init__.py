"""Performance layer: parallel sweep execution, run caching, benchmarks.

The paper's evaluation is a (pattern × policy × load) matrix of
*independent* simulation runs; this package makes that matrix cheap:

``repro.perf.executor``
    Fans runs out to a process pool with picklable task/result transport.
    Results are bit-identical to serial execution — each run seeds its own
    :class:`~repro.sim.rng.RngRegistry` from the workload seed via
    ``SeedSequence`` spawn keys, so worker scheduling cannot perturb any
    stream (the common-random-numbers contract survives parallelism).
    ``run_sweep_batched`` routes batch-covered runs through the vectorized
    engine as per-worker sub-slab shards next to scalar fallback on one
    unified pool queue, with struct-of-arrays result transport.

``repro.perf.shards``
    Shard planning for the sharded batch path: the deterministic
    ``(tasks, jobs, slab_shard) -> ShardPlan`` layout, the shard-size
    heuristic, and the ``ShardReport`` timings that land in job manifests.

``repro.perf.cache``
    A content-addressed on-disk store keyed on the full run description
    ``(ERapidConfig, WorkloadSpec, MeasurementPlan, kernel version)``;
    repeated ``reproduce_all``/bench invocations skip already-computed
    runs.  ``get_many``/``put_many`` batch whole-job lookups and
    crash-safe writes into one counter flush each.

``repro.perf.bench``
    The tracked benchmark harness (``python -m repro.perf bench``): kernel
    events/sec against the frozen pre-optimization reference kernel
    (:mod:`repro.perf.legacy`), end-to-end sweep wall time serial vs
    parallel vs cached, and the batch-tier report with its sharded
    jobs-scaling and transport dimensions.  Writes the ``BENCH_*.json``
    reports at the repo root.
"""

from repro.perf.cache import RunCache, default_cache_dir, run_cache_key
from repro.perf.executor import RunTask, execute_tasks

__all__ = [
    "RunCache",
    "RunTask",
    "default_cache_dir",
    "execute_tasks",
    "run_cache_key",
]
