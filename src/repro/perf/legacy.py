"""Frozen pre-optimization reference kernel (benchmark baseline).

This is the event kernel exactly as it stood before the hot-path
optimization pass (tuple-keyed heap entries, ``schedule_fast``, lazy
compaction, inlined dispatch loop): an **object heap** whose entries are
:class:`LegacyScheduledEvent` instances ordered by a Python-level
``__lt__`` that builds two tuples per comparison, with every scheduling
call allocating a handle object and the run loop dispatching through
``step()``.

It exists so the kernel microbenchmark (``python -m repro.perf bench``)
can report a *measured* speedup over the pre-PR kernel on every machine,
forever — not a number hard-coded at optimization time.  It is a drop-in
``Simulator`` substitute (same waitable/process machinery from
:mod:`repro.sim`), so the benchmark can run the full engine against it.

Do not "fix" or optimize this module; its value is standing still.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import CompositeWait, Timeout, Waitable
from repro.sim.process import Process
from repro.sim.trace import TraceLog

__all__ = ["LegacySimulator", "LegacyScheduledEvent"]

_seq = itertools.count()


class LegacyScheduledEvent:
    """Pre-PR heap entry: compares via tuple-building ``__lt__``."""

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(
        self,
        time: float,
        fn: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = 0,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = next(_seq)
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "LegacyScheduledEvent") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )


class LegacySimulator:
    """The pre-optimization ``Simulator``, API-compatible with the current
    one (including :meth:`schedule_fast`, which here pays the full legacy
    allocation cost — that *is* the baseline being measured)."""

    def __init__(self, trace: Optional[TraceLog] = None) -> None:
        self._now: float = 0.0
        self._heap: List[LegacyScheduledEvent] = []
        self._running = False
        self._stopped = False
        self.trace = trace
        self.on_event: Optional[Callable[..., None]] = None
        self._processes: List[Process] = []
        self._event_count = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def event_count(self) -> int:
        return self._event_count

    def schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> LegacyScheduledEvent:
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay!r} in the past")
        ev = LegacyScheduledEvent(self._now + delay, fn, args, priority)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> LegacyScheduledEvent:
        if time < self._now:
            raise SchedulingError(f"cannot schedule at t={time} < now={self._now}")
        ev = LegacyScheduledEvent(time, fn, args, priority)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_fast(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> None:
        # Pre-PR there was no fast path: every event allocated a handle.
        self.schedule(delay, fn, *args)

    def schedule_late(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> None:
        # API shim for the current engine's p1 continuation class; same
        # (time, priority, seq) order, full legacy allocation cost.
        self.schedule(delay, fn, *args, priority=1)

    # ------------------------------------------------------------------
    def event(self) -> Waitable:
        return Waitable(self)  # type: ignore[arg-type]

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)  # type: ignore[arg-type]

    def any_of(self, waitables: List[Waitable]) -> CompositeWait:
        return CompositeWait(self, waitables, mode="any")  # type: ignore[arg-type]

    def all_of(self, waitables: List[Waitable]) -> CompositeWait:
        return CompositeWait(self, waitables, mode="all")  # type: ignore[arg-type]

    def process(self, generator: Generator[Any, Any, None], name: str = "") -> Process:
        proc = Process(self, generator, name=name)  # type: ignore[arg-type]
        self._processes.append(proc)
        return proc

    # ------------------------------------------------------------------
    def step(self) -> bool:
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            if ev.time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event heap yielded an event in the past")
            self._now = ev.time
            self._event_count += 1
            ev.fn(*ev.args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        try:
            if until is not None and until < self._now:
                raise SchedulingError(f"run(until={until}) is before now={self._now}")
            while self._heap and not self._stopped:
                if until is not None and self._heap[0].time > until:
                    break
                self.step()
            if until is not None and not self._stopped:
                self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        self._stopped = True

    def peek(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LegacySimulator now={self._now} pending={len(self._heap)}>"
