"""Tracked benchmark harness (``python -m repro.perf bench``).

Three benchmark families, each writing a JSON report at the repo root so
performance is tracked *in the tree* alongside the code it measures:

``BENCH_kernel.json``
    Kernel events/sec on (a) a pure event storm (timeout chains plus a
    cancellation stream, no network model) and (b) the full 16-node audit
    experiment, each measured against **both** the current
    :class:`~repro.sim.kernel.Simulator` and the frozen pre-optimization
    reference kernel (:mod:`repro.perf.legacy`).  The ``speedup`` field is
    therefore re-measured on every machine, never a stale constant.

``BENCH_engine.json``
    Whole-engine packets/sec of the callback-state-machine
    :class:`~repro.core.engine.FastEngine` against the frozen coroutine
    engine (:mod:`repro.perf.legacy_engine`) on the 16-node audit workload
    and a high-load permutation storm — plus the bit-identity cross-check:
    a (pattern × policy × load) sweep matrix executed by both engines
    (serially and through the process pool) must fingerprint identically
    on every :class:`~repro.metrics.collector.RunResult` field except the
    executed-event count.

``BENCH_sweep.json``
    End-to-end wall time for a small load sweep executed serially, through
    the process pool, and from a warm run cache — plus a determinism
    cross-check asserting the serial and parallel sweeps fingerprint
    identically.

``BENCH_detailed.json``
    Flit-level flits/sec of the cycle-synchronous
    :class:`~repro.core.detailed.DetailedEngine` against the frozen
    process-based engine (:mod:`repro.perf.legacy_detailed`) on a 16-node
    audit workload and a saturating complement storm — plus the
    bit-identity cross-check: a (pattern × policy × load) matrix executed
    by both engines must fingerprint identically on every
    :class:`~repro.metrics.collector.RunResult` field except the
    executed-event count.

``BENCH_batch.json``
    Sweep-grid runs/sec of the vectorized struct-of-arrays
    :class:`~repro.core.batch.BatchEngine` against the ``jobs``-wide
    scalar :class:`~repro.core.engine.FastEngine` pool on the paper's
    144-point grid — plus the adapted correctness gates: the statistical-
    equivalence harness (:mod:`repro.analysis.equivalence`, declared
    throughput/latency/power tolerances) and a bit-identity fingerprint
    of the stream-identical permutation-pattern injection fields.  A
    ``sharded`` section re-runs the grid across ``jobs``/``slab_shard``
    layouts (every variant must fingerprint equal to single-process
    batch) and a ``transport`` section measures the struct-of-arrays
    payload pickle against the decoded ``RunResult`` list.

Timing uses ``time.perf_counter`` (wall clock is fine here: this module is
*about* wall time and is exempt from SIM001, which guards the simulation
core only).  Reported rates are best-of-N to damp scheduler noise.
"""

from __future__ import annotations

import json
import platform
import tempfile
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, Tuple

from repro.core.config import ControlParams, ERapidConfig
from repro.core.policies import make_policy
from repro.metrics.collector import MeasurementPlan
from repro.network.topology import ERapidTopology
from repro.perf.cache import RunCache
from repro.perf.legacy import LegacySimulator
from repro.sim.kernel import KERNEL_VERSION, Simulator
from repro.traffic.workload import WorkloadSpec

__all__ = [
    "bench_batch",
    "bench_detailed",
    "bench_engine",
    "bench_kernel",
    "bench_sweep",
    "run_benchmarks",
    "write_report",
]

#: Any class exposing the Simulator scheduling/run API.
SimFactory = Callable[[], Any]


# ----------------------------------------------------------------------
# Kernel microbenchmarks
# ----------------------------------------------------------------------
def _storm(sim: Any, chains: int, hops: int) -> int:
    """Pure event storm: ``chains`` interleaved self-rescheduling chains.

    Every third hop also schedules a decoy event and cancels it, so the
    storm exercises the cancellation/compaction path as well as the raw
    push/pop/dispatch loop.  Entirely deterministic — no RNG.
    """
    schedule = sim.schedule

    def hop(chain: int, remaining: int) -> None:
        if remaining <= 0:
            return
        if remaining % 3 == 0:
            decoy = schedule(2.0, _noop)
            decoy.cancel()
        schedule(1.0 + (chain % 7) * 0.125, hop, chain, remaining - 1)

    for c in range(chains):
        schedule(float(c % 13) * 0.0625, hop, c, hops)
    sim.run()
    return int(sim.event_count)


def _noop() -> None:
    return None


def _time_storm(
    sim_factory: SimFactory, chains: int, hops: int, repeats: int
) -> Dict[str, float]:
    best_eps = 0.0
    events = 0
    for _ in range(repeats):
        sim = sim_factory()
        start = perf_counter()
        events = _storm(sim, chains, hops)
        elapsed = perf_counter() - start
        best_eps = max(best_eps, events / elapsed if elapsed > 0 else 0.0)
    return {"events": float(events), "events_per_sec": best_eps}


@contextmanager
def _engine_kernel(sim_cls: type) -> Iterator[None]:
    """Temporarily swap the Simulator class the engine instantiates."""
    import repro.core.engine as engine_mod

    original = engine_mod.Simulator
    engine_mod.Simulator = sim_cls  # type: ignore[misc,assignment]
    try:
        yield
    finally:
        engine_mod.Simulator = original  # type: ignore[misc]


def _audit_run() -> Tuple[int, float]:
    """One 16-node audit-workload engine run; returns (events, seconds)."""
    from repro.core.engine import FastEngine

    config = ERapidConfig(
        topology=ERapidTopology(boards=4, nodes_per_board=4),
        policy=make_policy("P-B"),
        control=ControlParams(window_cycles=500),
        seed=1,
    )
    plan = MeasurementPlan(warmup=500.0, measure=1500.0, drain_limit=3000.0)
    workload = WorkloadSpec(pattern="uniform", load=0.4, seed=1)
    engine = FastEngine(config, workload, plan)
    start = perf_counter()
    engine.run()
    elapsed = perf_counter() - start
    return int(engine.sim.event_count), elapsed


def _time_audit(sim_cls: type, repeats: int) -> Dict[str, float]:
    best_eps = 0.0
    events = 0
    with _engine_kernel(sim_cls):
        for _ in range(repeats):
            events, elapsed = _audit_run()
            best_eps = max(best_eps, events / elapsed if elapsed > 0 else 0.0)
    return {"events": float(events), "events_per_sec": best_eps}


def bench_kernel(quick: bool = False) -> Dict[str, Any]:
    """Kernel events/sec, current vs frozen legacy kernel."""
    repeats = 1 if quick else 3
    chains, hops = (64, 40) if quick else (256, 120)

    storm_current = _time_storm(Simulator, chains, hops, repeats)
    storm_legacy = _time_storm(LegacySimulator, chains, hops, repeats)
    audit_current = _time_audit(Simulator, repeats)
    audit_legacy = _time_audit(LegacySimulator, repeats)

    def _speedup(cur: Dict[str, float], old: Dict[str, float]) -> float:
        if old["events_per_sec"] <= 0:
            return 0.0
        return cur["events_per_sec"] / old["events_per_sec"]

    return {
        "benchmark": "kernel",
        "kernel_version": KERNEL_VERSION,
        "python": platform.python_version(),
        "quick": quick,
        "repeats": repeats,
        "storm": {
            "chains": chains,
            "hops": hops,
            "current": storm_current,
            "legacy": storm_legacy,
            "speedup": _speedup(storm_current, storm_legacy),
        },
        "audit16": {
            "workload": "uniform load=0.4 seed=1, 4x4 boards, P-B",
            "current": audit_current,
            "legacy": audit_legacy,
            "speedup": _speedup(audit_current, audit_legacy),
        },
        # Headline number: full-engine speedup on the audit workload.
        "speedup": _speedup(audit_current, audit_legacy),
    }


# ----------------------------------------------------------------------
# Engine packets/sec + bit-identity benchmark
# ----------------------------------------------------------------------
def _bench_config(policy: str = "P-B") -> ERapidConfig:
    return ERapidConfig(
        topology=ERapidTopology(boards=4, nodes_per_board=4),
        policy=make_policy(policy),
        control=ControlParams(window_cycles=500),
        seed=1,
    )


def _time_engine(
    engine_cls: type, pattern: str, load: float, repeats: int
) -> Dict[str, float]:
    """Best-of-N packets/sec for one engine class on one workload."""
    plan = MeasurementPlan(warmup=500.0, measure=1500.0, drain_limit=3000.0)
    workload = WorkloadSpec(pattern=pattern, load=load, seed=1)
    best_pps = 0.0
    packets = 0
    events = 0
    for _ in range(repeats):
        engine = engine_cls(_bench_config(), workload, plan)
        start = perf_counter()
        engine.run()
        elapsed = perf_counter() - start
        packets = sum(n.delivered for b in engine.boards for n in b.nodes)
        events = int(engine.sim.event_count)
        best_pps = max(best_pps, packets / elapsed if elapsed > 0 else 0.0)
    return {
        "packets": float(packets),
        "events": float(events),
        "packets_per_sec": best_pps,
    }


def _engine_sweep_specs(quick: bool) -> Dict[str, Any]:
    """The bit-identity matrix: one non-permutation and one permutation
    panel, so both the scalar and the batched gap-sampling paths are
    asserted against the coroutine engine."""
    from repro.experiments.sweep import SweepSpec

    if quick:
        plan = MeasurementPlan(warmup=200.0, measure=600.0, drain_limit=1500.0)
        loads = (0.2, 0.8)
        policies = ("NP-NB", "P-B")
    else:
        plan = MeasurementPlan(warmup=500.0, measure=1500.0, drain_limit=3000.0)
        loads = (0.2, 0.5, 0.9)
        policies = ("NP-NB", "P-NB", "NP-B", "P-B")
    common = dict(
        loads=loads, policies=policies, boards=4, nodes_per_board=4,
        seed=1, plan=plan,
    )
    return {
        "uniform": SweepSpec(pattern="uniform", **common),
        "complement": SweepSpec(pattern="complement", **common),
    }


def _legacy_matrix(specs: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Run the sweep matrix serially through the frozen coroutine engine."""
    from repro.core.policies import POLICIES
    from repro.perf.legacy_engine import LegacyFastEngine

    results: Dict[str, Dict[str, Any]] = {}
    for name, spec in specs.items():
        base = ERapidConfig(
            topology=ERapidTopology(
                boards=spec.boards, nodes_per_board=spec.nodes_per_board
            )
        )
        panel: Dict[str, Any] = {}
        for policy_name in spec.policies:
            config = base.with_policy(POLICIES[policy_name])
            panel[policy_name] = [
                LegacyFastEngine(
                    config,
                    WorkloadSpec(pattern=spec.pattern, load=load, seed=spec.seed),
                    spec.plan,
                ).run()
                for load in spec.loads
            ]
        results[name] = panel
    return results


def bench_engine(quick: bool = False, jobs: int = 4) -> Dict[str, Any]:
    """Engine packets/sec vs the coroutine engine, plus bit-identity."""
    from repro.analysis.determinism import sweep_fingerprint
    from repro.core.engine import FastEngine
    from repro.experiments.sweep import run_sweep_matrix
    from repro.perf.legacy_engine import LegacyFastEngine

    repeats = 1 if quick else 3
    workloads = {
        "audit16": ("uniform", 0.4),
        "storm": ("complement", 0.9),
    }

    report: Dict[str, Any] = {
        "benchmark": "engine",
        "kernel_version": KERNEL_VERSION,
        "python": platform.python_version(),
        "quick": quick,
        "repeats": repeats,
    }
    speedups = []
    for name, (pattern, load) in workloads.items():
        current = _time_engine(FastEngine, pattern, load, repeats)
        legacy = _time_engine(LegacyFastEngine, pattern, load, repeats)
        speedup = (
            current["packets_per_sec"] / legacy["packets_per_sec"]
            if legacy["packets_per_sec"] > 0
            else 0.0
        )
        speedups.append(speedup)
        report[name] = {
            "workload": f"{pattern} load={load} seed=1, 4x4 boards, P-B",
            "current": current,
            "legacy": legacy,
            "speedup": speedup,
        }
    # Headline number: the weaker of the two workload speedups.
    report["speedup"] = min(speedups)

    specs = _engine_sweep_specs(quick)
    serial = run_sweep_matrix(specs)
    parallel = run_sweep_matrix(specs, jobs=jobs)
    legacy_matrix = _legacy_matrix(specs)

    def _fp(matrix: Dict[str, Any]) -> Dict[str, str]:
        return {
            name: sweep_fingerprint(panel, exclude_extra=("events",))
            for name, panel in sorted(matrix.items())
        }

    legacy_fp = _fp(legacy_matrix)
    serial_fp = _fp(serial)
    parallel_fp = _fp(parallel)
    runs = sum(
        len(spec.loads) * len(spec.policies) for spec in specs.values()
    )
    report["bit_identity"] = {
        "runs": runs,
        "jobs": jobs,
        "excluded_fields": ["extra.events"],
        "legacy_fingerprints": legacy_fp,
        "serial_fingerprints": serial_fp,
        "parallel_fingerprints": parallel_fp,
        "serial_matches_legacy": serial_fp == legacy_fp,
        "parallel_matches_legacy": parallel_fp == legacy_fp,
    }
    return report


# ----------------------------------------------------------------------
# Detailed-engine flits/sec + bit-identity benchmark
# ----------------------------------------------------------------------
def _detailed_config(policy: str = "P-NB") -> ERapidConfig:
    # The detailed engine rejects DBR; P-NB exercises its DPM path.
    return ERapidConfig(
        topology=ERapidTopology(boards=4, nodes_per_board=4),
        policy=make_policy(policy),
        control=ControlParams(window_cycles=500),
        seed=1,
    )


def _time_detailed(
    engine_cls: type, pattern: str, load: float, repeats: int
) -> Dict[str, float]:
    """Best-of-N flits/sec for one detailed-engine class on one workload."""
    plan = MeasurementPlan(warmup=500.0, measure=1500.0, drain_limit=3000.0)
    workload = WorkloadSpec(pattern=pattern, load=load, seed=1)
    best_fps = 0.0
    flits = 0
    events = 0
    for _ in range(repeats):
        engine = engine_cls(_detailed_config(), workload, plan)
        start = perf_counter()
        engine.run()
        elapsed = perf_counter() - start
        flits = sum(r.flits_routed for r in engine.routers)
        events = int(engine.sim.event_count)
        best_fps = max(best_fps, flits / elapsed if elapsed > 0 else 0.0)
    return {
        "flits": float(flits),
        "events": float(events),
        "flits_per_sec": best_fps,
    }


def _detailed_matrix(
    engine_cls: type, quick: bool
) -> Dict[str, Dict[str, Any]]:
    """The detailed bit-identity matrix: (pattern × policy × load) panels
    shaped like sweep results so ``sweep_fingerprint`` applies directly."""
    from repro.core.policies import POLICIES

    if quick:
        plan = MeasurementPlan(warmup=200.0, measure=600.0, drain_limit=1500.0)
        loads = (0.2, 0.8)
    else:
        plan = MeasurementPlan(warmup=500.0, measure=1500.0, drain_limit=3000.0)
        loads = (0.2, 0.5, 0.8)
    policies = ("NP-NB", "P-NB")  # the non-DBR half of the 2x2

    results: Dict[str, Dict[str, Any]] = {}
    for pattern in ("uniform", "complement"):
        base = ERapidConfig(
            topology=ERapidTopology(boards=2, nodes_per_board=4),
            control=ControlParams(window_cycles=500),
            seed=1,
        )
        panel: Dict[str, Any] = {}
        for policy_name in policies:
            config = base.with_policy(POLICIES[policy_name])
            panel[policy_name] = [
                engine_cls(
                    config,
                    WorkloadSpec(pattern=pattern, load=load, seed=7),
                    plan,
                ).run()
                for load in loads
            ]
        results[pattern] = panel
    return results


def bench_detailed(quick: bool = False) -> Dict[str, Any]:
    """Detailed-engine flits/sec vs the frozen process engine, plus
    bit-identity of the clocked rewrite."""
    from repro.analysis.determinism import sweep_fingerprint
    from repro.core.detailed import DetailedEngine
    from repro.perf.legacy_detailed import LegacyDetailedEngine

    repeats = 1 if quick else 3
    workloads = {
        "audit16": ("uniform", 0.4),
        "storm": ("complement", 0.8),
    }

    report: Dict[str, Any] = {
        "benchmark": "detailed",
        "kernel_version": KERNEL_VERSION,
        "python": platform.python_version(),
        "quick": quick,
        "repeats": repeats,
    }
    speedups = []
    for name, (pattern, load) in workloads.items():
        current = _time_detailed(DetailedEngine, pattern, load, repeats)
        legacy = _time_detailed(LegacyDetailedEngine, pattern, load, repeats)
        speedup = (
            current["flits_per_sec"] / legacy["flits_per_sec"]
            if legacy["flits_per_sec"] > 0
            else 0.0
        )
        speedups.append(speedup)
        report[name] = {
            "workload": f"{pattern} load={load} seed=1, 4x4 boards, P-NB",
            "current": current,
            "legacy": legacy,
            "speedup": speedup,
        }
    # Headline number: the weaker of the two workload speedups.
    report["speedup"] = min(speedups)

    legacy_matrix = _detailed_matrix(LegacyDetailedEngine, quick)
    clocked_matrix = _detailed_matrix(DetailedEngine, quick)

    def _fp(matrix: Dict[str, Any]) -> Dict[str, str]:
        return {
            name: sweep_fingerprint(panel, exclude_extra=("events",))
            for name, panel in sorted(matrix.items())
        }

    legacy_fp = _fp(legacy_matrix)
    clocked_fp = _fp(clocked_matrix)
    runs = sum(
        len(loads)
        for panel in legacy_matrix.values()
        for loads in panel.values()
    )
    report["bit_identity"] = {
        "runs": runs,
        "excluded_fields": ["extra.events"],
        "legacy_fingerprints": legacy_fp,
        "clocked_fingerprints": clocked_fp,
        "clocked_matches_legacy": clocked_fp == legacy_fp,
    }
    return report


# ----------------------------------------------------------------------
# Sweep wall-time benchmark
# ----------------------------------------------------------------------
def bench_sweep(quick: bool = False, jobs: int = 4) -> Dict[str, Any]:
    """End-to-end sweep wall time: serial vs pool vs warm cache."""
    from repro.analysis.determinism import sweep_fingerprint
    from repro.experiments.sweep import SweepSpec, run_sweep

    if quick:
        spec = SweepSpec(
            pattern="uniform",
            loads=(0.2, 0.4),
            policies=("NP-NB", "P-B"),
            boards=2,
            nodes_per_board=4,
            seed=1,
            plan=MeasurementPlan(warmup=200.0, measure=600.0, drain_limit=1500.0),
        )
    else:
        spec = SweepSpec(
            pattern="uniform",
            loads=(0.2, 0.4, 0.6),
            policies=("NP-NB", "P-NB", "NP-B", "P-B"),
            boards=4,
            nodes_per_board=4,
            seed=1,
            plan=MeasurementPlan(warmup=500.0, measure=1500.0, drain_limit=3000.0),
        )

    start = perf_counter()
    serial = run_sweep(spec)
    serial_s = perf_counter() - start

    start = perf_counter()
    parallel = run_sweep(spec, jobs=jobs)
    parallel_s = perf_counter() - start

    serial_fp = sweep_fingerprint(serial)
    parallel_fp = sweep_fingerprint(parallel)

    with tempfile.TemporaryDirectory(prefix="erapid-bench-cache-") as tmp:
        cache = RunCache(tmp)
        start = perf_counter()
        run_sweep(spec, cache=cache)
        cold_s = perf_counter() - start
        start = perf_counter()
        cached = run_sweep(spec, cache=cache)
        warm_s = perf_counter() - start
        cached_fp = sweep_fingerprint(cached)
        cache_stats = cache.stats()

    runs = len(spec.loads) * len(spec.policies)
    return {
        "benchmark": "sweep",
        "kernel_version": KERNEL_VERSION,
        "python": platform.python_version(),
        "quick": quick,
        "runs": runs,
        "jobs": jobs,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "cache_cold_seconds": cold_s,
        "cache_warm_seconds": warm_s,
        "cache_stats": cache_stats,
        "determinism": {
            "serial_fingerprint": serial_fp,
            "parallel_fingerprint": parallel_fp,
            "cached_fingerprint": cached_fp,
            "parallel_matches_serial": parallel_fp == serial_fp,
            "cached_matches_serial": cached_fp == serial_fp,
        },
    }


# ----------------------------------------------------------------------
# Batch-engine benchmark
# ----------------------------------------------------------------------
def bench_batch(quick: bool = False, jobs: int = 4) -> Dict[str, Any]:
    """Batch-engine runs/sec vs the ``jobs``-wide scalar sweep.

    Full mode runs the paper's 144-point grid (4 patterns × 4 policies ×
    9 loads on R(1,8,8)) once through :func:`~repro.perf.executor.
    run_sweep_batched` and once through the scalar process pool, then
    gates the pair with the statistical-equivalence harness
    (:mod:`repro.analysis.equivalence`) and a bit-identity fingerprint of
    the stream-identical permutation subset.  Quick mode shrinks the grid
    and plan for CI smoke; the equivalence and bit-identity gates apply
    at every size, the ≥5x speedup bar only to the full grid.  The gated
    timings (grid batch, scalar pool, per-load skip slabs) are
    best-of-3 in full mode, per the module's timing policy — the engines
    are deterministic, so repeats damp scheduler noise without touching
    results (which always come from the first run).

    Two further dimensions measure the sharded tier:

    * ``sharded`` — the same grid re-run under ``jobs`` ∈ {2, 4} (quick:
      {2}) and under explicit ``slab_shard`` overrides; every variant
      must :func:`~repro.analysis.determinism.sweep_fingerprint` equal to
      the single-process batch baseline (shard layout changes wall time,
      never bits), and ``sharded_speedup`` tracks the top-``jobs`` run
      against single-process batch.  The ≥2x bar applies only on the full
      grid when the host has ≥2 cores (``cpu_count`` is recorded so a
      single-core report is honest rather than silently failing).
    * ``transport`` — one covered shard is executed and its struct-of-
      arrays :class:`~repro.core.batch.BatchResultPayload` pickled
      against the equivalent decoded ``RunResult`` list, recording the
      byte and wall-time win of compact result transport.
    * ``skip`` — the event-horizon time-skipping dimension.  The whole
      grid re-runs with ``time_skip=False`` and must fingerprint equal to
      the skipping baseline (``grid_identity``); each load then runs as
      its own single-load slab in both modes, recording wall time, the
      slab's :class:`~repro.core.skip.BatchTelemetry` counters (cycles
      executed/skipped, events per phase), and two per-load identity
      bits (skip == no-skip, and sub-slab == the same rows of the full
      grid slab).  The load-0.1 entry must show the skip machinery
      engaged (``cycles_executed < horizon`` and ``cycles_skipped > 0``)
      at every size.  ``lowload`` aggregates the load ≤ 0.3 subgrid
      (batch rate plus ungated scalar-pool and full-grid comparisons),
      and ``load_scaling`` states the gated claim: the load ≤ 0.3
      subgrid must run at ≥2x the batch runs/sec of the load ≥ 0.7
      subgrid in full mode.  In the pre-skip engine that ratio was ~1 —
      every point paid the fixed per-cycle cost out to the same horizon
      regardless of how little happened — so "cost scales with events
      executed, not cycles simulated" is exactly what the ratio
      measures, on the subgrid where the paper's DPM savings live.
      Comparing same-width single-load slabs keeps slab-size
      amortization out of the measurement (the full-grid rate benefits
      from 144-row slabs, so it is recorded but not gated against).
    """
    import os
    import pickle

    from repro.analysis.determinism import sweep_fingerprint
    from repro.analysis.equivalence import (
        DEFAULT_TOLERANCES,
        bit_identity_fingerprint,
        compare_runs,
    )
    from repro.core.batch import (
        BATCH_KERNEL_VERSION,
        BatchEngine,
        coverage_gap,
        decode_payload,
    )
    from repro.core.policies import POLICIES
    from repro.experiments.sweep import PAPER_LOADS
    from repro.perf.executor import RunTask, execute_tasks, run_sweep_batched
    from repro.perf.shards import plan_shards

    if quick:
        patterns: Tuple[str, ...] = ("complement", "uniform")
        # 0.1 (not 0.2) as the low point so quick mode exercises the
        # skip-engagement gate on the same load the full grid gates.
        loads: Tuple[float, ...] = (0.1, 0.5, 0.8)
        boards, nodes = 4, 4
        # The measurement window must be long enough that the uniform
        # points (a *different* random realization per engine, by design)
        # sit inside the declared tolerances: at measure=2000 the
        # seed-to-seed power spread on this grid is ~15%, right at the
        # power band; at measure=6000 it collapses to ~3%.
        plan = MeasurementPlan(warmup=2000.0, measure=6000.0, drain_limit=10000.0)
    else:
        patterns = ("uniform", "complement", "butterfly", "perfect_shuffle")
        loads = tuple(PAPER_LOADS)
        boards, nodes = 8, 8
        plan = MeasurementPlan(warmup=8000.0, measure=12000.0, drain_limit=24000.0)
    policies = ("NP-NB", "P-NB", "NP-B", "P-B")

    base = ERapidConfig(
        topology=ERapidTopology(boards=boards, nodes_per_board=nodes)
    )
    tasks = []
    perm_indices = []
    for pattern in patterns:
        for policy_name in policies:
            config = base.with_policy(POLICIES[policy_name])
            for load in loads:
                workload = WorkloadSpec(pattern=pattern, load=load, seed=1)
                if pattern != "uniform":
                    perm_indices.append(len(tasks))
                tasks.append(RunTask(config, workload, plan))
    covered = sum(
        1
        for t in tasks
        if coverage_gap(t.config, t.workload, t.plan) is None
    )
    runs = len(tasks)

    # Gated timings are best-of-N in full mode (module policy, see the
    # docstring): the engines are deterministic, so repeats only damp
    # host scheduler noise — results always come from the first run.
    repeats = 1 if quick else 3

    batch_s = float("inf")
    for rep in range(repeats):
        start = perf_counter()
        results = run_sweep_batched(tasks, jobs=1)
        batch_s = min(batch_s, perf_counter() - start)
        if rep == 0:
            batch_results = results
    base_fp = sweep_fingerprint({"grid": batch_results})

    scalar_s = float("inf")
    for rep in range(repeats):
        start = perf_counter()
        results = execute_tasks(tasks, jobs=jobs)
        scalar_s = min(scalar_s, perf_counter() - start)
        if rep == 0:
            scalar_results = results

    # --- Sharded multi-process variants --------------------------------
    # Shard layout is pure scheduling: every (jobs, slab_shard) variant
    # must reproduce the single-process batch sweep bit-for-bit.
    if quick:
        jobs_grid: Tuple[int, ...] = (2,)
        shard_perms: Tuple[int, ...] = (5,)
    else:
        jobs_grid = (2, 4)
        shard_perms = (16, 96)
    variants = [(j, None) for j in jobs_grid] + [(2, s) for s in shard_perms]
    sharded_runs = [
        {
            "jobs": 1,
            "slab_shard": None,
            "plan": plan_shards(tasks, jobs=1).describe(),
            "seconds": batch_s,
            "runs_per_sec": runs / batch_s if batch_s > 0 else 0.0,
            "fingerprint_matches_jobs1": True,
        }
    ]
    jobs_identity = True
    for j, shard in variants:
        plan_desc = plan_shards(tasks, jobs=j, slab_shard=shard).describe()
        start = perf_counter()
        res = run_sweep_batched(tasks, jobs=j, slab_shard=shard)
        secs = perf_counter() - start
        matches = sweep_fingerprint({"grid": res}) == base_fp
        jobs_identity = jobs_identity and matches
        sharded_runs.append(
            {
                "jobs": j,
                "slab_shard": shard,
                "plan": plan_desc,
                "seconds": secs,
                "runs_per_sec": runs / secs if secs > 0 else 0.0,
                "fingerprint_matches_jobs1": matches,
            }
        )
    top_jobs = max(jobs_grid)
    top = next(
        r
        for r in sharded_runs
        if r["jobs"] == top_jobs and r["slab_shard"] is None
    )
    top_seconds = float(top["seconds"])  # type: ignore[arg-type]
    sharded_speedup = batch_s / top_seconds if top_seconds > 0 else 0.0

    # --- Transport: payload vs RunResult-list pickling -----------------
    transport: Dict[str, Any] = {}
    batch_shards = plan_shards(tasks, jobs=max(2, jobs)).batch_shards
    if batch_shards:
        shard0 = batch_shards[0]
        engine = BatchEngine(
            [
                (tasks[i].config, tasks[i].workload, tasks[i].plan)
                for i in shard0.indices
            ]
        )
        payload = engine.run_payload()
        start = perf_counter()
        payload_blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        payload_pickle_s = perf_counter() - start
        decoded = decode_payload(payload, engine.runs)
        start = perf_counter()
        results_blob = pickle.dumps(decoded, protocol=pickle.HIGHEST_PROTOCOL)
        results_pickle_s = perf_counter() - start
        transport = {
            "shard_runs": shard0.runs,
            "payload_bytes": len(payload_blob),
            "results_bytes": len(results_blob),
            "bytes_ratio": (
                len(results_blob) / len(payload_blob) if payload_blob else 0.0
            ),
            "payload_pickle_seconds": payload_pickle_s,
            "results_pickle_seconds": results_pickle_s,
        }

    # --- Skip: time-skipping identity, telemetry, low-load rate --------
    # The whole grid is ONE slab (load is a per-run column in slab_key),
    # so per-load skip behaviour needs dedicated single-load sub-sweeps:
    # each load's tasks form their own slab and report one telemetry
    # block through ``on_shard``.
    start = perf_counter()
    noskip_results = run_sweep_batched(tasks, jobs=1, time_skip=False)
    noskip_s = perf_counter() - start
    grid_identity = sweep_fingerprint({"grid": noskip_results}) == base_fp

    def _merge_telemetry(reports: list) -> Dict[str, Any]:
        merged: Dict[str, Any] = {}
        for rep in reports:
            if rep.kind != "batch" or rep.telemetry is None:
                continue
            for key, value in rep.telemetry.items():
                if key == "horizon":
                    merged[key] = max(int(merged.get(key, 0)), int(value))
                elif key != "skip_ratio":
                    merged[key] = int(merged.get(key, 0)) + int(value)
        visited = merged.get("cycles_executed", 0) + merged.get(
            "cycles_skipped", 0
        )
        merged["skip_ratio"] = (
            merged.get("cycles_skipped", 0) / visited if visited else 0.0
        )
        return merged

    by_load = []
    skip_identity = grid_identity
    skip_engaged = True
    lowload_loads = [float(x) for x in loads if x <= 0.3]
    lowload_indices: list = []
    lowload_skip_s = 0.0
    for load in loads:
        idx = [i for i, t in enumerate(tasks) if t.workload.load == load]
        sub = [tasks[i] for i in idx]
        shard_reports: list = []
        sub_skip_s = float("inf")
        for rep in range(repeats):
            start = perf_counter()
            rep_results = run_sweep_batched(
                sub,
                jobs=1,
                on_shard=shard_reports.append if rep == 0 else None,
            )
            sub_skip_s = min(sub_skip_s, perf_counter() - start)
            if rep == 0:
                sub_skip = rep_results
        start = perf_counter()
        sub_noskip = run_sweep_batched(sub, jobs=1, time_skip=False)
        sub_noskip_s = perf_counter() - start
        sub_fp = sweep_fingerprint({"grid": sub_skip})
        identical = sub_fp == sweep_fingerprint({"grid": sub_noskip})
        matches_grid = sub_fp == sweep_fingerprint(
            {"grid": [batch_results[i] for i in idx]}
        )
        telemetry = _merge_telemetry(shard_reports)
        skip_identity = skip_identity and identical and matches_grid
        if load == 0.1:
            skip_engaged = (
                skip_engaged
                and telemetry.get("cycles_executed", 0)
                < telemetry.get("horizon", 0)
                and telemetry.get("cycles_skipped", 0) > 0
            )
        if load in lowload_loads:
            lowload_indices.extend(idx)
            lowload_skip_s += sub_skip_s
        by_load.append(
            {
                "load": float(load),
                "runs": len(idx),
                "skip_seconds": sub_skip_s,
                "noskip_seconds": sub_noskip_s,
                "telemetry": telemetry,
                "identical_to_noskip": identical,
                "matches_grid": matches_grid,
            }
        )

    start = perf_counter()
    execute_tasks([tasks[i] for i in lowload_indices], jobs=jobs)
    lowload_scalar_s = perf_counter() - start
    n_low = len(lowload_indices)
    grid_rps = runs / batch_s if batch_s > 0 else 0.0
    lowload_rps = n_low / lowload_skip_s if lowload_skip_s > 0 else 0.0
    # Low-vs-high load scaling, the gated form of "cost tracks events":
    # both rates come from the same-width single-load slabs timed above,
    # so slab-size amortization cancels out of the ratio.
    highload_loads = [float(x) for x in loads if x >= 0.7]
    high_entries = [e for e in by_load if e["load"] in highload_loads]
    n_high = sum(e["runs"] for e in high_entries)
    highload_skip_s = sum(e["skip_seconds"] for e in high_entries)
    highload_rps = n_high / highload_skip_s if highload_skip_s > 0 else 0.0
    skip_section: Dict[str, Any] = {
        "grid_noskip_seconds": noskip_s,
        "grid_identity": grid_identity,
        "by_load": by_load,
        "identity": skip_identity,
        "skip_engaged_low_load": skip_engaged,
        "lowload": {
            "loads": lowload_loads,
            "runs": n_low,
            "batch_seconds": lowload_skip_s,
            "batch_runs_per_sec": lowload_rps,
            "grid_runs_per_sec": grid_rps,
            "speedup_vs_grid": lowload_rps / grid_rps if grid_rps else 0.0,
            "scalar_seconds": lowload_scalar_s,
            "scalar_runs_per_sec": (
                n_low / lowload_scalar_s if lowload_scalar_s > 0 else 0.0
            ),
            "speedup_vs_scalar": (
                lowload_scalar_s / lowload_skip_s if lowload_skip_s > 0 else 0.0
            ),
        },
        "load_scaling": {
            "low_loads": lowload_loads,
            "high_loads": highload_loads,
            "low_runs": n_low,
            "high_runs": n_high,
            "low_runs_per_sec": lowload_rps,
            "high_runs_per_sec": highload_rps,
            "low_vs_high": lowload_rps / highload_rps if highload_rps else 0.0,
        },
    }

    equivalence = compare_runs(scalar_results, batch_results)
    perm_scalar = [scalar_results[i] for i in perm_indices]
    perm_batch = [batch_results[i] for i in perm_indices]
    scalar_fp = bit_identity_fingerprint(perm_scalar)
    batch_fp = bit_identity_fingerprint(perm_batch)

    return {
        "benchmark": "batch",
        "kernel_version": KERNEL_VERSION,
        "batch_kernel_version": BATCH_KERNEL_VERSION,
        "python": platform.python_version(),
        "quick": quick,
        "runs": runs,
        "covered_runs": covered,
        "repeats": repeats,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "grid": {
            "patterns": list(patterns),
            "policies": list(policies),
            "loads": [float(x) for x in loads],
            "boards": boards,
            "nodes_per_board": nodes,
        },
        "batch_seconds": batch_s,
        "scalar_seconds": scalar_s,
        "batch_runs_per_sec": runs / batch_s if batch_s > 0 else 0.0,
        "scalar_runs_per_sec": runs / scalar_s if scalar_s > 0 else 0.0,
        "speedup": scalar_s / batch_s if batch_s > 0 else 0.0,
        "sharded": {
            "variants": sharded_runs,
            "jobs_identity": jobs_identity,
            "top_jobs": top_jobs,
            "sharded_speedup": sharded_speedup,
        },
        "transport": transport,
        "skip": skip_section,
        "tolerances": [
            {
                "metric": t.metric,
                "rel_tol": t.rel_tol,
                "abs_tol": t.abs_tol,
                "drained_only": t.drained_only,
            }
            for t in DEFAULT_TOLERANCES
        ],
        "equivalence": equivalence.to_dict(),
        "bit_identity": {
            "runs": len(perm_indices),
            "fields": ["offered", "labeled_injected"],
            "scalar_fingerprint": scalar_fp,
            "batch_fingerprint": batch_fp,
            "matches": scalar_fp == batch_fp,
        },
    }


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
def write_report(report: Dict[str, Any], path: Path) -> None:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def run_benchmarks(
    output_dir: Path,
    quick: bool = False,
    jobs: int = 4,
    which: str = "all",
) -> Dict[str, Dict[str, Any]]:
    """Run the selected benchmarks and write ``BENCH_*.json`` reports.

    ``which`` is ``"kernel"``, ``"engine"``, ``"detailed"``, ``"sweep"``,
    ``"batch"`` or ``"all"``.  Returns the reports keyed by family.
    """
    output_dir.mkdir(parents=True, exist_ok=True)
    reports: Dict[str, Dict[str, Any]] = {}
    if which in ("kernel", "all"):
        reports["kernel"] = bench_kernel(quick=quick)
        write_report(reports["kernel"], output_dir / "BENCH_kernel.json")
    if which in ("engine", "all"):
        reports["engine"] = bench_engine(quick=quick, jobs=jobs)
        write_report(reports["engine"], output_dir / "BENCH_engine.json")
    if which in ("detailed", "all"):
        reports["detailed"] = bench_detailed(quick=quick)
        write_report(reports["detailed"], output_dir / "BENCH_detailed.json")
    if which in ("sweep", "all"):
        reports["sweep"] = bench_sweep(quick=quick, jobs=jobs)
        write_report(reports["sweep"], output_dir / "BENCH_sweep.json")
    if which in ("batch", "all"):
        reports["batch"] = bench_batch(quick=quick, jobs=jobs)
        write_report(reports["batch"], output_dir / "BENCH_batch.json")
    return reports
