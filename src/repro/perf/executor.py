"""Process-pool execution of independent simulation runs.

Every cell of the paper's (pattern × policy × load) evaluation matrix is
an independent simulation, so the matrix parallelizes perfectly — the only
thing to get right is determinism:

* **Seeding.**  A run's randomness is fully described by its
  :class:`~repro.traffic.workload.WorkloadSpec` seed: the engine builds a
  fresh :class:`~repro.sim.rng.RngRegistry` whose per-entity streams are
  ``numpy.random.SeedSequence``-spawned from that seed (injective in the
  stream name).  No RNG state crosses process boundaries, so a run's
  draws are identical whether it executes inline, in a worker, or in any
  worker interleaving — the common-random-numbers contract across the
  four NP/P × NB/B policies is preserved under any ``jobs`` value.

* **Transport.**  A :class:`RunTask` carries only frozen declarative
  dataclasses (config/workload/plan) into the worker; the
  :class:`~repro.metrics.collector.RunResult` coming back is plain data.
  Both pickle cleanly under every multiprocessing start method.

* **Assembly.**  Results are reassembled by task index, so the output
  sequence never depends on completion order.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, cast

from repro.core.config import ERapidConfig
from repro.metrics.collector import MeasurementPlan, RunResult
from repro.traffic.workload import WorkloadSpec

__all__ = ["RunTask", "execute_run", "execute_tasks"]

#: ``on_result(index, result)`` — invoked as runs complete (completion
#: order under ``jobs > 1``, task order serially).
ResultHook = Callable[[int, RunResult], None]


@dataclass(frozen=True, slots=True)
class RunTask:
    """One simulation run, described declaratively (picklable)."""

    config: ERapidConfig
    workload: WorkloadSpec
    plan: MeasurementPlan


def execute_run(task: RunTask) -> RunResult:
    """Run one task to completion in the current process."""
    from repro.core.engine import FastEngine

    return FastEngine(task.config, task.workload, task.plan).run()


def _execute_indexed(indexed: Tuple[int, RunTask]) -> Tuple[int, RunResult]:
    """Worker entry point (module-level so it pickles under spawn)."""
    index, task = indexed
    return index, execute_run(task)


def execute_tasks(
    tasks: Sequence[RunTask],
    jobs: int = 1,
    on_result: Optional[ResultHook] = None,
) -> List[RunResult]:
    """Execute ``tasks``; returns results in task order.

    ``jobs <= 1`` runs inline (zero pool overhead); ``jobs > 1`` fans out
    to a :class:`~concurrent.futures.ProcessPoolExecutor` of at most
    ``min(jobs, len(tasks))`` workers.  The returned list is ordered by
    task index either way, so callers observe identical output.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    results: List[Optional[RunResult]] = [None] * len(tasks)
    if jobs == 1 or len(tasks) <= 1:
        for i, task in enumerate(tasks):
            result = execute_run(task)
            results[i] = result
            if on_result is not None:
                on_result(i, result)
        return cast(List[RunResult], results)

    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        pending = {
            pool.submit(_execute_indexed, (i, task))
            for i, task in enumerate(tasks)
        }
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                index, result = fut.result()
                results[index] = result
                if on_result is not None:
                    on_result(index, result)
    return cast(List[RunResult], results)
