"""Process-pool execution of independent simulation runs.

Every cell of the paper's (pattern × policy × load) evaluation matrix is
an independent simulation, so the matrix parallelizes perfectly — the only
thing to get right is determinism:

* **Seeding.**  A run's randomness is fully described by its
  :class:`~repro.traffic.workload.WorkloadSpec` seed: the engine builds a
  fresh :class:`~repro.sim.rng.RngRegistry` whose per-entity streams are
  ``numpy.random.SeedSequence``-spawned from that seed (injective in the
  stream name).  No RNG state crosses process boundaries, so a run's
  draws are identical whether it executes inline, in a worker, or in any
  worker interleaving — the common-random-numbers contract across the
  four NP/P × NB/B policies is preserved under any ``jobs`` value.

* **Transport.**  A :class:`RunTask` carries only frozen declarative
  dataclasses (config/workload/plan) into the worker; the
  :class:`~repro.metrics.collector.RunResult` coming back is plain data.
  Both pickle cleanly under every multiprocessing start method.  Batch
  shards return a :class:`~repro.core.batch.BatchResultPayload`
  (struct-of-arrays numpy buffers) instead of a RunResult list; the
  parent decodes it against its own task descriptions, so the wire
  volume is ten flat arrays per shard rather than one object graph per
  run.

* **Assembly.**  Results are reassembled by task index, so the output
  sequence never depends on completion order.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple, cast

from repro.core.config import ERapidConfig
from repro.metrics.collector import MeasurementPlan, RunResult
from repro.perf.shards import SLAB_CAP, ShardReport, ShardSpec, plan_shards
from repro.traffic.workload import WorkloadSpec

__all__ = [
    "RunTask",
    "execute_run",
    "execute_tasks",
    "run_sweep_batched",
    "SLAB_CAP",
]

#: ``on_result(index, result)`` — invoked as runs complete (completion
#: order under ``jobs > 1``, task order serially).
ResultHook = Callable[[int, RunResult], None]

#: ``on_shard(report)`` — invoked once per shard as it finishes; the
#: service layer collects these into the job manifest.
ShardHook = Callable[[ShardReport], None]


@dataclass(frozen=True, slots=True)
class RunTask:
    """One simulation run, described declaratively (picklable)."""

    config: ERapidConfig
    workload: WorkloadSpec
    plan: MeasurementPlan


def execute_run(task: RunTask) -> RunResult:
    """Run one task to completion in the current process."""
    from repro.core.engine import FastEngine

    return FastEngine(task.config, task.workload, task.plan).run()


def _execute_indexed(indexed: Tuple[int, RunTask]) -> Tuple[int, RunResult]:
    """Worker entry point (module-level so it pickles under spawn)."""
    index, task = indexed
    return index, execute_run(task)


def execute_tasks(
    tasks: Sequence[RunTask],
    jobs: int = 1,
    on_result: Optional[ResultHook] = None,
) -> List[RunResult]:
    """Execute ``tasks``; returns results in task order.

    ``jobs <= 1`` runs inline (zero pool overhead); ``jobs > 1`` fans out
    to a :class:`~concurrent.futures.ProcessPoolExecutor` of at most
    ``min(jobs, len(tasks))`` workers.  The returned list is ordered by
    task index either way, so callers observe identical output.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    results: List[Optional[RunResult]] = [None] * len(tasks)
    if jobs == 1 or len(tasks) <= 1:
        for i, task in enumerate(tasks):
            result = execute_run(task)
            results[i] = result
            if on_result is not None:
                on_result(i, result)
        return cast(List[RunResult], results)

    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        pending = {
            pool.submit(_execute_indexed, (i, task))
            for i, task in enumerate(tasks)
        }
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                index, result = fut.result()
                results[index] = result
                if on_result is not None:
                    on_result(index, result)
    return cast(List[RunResult], results)


def _shard_runs(
    tasks: Sequence[RunTask], shard: ShardSpec
) -> List[Tuple[ERapidConfig, WorkloadSpec, MeasurementPlan]]:
    return [
        (tasks[i].config, tasks[i].workload, tasks[i].plan)
        for i in shard.indices
    ]


def _execute_batch_shard(
    args: Tuple[int, Tuple[RunTask, ...], bool],
) -> Tuple[int, float, object, Optional[dict]]:
    """Worker entry point for one batch shard (module-level: picklable).

    Returns ``(shard_id, worker_seconds, BatchResultPayload, telemetry)``
    — the compact struct-of-arrays transport, never a pickled RunResult
    list; the parent decodes it against its own task descriptions.  The
    telemetry dict carries the slab's cycle/event counters (a handful of
    ints — negligible next to the payload arrays).
    """
    from repro.core.batch import BatchEngine

    shard_id, shard_tasks, time_skip = args
    start = perf_counter()
    engine = BatchEngine(
        [(t.config, t.workload, t.plan) for t in shard_tasks],
        time_skip=time_skip,
    )
    payload = engine.run_payload()
    telemetry = (
        engine.telemetry.to_dict() if engine.telemetry is not None else None
    )
    return shard_id, perf_counter() - start, payload, telemetry


def run_sweep_batched(
    tasks: Sequence[RunTask],
    jobs: int = 1,
    on_result: Optional[ResultHook] = None,
    slab_shard: Optional[int] = None,
    on_shard: Optional[ShardHook] = None,
    time_skip: bool = True,
) -> List[RunResult]:
    """Execute ``tasks`` on the vectorized batch engine where possible.

    Tasks the batch model covers (:func:`repro.core.batch.coverage_gap`
    returns None) are grouped by :func:`repro.core.batch.slab_key` and
    sharded into per-worker sub-slabs by :func:`repro.perf.shards.
    plan_shards`; uncovered tasks fall back to the scalar engine.  Under
    ``jobs > 1`` batch shards and scalar-fallback runs share **one**
    process pool as a unified work queue, so ``jobs`` saturates the
    machine regardless of the covered/fallback mix (``slab_shard``
    overrides the shard-size heuristic; see :mod:`repro.perf.shards`).
    ``jobs == 1`` executes everything inline with no transport at all.

    The returned list is in task order, like :func:`execute_tasks`.
    ``on_result(index, result)`` fires exactly once per index — in task
    order within a shard as that shard completes, shard completion order
    across shards.  Shard layout never changes a run's result: every
    run's state rows are independent, so partitioning is purely a
    throughput concern (the batch benchmark gates fingerprint identity
    across ``jobs`` and ``slab_shard`` permutations).

    A batch shard that raises is not fatal: its indices are re-routed to
    the scalar engine (same pool) and the shard is reported with
    ``kind="fallback"`` via ``on_shard``; a scalar run's exception
    propagates, as in :func:`execute_tasks`.

    ``time_skip=False`` forces every batch shard onto the engine's
    unskipped cycle-by-cycle loop — results are bit-identical either way
    (the benchmark gates it); the flag exists for A/B timing and for the
    identity gate itself.
    """
    from repro.core.batch import BatchEngine, decode_payload

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    plan = plan_shards(tasks, jobs=jobs, slab_shard=slab_shard)
    results: List[Optional[RunResult]] = [None] * len(tasks)
    started = perf_counter()

    def report(
        shard: ShardSpec,
        kind: str,
        seconds: float,
        payload_bytes: int = 0,
        error: Optional[str] = None,
        telemetry: Optional[dict] = None,
    ) -> None:
        if on_shard is not None:
            on_shard(
                ShardReport(
                    shard_id=shard.shard_id,
                    kind=kind,
                    runs=shard.runs,
                    seconds=seconds,
                    payload_bytes=payload_bytes,
                    error=error,
                    telemetry=telemetry,
                )
            )

    def deliver(shard: ShardSpec, decoded: Sequence[RunResult]) -> None:
        # Task order within the shard — the exactly-once, in-order
        # contract the service's event stream relies on.
        for i, result in zip(shard.indices, decoded):
            results[i] = result
            if on_result is not None:
                on_result(i, result)

    def run_scalar_inline(i: int) -> None:
        result = execute_run(tasks[i])
        results[i] = result
        if on_result is not None:
            on_result(i, result)

    if jobs == 1:
        for shard in plan.batch_shards:
            runs = _shard_runs(tasks, shard)
            start = perf_counter()
            try:
                engine = BatchEngine(runs, time_skip=time_skip)
                payload = engine.run_payload()
            except Exception as exc:  # noqa: BLE001 - re-routed, not dropped
                for i in shard.indices:
                    run_scalar_inline(i)
                report(
                    shard,
                    "fallback",
                    perf_counter() - start,
                    error=f"{type(exc).__name__}: {exc}",
                )
                continue
            deliver(shard, decode_payload(payload, runs))
            report(
                shard,
                "batch",
                perf_counter() - start,
                payload.nbytes,
                telemetry=(
                    engine.telemetry.to_dict()
                    if engine.telemetry is not None
                    else None
                ),
            )
        scalar_shard = next(
            (s for s in plan.shards if s.kind == "scalar"), None
        )
        if scalar_shard is not None:
            for i in scalar_shard.indices:
                run_scalar_inline(i)
            report(scalar_shard, "scalar", perf_counter() - started)
        return cast(List[RunResult], results)

    scalar_shard = next((s for s in plan.shards if s.kind == "scalar"), None)
    n_items = len(plan.batch_shards) + (
        scalar_shard.runs if scalar_shard is not None else 0
    )
    scalar_open = scalar_shard.runs if scalar_shard is not None else 0
    with ProcessPoolExecutor(max_workers=min(jobs, max(n_items, 1))) as pool:
        pending: dict[Future, Tuple[str, object]] = {}
        for shard in plan.batch_shards:
            fut = pool.submit(
                _execute_batch_shard,
                (
                    shard.shard_id,
                    tuple(tasks[i] for i in shard.indices),
                    time_skip,
                ),
            )
            pending[fut] = ("batch", shard)
        if scalar_shard is not None:
            for i in scalar_shard.indices:
                fut = pool.submit(_execute_indexed, (i, tasks[i]))
                pending[fut] = ("scalar", i)
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                kind, obj = pending.pop(fut)
                if kind == "batch":
                    shard = cast(ShardSpec, obj)
                    try:
                        _, seconds, payload, telemetry = fut.result()
                    except Exception as exc:  # noqa: BLE001 - re-route
                        for i in shard.indices:
                            f2 = pool.submit(_execute_indexed, (i, tasks[i]))
                            pending[f2] = ("rescued", (i, shard))
                        report(
                            shard,
                            "fallback",
                            perf_counter() - started,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                        continue
                    deliver(
                        shard,
                        decode_payload(payload, _shard_runs(tasks, shard)),
                    )
                    report(
                        shard,
                        "batch",
                        seconds,
                        payload.nbytes,  # type: ignore[attr-defined]
                        telemetry=telemetry,
                    )
                else:
                    index, result = fut.result()
                    results[index] = result
                    if on_result is not None:
                        on_result(index, result)
                    if kind == "scalar":
                        scalar_open -= 1
                        if scalar_open == 0 and scalar_shard is not None:
                            report(
                                scalar_shard,
                                "scalar",
                                perf_counter() - started,
                            )
    return cast(List[RunResult], results)
