"""Process-pool execution of independent simulation runs.

Every cell of the paper's (pattern × policy × load) evaluation matrix is
an independent simulation, so the matrix parallelizes perfectly — the only
thing to get right is determinism:

* **Seeding.**  A run's randomness is fully described by its
  :class:`~repro.traffic.workload.WorkloadSpec` seed: the engine builds a
  fresh :class:`~repro.sim.rng.RngRegistry` whose per-entity streams are
  ``numpy.random.SeedSequence``-spawned from that seed (injective in the
  stream name).  No RNG state crosses process boundaries, so a run's
  draws are identical whether it executes inline, in a worker, or in any
  worker interleaving — the common-random-numbers contract across the
  four NP/P × NB/B policies is preserved under any ``jobs`` value.

* **Transport.**  A :class:`RunTask` carries only frozen declarative
  dataclasses (config/workload/plan) into the worker; the
  :class:`~repro.metrics.collector.RunResult` coming back is plain data.
  Both pickle cleanly under every multiprocessing start method.

* **Assembly.**  Results are reassembled by task index, so the output
  sequence never depends on completion order.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, cast

from repro.core.config import ERapidConfig
from repro.metrics.collector import MeasurementPlan, RunResult
from repro.traffic.workload import WorkloadSpec

__all__ = ["RunTask", "execute_run", "execute_tasks", "run_sweep_batched"]

#: Run points per :class:`~repro.core.batch.BatchEngine` slab.  Bounds the
#: struct-of-arrays working set (state is O(runs x wavelengths x boards^2))
#: while keeping slabs wide enough to amortize the per-cycle numpy
#: dispatch overhead.
SLAB_CAP = 256

#: ``on_result(index, result)`` — invoked as runs complete (completion
#: order under ``jobs > 1``, task order serially).
ResultHook = Callable[[int, RunResult], None]


@dataclass(frozen=True, slots=True)
class RunTask:
    """One simulation run, described declaratively (picklable)."""

    config: ERapidConfig
    workload: WorkloadSpec
    plan: MeasurementPlan


def execute_run(task: RunTask) -> RunResult:
    """Run one task to completion in the current process."""
    from repro.core.engine import FastEngine

    return FastEngine(task.config, task.workload, task.plan).run()


def _execute_indexed(indexed: Tuple[int, RunTask]) -> Tuple[int, RunResult]:
    """Worker entry point (module-level so it pickles under spawn)."""
    index, task = indexed
    return index, execute_run(task)


def execute_tasks(
    tasks: Sequence[RunTask],
    jobs: int = 1,
    on_result: Optional[ResultHook] = None,
) -> List[RunResult]:
    """Execute ``tasks``; returns results in task order.

    ``jobs <= 1`` runs inline (zero pool overhead); ``jobs > 1`` fans out
    to a :class:`~concurrent.futures.ProcessPoolExecutor` of at most
    ``min(jobs, len(tasks))`` workers.  The returned list is ordered by
    task index either way, so callers observe identical output.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    results: List[Optional[RunResult]] = [None] * len(tasks)
    if jobs == 1 or len(tasks) <= 1:
        for i, task in enumerate(tasks):
            result = execute_run(task)
            results[i] = result
            if on_result is not None:
                on_result(i, result)
        return cast(List[RunResult], results)

    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        pending = {
            pool.submit(_execute_indexed, (i, task))
            for i, task in enumerate(tasks)
        }
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                index, result = fut.result()
                results[index] = result
                if on_result is not None:
                    on_result(index, result)
    return cast(List[RunResult], results)


def run_sweep_batched(
    tasks: Sequence[RunTask],
    jobs: int = 1,
    on_result: Optional[ResultHook] = None,
) -> List[RunResult]:
    """Execute ``tasks`` on the vectorized batch engine where possible.

    Tasks the batch model covers (:func:`repro.core.batch.coverage_gap`
    returns None) are grouped by :func:`repro.core.batch.slab_key` into
    struct-of-arrays slabs of at most :data:`SLAB_CAP` runs, each advanced
    as one :class:`~repro.core.batch.BatchEngine`; everything else falls
    back to the scalar :func:`execute_tasks` path (``jobs`` applies to the
    fallback pool only — a slab is single-process by construction).

    The returned list is in task order, like :func:`execute_tasks`;
    ``on_result(index, result)`` fires per run as its slab (or fallback
    run) completes.  Slab membership never changes a run's result: every
    run's state rows are independent, so partitioning is purely a
    throughput concern.
    """
    from repro.core.batch import BatchEngine, coverage_gap, slab_key

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    results: List[Optional[RunResult]] = [None] * len(tasks)
    #: slab key -> task indices, in task order (dict preserves insertion
    #: order, so slab composition is deterministic in the task sequence).
    slabs: Dict[Tuple[object, ...], List[int]] = {}
    scalar_indices: List[int] = []
    for i, task in enumerate(tasks):
        if coverage_gap(task.config, task.workload, task.plan) is None:
            key = slab_key(task.config, task.workload, task.plan)
            slabs.setdefault(key, []).append(i)
        else:
            scalar_indices.append(i)

    # Slab order is immaterial: each run's result depends only on its own
    # (config, workload, plan) row and lands in its own `results` slot.
    for indices in slabs.values():  # sim-lint: ignore[SIM007]
        for lo in range(0, len(indices), SLAB_CAP):
            chunk = indices[lo : lo + SLAB_CAP]
            engine = BatchEngine(
                [(tasks[i].config, tasks[i].workload, tasks[i].plan) for i in chunk]
            )
            for i, result in zip(chunk, engine.run()):
                results[i] = result
                if on_result is not None:
                    on_result(i, result)

    if scalar_indices:
        fallback = [tasks[i] for i in scalar_indices]

        def forward(j: int, result: RunResult) -> None:
            i = scalar_indices[j]
            results[i] = result
            if on_result is not None:
                on_result(i, result)

        execute_tasks(fallback, jobs=jobs, on_result=forward)
    return cast(List[RunResult], results)
