"""Shard planning for parallel batch-tier sweep execution.

PR 8's batch engine advanced every slab sequentially in the parent
process, so ``--engine batch --jobs N`` could only parallelize the scalar
*fallback* — the fastest tier was the one tier that could not use the
machine's cores.  This module fixes the planning half of that: it splits
every covered slab into per-worker **shards** (sub-slabs) and lays them
out next to the scalar-fallback indices as one unified work queue for the
``repro.perf`` process pool.

Sharding is sound because every run's state rows in a
:class:`~repro.core.batch.BatchEngine` slab are independent —
partitioning is purely a throughput concern, never a semantics one — so a
shard layout can change wall-clock time but not a single result bit (the
batch benchmark gates fingerprint identity across layouts).

Shard-size heuristic (:func:`effective_shard_size`):

* ``jobs == 1`` with no override → :data:`SLAB_CAP`.  There is no pool to
  feed, so the only cost that matters is per-shard state construction —
  make shards as wide as the engine allows.
* ``jobs > 1`` → ``ceil(covered / (jobs * OVERSUBSCRIBE))`` clamped to
  ``[MIN_SHARD, SLAB_CAP]``.  Oversubscribing by
  :data:`OVERSUBSCRIBE` shards per worker keeps the queue deep enough
  that a worker finishing early — or one tied up by a scalar-fallback
  straggler — immediately picks up remaining batch work instead of
  idling at the tail; :data:`MIN_SHARD` keeps the per-shard
  struct-of-arrays setup amortized over enough runs to stay noise.
* ``slab_shard=N`` overrides the target outright (clamped to
  ``[1, SLAB_CAP]``) for benchmarking and layout-permutation gating.

Shards never cross slab boundaries (a :class:`~repro.core.batch.
BatchEngine` holds exactly one slab), and within a slab the indices keep
task order, so the plan is a pure deterministic function of
``(tasks, jobs, slab_shard)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SLAB_CAP",
    "MIN_SHARD",
    "OVERSUBSCRIBE",
    "ShardSpec",
    "ShardReport",
    "ShardPlan",
    "effective_shard_size",
    "plan_shards",
]

#: Run points per :class:`~repro.core.batch.BatchEngine` slab.  Bounds the
#: struct-of-arrays working set (state is O(runs x wavelengths x boards^2))
#: while keeping slabs wide enough to amortize the per-cycle numpy
#: dispatch overhead.
SLAB_CAP = 256

#: Smallest batch shard the heuristic will cut.  Below this the per-shard
#: BatchEngine state construction (CSR injection schedules, per-channel
#: arrays) stops amortizing and sharding costs more than it wins.  The
#: event-horizon skipping loop and frozen-run compaction cut the fixed
#: per-cycle overhead a narrow shard used to pay, so the floor dropped
#: from 8 to 4 — thinner shards now parallelize further without losing
#: their amortization.
MIN_SHARD = 4

#: Target batch shards per pool worker.  >1 so the unified queue stays
#: deep enough for work stealing around scalar-fallback stragglers.
OVERSUBSCRIBE = 2


@dataclass(frozen=True, slots=True)
class ShardSpec:
    """One schedulable unit of a sharded sweep.

    ``kind == "batch"`` shards carry the task indices of one sub-slab;
    the single ``kind == "scalar"`` shard (when present) carries every
    fallback index — those still execute as individual pool tasks, the
    spec just groups them for planning and reporting.
    """

    shard_id: int
    kind: str
    indices: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("batch", "scalar"):
            raise ValueError(f"unknown shard kind {self.kind!r}")

    @property
    def runs(self) -> int:
        return len(self.indices)


@dataclass(frozen=True, slots=True)
class ShardReport:
    """Observed outcome of one shard (timings for the job manifest).

    ``seconds`` is worker-measured wall time for ``kind="batch"``, and
    parent-side elapsed time (start of execution to last completion) for
    the aggregate ``kind="scalar"`` report.  ``payload_bytes`` is the
    struct-of-arrays transport volume (0 for scalar shards).  A batch
    shard that raised is reported with ``kind="fallback"``: its indices
    were re-routed to the scalar pool and ``error`` says why.
    ``telemetry`` is the slab's :class:`~repro.core.skip.BatchTelemetry`
    counters as a plain dict (batch shards only) — diagnostics, never
    part of the result payload.
    """

    shard_id: int
    kind: str
    runs: int
    seconds: float
    payload_bytes: int = 0
    error: Optional[str] = None
    telemetry: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "shard_id": self.shard_id,
            "kind": self.kind,
            "runs": self.runs,
            "seconds": self.seconds,
            "payload_bytes": self.payload_bytes,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry
        return out


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """The deterministic shard layout for one task sequence."""

    jobs: int
    shard_size: int
    requested_shard: Optional[int]
    shards: Tuple[ShardSpec, ...]

    @property
    def batch_shards(self) -> Tuple[ShardSpec, ...]:
        return tuple(s for s in self.shards if s.kind == "batch")

    @property
    def scalar_indices(self) -> Tuple[int, ...]:
        for s in self.shards:
            if s.kind == "scalar":
                return s.indices
        return ()

    @property
    def covered_runs(self) -> int:
        return sum(s.runs for s in self.batch_shards)

    def describe(self) -> str:
        """One-line human summary (the CLI's verbose shard-plan output)."""
        batch = self.batch_shards
        scalar = len(self.scalar_indices)
        origin = (
            f"--slab-shard {self.requested_shard}"
            if self.requested_shard is not None
            else "heuristic"
        )
        return (
            f"shard plan: {self.covered_runs} covered runs in {len(batch)} "
            f"batch shard(s) of <= {self.shard_size} runs ({origin}) + "
            f"{scalar} scalar fallback run(s) on jobs={self.jobs}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "shard_size": self.shard_size,
            "requested_shard": self.requested_shard,
            "batch_shards": len(self.batch_shards),
            "scalar_runs": len(self.scalar_indices),
            "covered_runs": self.covered_runs,
        }


def effective_shard_size(
    covered: int, jobs: int, slab_shard: Optional[int] = None
) -> int:
    """Target runs per batch shard (see the module heuristic notes)."""
    if slab_shard is not None:
        if slab_shard < 1:
            raise ValueError(f"slab_shard must be >= 1, got {slab_shard}")
        return min(slab_shard, SLAB_CAP)
    if jobs <= 1 or covered == 0:
        return SLAB_CAP
    target = math.ceil(covered / (jobs * OVERSUBSCRIBE))
    return max(MIN_SHARD, min(SLAB_CAP, target))


def plan_shards(
    tasks: Sequence[object],
    jobs: int = 1,
    slab_shard: Optional[int] = None,
) -> ShardPlan:
    """Partition ``tasks`` into batch shards plus a scalar-fallback shard.

    ``tasks`` is a sequence of :class:`~repro.perf.executor.RunTask`;
    coverage and slab membership come from :mod:`repro.core.batch`.  Batch
    shards are numbered in (slab, chunk) order; the scalar shard, when
    non-empty, always carries the next id after the last batch shard.
    """
    from repro.core.batch import coverage_gap, slab_key

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    #: slab key -> task indices, in task order (dict preserves insertion
    #: order, so slab composition is deterministic in the task sequence).
    slabs: Dict[Tuple[object, ...], List[int]] = {}
    scalar_indices: List[int] = []
    for i, task in enumerate(tasks):
        if coverage_gap(task.config, task.workload, task.plan) is None:  # type: ignore[attr-defined]
            key = slab_key(task.config, task.workload, task.plan)  # type: ignore[attr-defined]
            slabs.setdefault(key, []).append(i)
        else:
            scalar_indices.append(i)

    covered = sum(len(v) for v in slabs.values())  # sim-lint: ignore[SIM007]
    size = effective_shard_size(covered, jobs, slab_shard)
    shards: List[ShardSpec] = []
    # Slab order is immaterial: each run's result depends only on its own
    # (config, workload, plan) row and lands in its own results slot.
    for indices in slabs.values():  # sim-lint: ignore[SIM007]
        for lo in range(0, len(indices), size):
            shards.append(
                ShardSpec(
                    shard_id=len(shards),
                    kind="batch",
                    indices=tuple(indices[lo : lo + size]),
                )
            )
    if scalar_indices:
        shards.append(
            ShardSpec(
                shard_id=len(shards),
                kind="scalar",
                indices=tuple(scalar_indices),
            )
        )
    return ShardPlan(
        jobs=jobs,
        shard_size=size,
        requested_shard=slab_shard,
        shards=tuple(shards),
    )
