"""``python -m repro.perf`` — the tracked benchmark entry point.

Usage::

    python -m repro.perf bench [--quick] [--jobs N]
                               [--only kernel|engine|detailed|sweep|batch]
                               [--output DIR]

Writes ``BENCH_kernel.json`` / ``BENCH_engine.json`` /
``BENCH_detailed.json`` / ``BENCH_sweep.json`` / ``BENCH_batch.json``
into ``--output`` (default: the current directory, i.e. the repo root
when invoked from a checkout or via ``make bench``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.perf.bench import run_benchmarks


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="E-RAPID performance benchmarks",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    bench = sub.add_parser("bench", help="run the tracked benchmarks")
    bench.add_argument(
        "--quick",
        action="store_true",
        help="reduced workloads (CI smoke mode)",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="process-pool width for the sweep benchmark (default: 4)",
    )
    bench.add_argument(
        "--only",
        choices=("kernel", "engine", "detailed", "sweep", "batch", "all"),
        default="all",
        help="run a single benchmark family (default: all)",
    )
    bench.add_argument(
        "--output",
        type=Path,
        default=Path("."),
        help="directory for BENCH_*.json reports (default: cwd)",
    )
    args = parser.parse_args(argv)

    reports = run_benchmarks(
        args.output, quick=args.quick, jobs=args.jobs, which=args.only
    )
    if "kernel" in reports:
        k = reports["kernel"]
        print(
            "kernel: storm {:.0f} ev/s vs legacy {:.0f} ev/s ({:.2f}x); "
            "audit16 {:.0f} ev/s vs legacy {:.0f} ev/s ({:.2f}x)".format(
                k["storm"]["current"]["events_per_sec"],
                k["storm"]["legacy"]["events_per_sec"],
                k["storm"]["speedup"],
                k["audit16"]["current"]["events_per_sec"],
                k["audit16"]["legacy"]["events_per_sec"],
                k["audit16"]["speedup"],
            )
        )
        print(f"  -> {args.output / 'BENCH_kernel.json'}")
    if "engine" in reports:
        e = reports["engine"]
        bit = e["bit_identity"]
        print(
            "engine: audit16 {:.0f} pkt/s vs legacy {:.0f} pkt/s ({:.2f}x); "
            "storm {:.0f} pkt/s vs legacy {:.0f} pkt/s ({:.2f}x)".format(
                e["audit16"]["current"]["packets_per_sec"],
                e["audit16"]["legacy"]["packets_per_sec"],
                e["audit16"]["speedup"],
                e["storm"]["current"]["packets_per_sec"],
                e["storm"]["legacy"]["packets_per_sec"],
                e["storm"]["speedup"],
            )
        )
        print(
            "  bit-identity ({runs} runs, all fields except events): "
            "serial=={legacy} {a}, jobs={jobs}=={legacy} {b}".format(
                runs=bit["runs"],
                jobs=bit["jobs"],
                legacy="legacy",
                a="OK" if bit["serial_matches_legacy"] else "MISMATCH",
                b="OK" if bit["parallel_matches_legacy"] else "MISMATCH",
            )
        )
        print(f"  -> {args.output / 'BENCH_engine.json'}")
        if not (bit["serial_matches_legacy"] and bit["parallel_matches_legacy"]):
            print(
                "bench: engine bit-identity cross-check FAILED", file=sys.stderr
            )
            return 1
    if "detailed" in reports:
        d = reports["detailed"]
        bit = d["bit_identity"]
        print(
            "detailed: audit16 {:.0f} flit/s vs legacy {:.0f} flit/s "
            "({:.2f}x); storm {:.0f} flit/s vs legacy {:.0f} flit/s "
            "({:.2f}x)".format(
                d["audit16"]["current"]["flits_per_sec"],
                d["audit16"]["legacy"]["flits_per_sec"],
                d["audit16"]["speedup"],
                d["storm"]["current"]["flits_per_sec"],
                d["storm"]["legacy"]["flits_per_sec"],
                d["storm"]["speedup"],
            )
        )
        print(
            "  bit-identity ({runs} runs, all fields except events): "
            "clocked==legacy {a}".format(
                runs=bit["runs"],
                a="OK" if bit["clocked_matches_legacy"] else "MISMATCH",
            )
        )
        print(f"  -> {args.output / 'BENCH_detailed.json'}")
        if not bit["clocked_matches_legacy"]:
            print(
                "bench: detailed bit-identity cross-check FAILED",
                file=sys.stderr,
            )
            return 1
    if "sweep" in reports:
        s = reports["sweep"]
        det = s["determinism"]
        print(
            "sweep ({runs} runs): serial {serial:.2f}s, jobs={jobs} "
            "{par:.2f}s, cache cold {cold:.2f}s, warm {warm:.2f}s".format(
                runs=s["runs"],
                serial=s["serial_seconds"],
                jobs=s["jobs"],
                par=s["parallel_seconds"],
                cold=s["cache_cold_seconds"],
                warm=s["cache_warm_seconds"],
            )
        )
        print(
            "  determinism: parallel=={serial} {a}, cached=={serial} {b}".format(
                serial="serial",
                a="OK" if det["parallel_matches_serial"] else "MISMATCH",
                b="OK" if det["cached_matches_serial"] else "MISMATCH",
            )
        )
        print(f"  -> {args.output / 'BENCH_sweep.json'}")
        if not (det["parallel_matches_serial"] and det["cached_matches_serial"]):
            print("bench: determinism cross-check FAILED", file=sys.stderr)
            return 1
    if "batch" in reports:
        b = reports["batch"]
        equiv = b["equivalence"]
        bit = b["bit_identity"]
        print(
            "batch ({runs} runs, {covered} batch-covered): batch "
            "{brate:.1f} runs/s vs scalar jobs={jobs} {srate:.1f} runs/s "
            "({speedup:.2f}x)".format(
                runs=b["runs"],
                covered=b["covered_runs"],
                brate=b["batch_runs_per_sec"],
                jobs=b["jobs"],
                srate=b["scalar_runs_per_sec"],
                speedup=b["speedup"],
            )
        )
        print(
            "  equivalence: {a} ({n} failures); bit-identity "
            "({bruns} permutation runs): {c}".format(
                a="OK" if equiv["ok"] else "OUT OF TOLERANCE",
                n=len(equiv["failures"]),
                bruns=bit["runs"],
                c="OK" if bit["matches"] else "MISMATCH",
            )
        )
        sharded = b["sharded"]
        print(
            "  sharded: jobs={tj} {speed:.2f}x vs single-process batch "
            "(cpu_count={cores}); {n} layout variants fingerprint-identical: "
            "{ok}".format(
                tj=sharded["top_jobs"],
                speed=sharded["sharded_speedup"],
                cores=b["cpu_count"],
                n=len(sharded["variants"]),
                ok="OK" if sharded["jobs_identity"] else "MISMATCH",
            )
        )
        skip = b["skip"]
        ratios = ", ".join(
            "{:.2f}@{:.1f}".format(
                e["telemetry"].get("skip_ratio", 0.0), e["load"]
            )
            for e in skip["by_load"]
        )
        scaling = skip["load_scaling"]
        print(
            "  skip: low-load {low:.2f}x high-load rate ({lrate:.2f} vs "
            "{hrate:.2f} runs/s); skip ratio by load [{ratios}]; "
            "identity {ok}".format(
                low=scaling["low_vs_high"],
                lrate=scaling["low_runs_per_sec"],
                hrate=scaling["high_runs_per_sec"],
                ratios=ratios,
                ok=(
                    "OK"
                    if skip["identity"] and skip["grid_identity"]
                    else "MISMATCH"
                ),
            )
        )
        print(f"  -> {args.output / 'BENCH_batch.json'}")
        if not equiv["ok"]:
            print(
                "bench: batch statistical-equivalence gate FAILED",
                file=sys.stderr,
            )
            return 1
        if not bit["matches"]:
            print(
                "bench: batch bit-identity cross-check FAILED", file=sys.stderr
            )
            return 1
        if not sharded["jobs_identity"]:
            print(
                "bench: sharded jobs/slab_shard fingerprint-identity gate "
                "FAILED",
                file=sys.stderr,
            )
            return 1
        if not b["quick"] and b["speedup"] < 5:
            print(
                "bench: batch speedup {:.2f}x below the 5x gate".format(
                    b["speedup"]
                ),
                file=sys.stderr,
            )
            return 1
        # The multi-core bar is only measurable on a multi-core host;
        # cpu_count is recorded in the report so a single-core run is
        # honest rather than silently waved through.
        cores = b["cpu_count"] or 1
        if not b["quick"] and cores >= 2 and sharded["sharded_speedup"] < 2:
            print(
                "bench: sharded jobs={} speedup {:.2f}x below the 2x gate "
                "(cpu_count={})".format(
                    sharded["top_jobs"], sharded["sharded_speedup"], cores
                ),
                file=sys.stderr,
            )
            return 1
        # Time-skipping gates: bit-identity at every size, the skip
        # machinery visibly engaged on the load-0.1 slabs at every size,
        # and in full mode the low-load (<=0.3) subgrid running at >=2x
        # the batch rate of the high-load (>=0.7) subgrid on same-width
        # single-load slabs (cost scales with events, not cycles — the
        # pre-skip engine held this ratio at ~1 because every point paid
        # the fixed per-cycle cost out to the same horizon).
        if not (skip["identity"] and skip["grid_identity"]):
            print(
                "bench: time-skip fingerprint-identity gate FAILED",
                file=sys.stderr,
            )
            return 1
        if not skip["skip_engaged_low_load"]:
            print(
                "bench: skip machinery did not engage on the load-0.1 "
                "slabs (cycles_executed == horizon or cycles_skipped == 0)",
                file=sys.stderr,
            )
            return 1
        if not b["quick"] and scaling["low_vs_high"] < 2:
            print(
                "bench: low-load batch rate {:.2f}x high-load rate, below "
                "the 2x gate".format(scaling["low_vs_high"]),
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
