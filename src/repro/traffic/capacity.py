"""Network capacity analysis.

§4: "The network capacity was determined from the expression N_c
(packets/node/cycle), which is defined as the maximum sustainable
throughput when a network is loaded with uniform random traffic."  All load
sweeps in the paper inject at ``load × N_c(uniform)`` regardless of pattern
— which is exactly why adversarial permutations saturate early under the
static allocation (their hot channels see several times the uniform
per-channel load).

The model is a standard channel-load bound: the injection rate p
(packets/node/cycle) is feasible iff

* node injection:  p ≤ μ_elec                  (send-port serialization),
* node ejection:   p · colsum_j(M) ≤ μ_elec    (receive-port serialization),
* optical channel: p · T[s,d] ≤ k[s,d] · μ_opt for every board pair,

where M is the node-level destination matrix, T the board-pair traffic
matrix per unit p, μ the packet service rates, and k the number of
channels granted to the pair (1 under the static RWA; DBR raises it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.network.topology import ERapidTopology
from repro.traffic.patterns import TrafficPattern

__all__ = ["CapacityParams", "CapacityModel"]


@dataclass(frozen=True)
class CapacityParams:
    """Physical rates used by the capacity bound (Table 1 defaults)."""

    packet_bits: int = 512
    optical_gbps: float = 5.0
    electrical_gbps: float = 6.4
    clock_ghz: float = 0.4

    def __post_init__(self) -> None:
        if min(self.packet_bits, self.optical_gbps, self.electrical_gbps,
               self.clock_ghz) <= 0:
            raise ConfigurationError("capacity parameters must be positive")

    @property
    def mu_optical(self) -> float:
        """Optical channel service rate in packets/cycle (at the top level)."""
        return (self.optical_gbps / self.clock_ghz) / self.packet_bits

    @property
    def mu_electrical(self) -> float:
        """Node send/receive port service rate in packets/cycle."""
        return (self.electrical_gbps / self.clock_ghz) / self.packet_bits


class CapacityModel:
    """Channel-load capacity bound for one (topology, pattern) pair."""

    def __init__(
        self,
        topology: ERapidTopology,
        pattern: TrafficPattern,
        params: CapacityParams = CapacityParams(),
    ) -> None:
        if pattern.n_nodes != topology.total_nodes:
            raise ConfigurationError(
                f"pattern is for {pattern.n_nodes} nodes but topology has "
                f"{topology.total_nodes}"
            )
        self.topology = topology
        self.pattern = pattern
        self.params = params
        self._m = pattern.destination_matrix()

    # ------------------------------------------------------------------
    def board_matrix(self) -> np.ndarray:
        """T[s, d]: expected packets/cycle from board s to board d per unit p."""
        B, D = self.topology.boards, self.topology.nodes_per_board
        m = self._m.reshape(B, D, B, D)
        return m.sum(axis=(1, 3))

    def max_injection(self, channels: Optional[np.ndarray] = None) -> float:
        """Maximum sustainable p (packets/node/cycle).

        ``channels[s, d]`` = optical channels granted to the pair (defaults
        to the static RWA's single channel; the diagonal is ignored — local
        traffic never touches the SRS).
        """
        B = self.topology.boards
        if channels is None:
            channels = np.ones((B, B)) - np.eye(B)
        if channels.shape != (B, B):
            raise ConfigurationError(
                f"channels matrix must be {B}x{B}, got {channels.shape}"
            )
        bounds = [self.params.mu_electrical]  # injection serialization
        # Ejection: busiest receive port.
        col = self._m.sum(axis=0)
        worst_rx = float(col.max())
        if worst_rx > 0:
            bounds.append(self.params.mu_electrical / worst_rx)
        # Optical channels.
        T = self.board_matrix()
        for s in range(B):
            for d in range(B):
                if s == d or T[s, d] <= 0:
                    continue
                k = float(channels[s, d])
                if k <= 0:
                    raise ConfigurationError(
                        f"pattern sends board {s}->{d} but no channel is granted"
                    )
                bounds.append(k * self.params.mu_optical / float(T[s, d]))
        return min(bounds)

    # ------------------------------------------------------------------
    def saturation_fraction(self, uniform_capacity: float) -> float:
        """This pattern's static-allocation saturation point, as a fraction
        of the uniform capacity the sweeps normalize against."""
        if uniform_capacity <= 0:
            raise ConfigurationError("uniform capacity must be positive")
        return self.max_injection() / uniform_capacity

    @staticmethod
    def uniform_capacity(
        topology: ERapidTopology, params: CapacityParams = CapacityParams()
    ) -> float:
        """N_c: capacity under uniform random traffic (the sweep normalizer)."""
        from repro.traffic.patterns import UniformRandom

        return CapacityModel(
            topology, UniformRandom(topology.total_nodes), params
        ).max_injection()
