"""Synthetic traffic: §4.1 patterns, Bernoulli/Poisson/bursty injection,
the N_c capacity model and declarative workload specs."""

from repro.traffic.capacity import CapacityModel, CapacityParams
from repro.traffic.collectives import (
    AllToAllPersonalized,
    CyclingPattern,
    HaloExchange,
    HotspotPattern,
    RingAllreduce,
    hotspot,
)
from repro.traffic.injection import (
    BernoulliProcess,
    InjectionProcess,
    OnOffProcess,
    PoissonProcess,
    ProfiledBernoulliProcess,
    TrafficSource,
)
from repro.traffic.patterns import (
    PATTERNS,
    BitPermutation,
    TrafficPattern,
    UniformRandom,
    bit_reverse,
    butterfly,
    complement,
    make_pattern,
    neighbor,
    perfect_shuffle,
    tornado,
    transpose,
)
from repro.traffic.workload import WorkloadSpec

__all__ = [
    "AllToAllPersonalized",
    "BernoulliProcess",
    "BitPermutation",
    "CapacityModel",
    "CapacityParams",
    "CyclingPattern",
    "HaloExchange",
    "HotspotPattern",
    "InjectionProcess",
    "OnOffProcess",
    "PATTERNS",
    "PoissonProcess",
    "ProfiledBernoulliProcess",
    "RingAllreduce",
    "TrafficPattern",
    "TrafficSource",
    "UniformRandom",
    "WorkloadSpec",
    "bit_reverse",
    "butterfly",
    "complement",
    "hotspot",
    "make_pattern",
    "neighbor",
    "perfect_shuffle",
    "tornado",
    "transpose",
]
