"""HPC application communication patterns.

The paper's introduction motivates E-RAPID with inter-process communication
locality ("as spatial and temporal locality exists due to inter-process
communication patterns...").  This module models the steady-state traffic
of the classic MPI communication kernels as destination generators:

* :func:`hotspot` — a fraction of all traffic converges on one node
  (shared data structure / IO node);
* :class:`AllToAllPersonalized` — MPI_Alltoall: every node cycles
  deterministically over all other ranks (FFT transpose, sort exchange);
* :class:`RingAllreduce` — ring-based MPI_Allreduce: alternate
  sends to the successor and predecessor rank;
* :class:`HaloExchange` — stencil ghost-cell exchange on an
  (nx × ny) process grid: cycle over the 4 grid neighbours.

All are :class:`~repro.traffic.patterns.TrafficPattern` subclasses, so they
compose with every injection process, the capacity model and the engines.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.patterns import PATTERNS, TrafficPattern, UniformRandom

__all__ = [
    "CyclingPattern",
    "AllToAllPersonalized",
    "RingAllreduce",
    "HaloExchange",
    "HotspotPattern",
    "hotspot",
]


class CyclingPattern(TrafficPattern):
    """Deterministically cycles each source through a per-source dest list."""

    is_permutation = False

    def __init__(self, n_nodes: int, dest_lists: List[List[int]], name: str) -> None:
        super().__init__(n_nodes)
        if len(dest_lists) != n_nodes:
            raise ConfigurationError(
                f"need {n_nodes} destination lists, got {len(dest_lists)}"
            )
        for src, dests in enumerate(dest_lists):
            if not dests:
                raise ConfigurationError(f"node {src} has no destinations")
            for d in dests:
                if not 0 <= d < n_nodes or d == src:
                    raise ConfigurationError(
                        f"bad destination {d} for node {src}"
                    )
        self.name = name
        self._dest_lists = [list(d) for d in dest_lists]
        self._cursor = [0] * n_nodes

    def dest(self, src: int, rng: Optional[np.random.Generator] = None) -> int:
        self._check_src(src)
        dests = self._dest_lists[src]
        d = dests[self._cursor[src] % len(dests)]
        self._cursor[src] += 1
        return d

    def destination_matrix(self) -> np.ndarray:
        n = self.n_nodes
        m = np.zeros((n, n))
        for src, dests in enumerate(self._dest_lists):
            w = 1.0 / len(dests)
            for d in dests:
                m[src, d] += w
        return m


class AllToAllPersonalized(CyclingPattern):
    """MPI_Alltoall: rank i sends round r to rank (i + r) mod N, skipping
    itself — the standard linear-shift schedule."""

    def __init__(self, n_nodes: int) -> None:
        dest_lists = [
            [(i + r) % n_nodes for r in range(1, n_nodes)] for i in range(n_nodes)
        ]
        super().__init__(n_nodes, dest_lists, "all_to_all")


class RingAllreduce(CyclingPattern):
    """Ring allreduce: alternate successor/predecessor exchanges."""

    def __init__(self, n_nodes: int) -> None:
        dest_lists = [
            [(i + 1) % n_nodes, (i - 1) % n_nodes] for i in range(n_nodes)
        ]
        super().__init__(n_nodes, dest_lists, "ring_allreduce")


class HaloExchange(CyclingPattern):
    """2-D stencil ghost exchange on an (nx x ny) process grid with
    periodic boundaries; ranks are row-major."""

    def __init__(self, nx: int, ny: int) -> None:
        if nx < 2 or ny < 2:
            raise ConfigurationError(f"halo grid must be >= 2x2, got {nx}x{ny}")
        n = nx * ny
        dest_lists = []
        for i in range(n):
            x, y = i % nx, i // nx
            neighbours = [
                ((x + 1) % nx) + y * nx,
                ((x - 1) % nx) + y * nx,
                x + ((y + 1) % ny) * nx,
                x + ((y - 1) % ny) * nx,
            ]
            # De-duplicate (2-wide dimensions fold +1/-1 together) and drop
            # self-sends.
            uniq = []
            for d in neighbours:
                if d != i and d not in uniq:
                    uniq.append(d)
            dest_lists.append(uniq)
        super().__init__(n, dest_lists, "halo_exchange")
        self.nx = nx
        self.ny = ny


class HotspotPattern(TrafficPattern):
    """A fraction of traffic converges on one hot node; the rest is uniform.

    The classic shared-lock / IO-server skew (Pfister & Norton).
    """

    name = "hotspot"
    is_permutation = False

    def __init__(self, n_nodes: int, hot_node: int = 0, fraction: float = 0.2) -> None:
        super().__init__(n_nodes)
        if not 0 <= hot_node < n_nodes:
            raise ConfigurationError(f"hot node {hot_node} out of range")
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"hot fraction must be in [0,1], got {fraction}")
        self.hot_node = hot_node
        self.fraction = fraction
        self._uniform = UniformRandom(n_nodes)

    def dest(self, src: int, rng: Optional[np.random.Generator] = None) -> int:
        self._check_src(src)
        if rng is None:
            raise ConfigurationError("hotspot traffic needs an RNG stream")
        if src != self.hot_node and rng.random() < self.fraction:
            return self.hot_node
        return self._uniform.dest(src, rng)

    def destination_matrix(self) -> np.ndarray:
        n = self.n_nodes
        m = self._uniform.destination_matrix() * (1.0 - self.fraction)
        m[:, self.hot_node] += self.fraction
        m[self.hot_node, :] = self._uniform.destination_matrix()[self.hot_node, :]
        np.fill_diagonal(m, 0.0)
        # Renormalize rows to 1 (hot node keeps pure uniform behaviour).
        m /= m.sum(axis=1, keepdims=True)
        return m


def hotspot(n_nodes: int) -> HotspotPattern:
    """Registry factory: 20 % of traffic to node 0."""
    return HotspotPattern(n_nodes, hot_node=0, fraction=0.2)


# Register the parameter-free patterns so WorkloadSpec can name them.
PATTERNS.setdefault("hotspot", hotspot)
PATTERNS.setdefault("all_to_all", AllToAllPersonalized)
PATTERNS.setdefault("ring_allreduce", RingAllreduce)
