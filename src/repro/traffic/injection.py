"""Packet injection processes.

§4: "Packets were injected according to Bernoulli process based on the
network load".  A Bernoulli(p) per-cycle coin is sampled directly as
geometric inter-arrival gaps (O(1) per packet).  Poisson and two-state
bursty (on/off Markov-modulated) processes are provided for the extension
benches — locality/burstiness is exactly what history-based reconfiguration
exploits.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.network.packet import Packet, PacketFactory
from repro.sim.rng import RngRegistry, geometric_gap, geometric_gap_array
from repro.traffic.patterns import TrafficPattern

__all__ = [
    "InjectionProcess",
    "BernoulliProcess",
    "PoissonProcess",
    "OnOffProcess",
    "ProfiledBernoulliProcess",
    "TrafficSource",
]


class InjectionProcess:
    """Samples inter-arrival gaps (cycles, >= 1) at mean rate ``rate``."""

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ConfigurationError(f"injection rate must be >= 0, got {rate}")
        self.rate = rate

    def next_gap(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def gap_batch(
        self, rng: np.random.Generator, n: int
    ) -> Optional[List[Union[int, float]]]:
        """``n`` gaps in one vectorized draw, or ``None`` if unsupported.

        The contract is *bit-identity*: ``gap_batch(rng, n)`` must consume
        the stream exactly as ``n`` successive :meth:`next_gap` calls and
        return the same values as plain Python numbers (numpy scalars
        would poison repr-based fingerprints downstream).  Processes whose
        sampling is stateful or clock-dependent return ``None`` and stay
        on the scalar path.
        """
        return None


class BernoulliProcess(InjectionProcess):
    """One packet with probability ``rate`` per cycle (the paper's process)."""

    def next_gap(self, rng: np.random.Generator) -> float:
        return geometric_gap(rng, self.rate)

    def gap_batch(
        self, rng: np.random.Generator, n: int
    ) -> Optional[List[Union[int, float]]]:
        # geometric_gap's degenerate rates never touch the rng, so only
        # the open interval is batchable stream-identically.
        if not 0.0 < self.rate < 1.0:
            return None
        return geometric_gap_array(rng, self.rate, n).tolist()


class PoissonProcess(InjectionProcess):
    """Exponential inter-arrivals with mean ``1/rate`` cycles."""

    def next_gap(self, rng: np.random.Generator) -> float:
        if self.rate <= 0:
            return float(1 << 30)
        return max(1.0, float(rng.exponential(1.0 / self.rate)))

    def gap_batch(
        self, rng: np.random.Generator, n: int
    ) -> Optional[List[Union[int, float]]]:
        if self.rate <= 0:
            return None
        scale = 1.0 / self.rate
        return np.maximum(1.0, rng.exponential(scale, size=n)).tolist()


class OnOffProcess(InjectionProcess):
    """Two-state Markov-modulated Bernoulli process (bursty traffic).

    In the ON state packets are injected at ``rate * burstiness`` and the
    state persists with mean length ``mean_burst`` packets; OFF periods are
    sized so the long-run average rate equals ``rate``.
    """

    def __init__(self, rate: float, burstiness: float = 4.0, mean_burst: float = 8.0) -> None:
        super().__init__(rate)
        if burstiness < 1.0:
            raise ConfigurationError(f"burstiness must be >= 1, got {burstiness}")
        if mean_burst < 1.0:
            raise ConfigurationError(f"mean_burst must be >= 1, got {mean_burst}")
        self.burstiness = burstiness
        self.mean_burst = mean_burst
        self._in_burst_left = 0.0

    def next_gap(self, rng: np.random.Generator) -> float:
        if self.rate <= 0:
            return float(1 << 30)
        on_rate = min(1.0, self.rate * self.burstiness)
        if self._in_burst_left <= 0:
            # Entering a new burst after an OFF gap that restores the mean.
            self._in_burst_left = float(rng.geometric(1.0 / self.mean_burst))
            mean_cycle_len = self.mean_burst / self.rate
            mean_on_len = self.mean_burst / on_rate
            off_len = max(0.0, mean_cycle_len - mean_on_len)
            off_gap = float(rng.exponential(off_len)) if off_len > 0 else 0.0
        else:
            off_gap = 0.0
        self._in_burst_left -= 1
        return max(1.0, off_gap + geometric_gap(rng, on_rate))


class ProfiledBernoulliProcess(InjectionProcess):
    """Bernoulli injection whose rate follows a piecewise-constant profile.

    Drives the Figure 3 design-space experiment (traffic that ramps low ->
    high -> low so power level and utilization visibly track it).  The
    profile is ``[(start_time, rate), ...]`` sorted by start time; the rate
    in force at the *current simulation time* is used for each gap, so the
    engine must call :meth:`bind_clock` before the run starts.
    """

    def __init__(self, profile: list) -> None:
        if not profile:
            raise ConfigurationError("profile needs at least one (time, rate) pair")
        times = [t for t, _ in profile]
        if times != sorted(times):
            raise ConfigurationError(f"profile times must ascend, got {times}")
        for _, rate in profile:
            if rate < 0:
                raise ConfigurationError(f"profile rate must be >= 0, got {rate}")
        super().__init__(rate=profile[0][1])
        self.profile = list(profile)
        self._clock = None

    def bind_clock(self, clock) -> None:
        """Install a zero-argument callable returning the current time."""
        self._clock = clock

    def rate_at(self, now: float) -> float:
        rate = self.profile[0][1]
        for t, r in self.profile:
            if now >= t:
                rate = r
            else:
                break
        return rate

    def next_gap(self, rng: np.random.Generator) -> float:
        if self._clock is None:
            raise ConfigurationError(
                "ProfiledBernoulliProcess used before bind_clock() was called"
            )
        rate = self.rate_at(float(self._clock()))
        if rate <= 0.0:
            # Re-check for a live profile segment every 100 cycles.
            return 100.0
        return geometric_gap(rng, rate)


#: Gaps drawn per vectorized refill of a source's gap buffer.
GAP_CHUNK = 256


class TrafficSource:
    """Per-node packet generator: injection process + pattern + factory."""

    def __init__(
        self,
        node: int,
        pattern: TrafficPattern,
        process: InjectionProcess,
        factory: Optional[PacketFactory] = None,
        rng: Optional[np.random.Generator] = None,
        gap_chunk: int = GAP_CHUNK,
    ) -> None:
        if not 0 <= node < pattern.n_nodes:
            raise ConfigurationError(
                f"node {node} out of range for {pattern.n_nodes}-node pattern"
            )
        if gap_chunk < 1:
            raise ConfigurationError(
                f"gap_chunk must be >= 1, got {gap_chunk}"
            )
        self.node = node
        self.pattern = pattern
        self.process = process
        self.factory = factory or PacketFactory()
        # Fallback stream for ad-hoc construction (tests, examples); real
        # workloads pass a stream from their own seeded registry.
        self.rng = (
            rng
            if rng is not None
            else RngRegistry(seed=0).stream(f"source.{node}")
        )
        self.generated = 0
        # Batched gap draws are stream-identical to scalar draws only when
        # nothing else consumes this source's stream between gaps — i.e.
        # when the pattern's dest() is a fixed permutation.  Uniform
        # traffic interleaves dest draws with gap draws and must stay
        # scalar.
        self._gap_buffer: List[Union[int, float]] = []
        self._gap_pos = 0
        self._batchable = pattern.is_permutation
        # Chunk size of each vectorized refill.  Any value yields the same
        # stream (numpy fills arrays element by element), so the batch
        # engine can align its draws with the scalar path at whatever
        # chunking its slab geometry prefers.
        self.gap_chunk = int(gap_chunk)

    def next_gap(self) -> float:
        """Cycles until this node's next injection."""
        pos = self._gap_pos
        buf = self._gap_buffer
        if pos < len(buf):
            self._gap_pos = pos + 1
            return buf[pos]
        if self._batchable:
            batch = self.process.gap_batch(self.rng, self.gap_chunk)
            if batch is not None:
                self._gap_buffer = batch
                self._gap_pos = 1
                return batch[0]
            # The process can't batch (degenerate rate / stateful); don't
            # re-try on every gap.
            self._batchable = False
        return self.process.next_gap(self.rng)

    def next_packet(self, now: float, labeled: bool = False) -> Packet:
        """Create the packet injected at ``now``."""
        dst = self.pattern.dest(self.node, self.rng)
        self.generated += 1
        return self.factory.make(src=self.node, dst=dst, now=now, labeled=labeled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TrafficSource node={self.node} {self.pattern.name}>"
