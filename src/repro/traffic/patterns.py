"""Synthetic traffic patterns.

§4.1 evaluates uniform plus three adversarial *bit-permutation* patterns on
64 nodes (n = 6 address bits):

* **uniform** — every other node equally likely;
* **butterfly** — ``a_{n-1} .. a_1 a_0`` -> ``a_0 a_{n-2} .. a_1 a_{n-1}``
  (swap MSB and LSB);
* **complement** — ``a_i`` -> ``NOT a_i`` for all bits;
* **perfect shuffle** — ``a_{n-1} .. a_0`` -> ``a_{n-2} .. a_0 a_{n-1}``
  (rotate left by one).

The standard extended set from Dally & Towles (bit reverse, transpose,
tornado, neighbor) is included for the extension benches.  Permutation
patterns require a power-of-two node count; ring patterns (tornado,
neighbor) work for any size.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "TrafficPattern",
    "UniformRandom",
    "BitPermutation",
    "butterfly",
    "complement",
    "perfect_shuffle",
    "bit_reverse",
    "transpose",
    "tornado",
    "neighbor",
    "PATTERNS",
    "make_pattern",
]


def _require_power_of_two(n: int, pattern: str) -> int:
    if n < 2 or n & (n - 1):
        raise ConfigurationError(
            f"{pattern} traffic needs a power-of-two node count, got {n}"
        )
    return n.bit_length() - 1


class TrafficPattern:
    """Destination selector for a system of ``n_nodes`` nodes."""

    #: Human-readable name (also the registry key).
    name: str = "abstract"
    #: Whether dest(src) is a fixed permutation (no randomness).
    is_permutation: bool = False

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 2:
            raise ConfigurationError(f"need >= 2 nodes, got {n_nodes}")
        self.n_nodes = n_nodes

    def dest(self, src: int, rng: Optional[np.random.Generator] = None) -> int:
        """Destination for a packet injected at ``src``."""
        raise NotImplementedError

    def destination_matrix(self) -> np.ndarray:
        """``M[s, d]`` = probability a packet from s goes to d."""
        raise NotImplementedError

    def _check_src(self, src: int) -> None:
        if not 0 <= src < self.n_nodes:
            raise ConfigurationError(
                f"src {src} out of range [0,{self.n_nodes})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} N={self.n_nodes}>"


class UniformRandom(TrafficPattern):
    """Every node sends to every *other* node with equal probability."""

    name = "uniform"
    is_permutation = False

    def dest(self, src: int, rng: Optional[np.random.Generator] = None) -> int:
        self._check_src(src)
        if rng is None:
            raise ConfigurationError("uniform traffic needs an RNG stream")
        d = int(rng.integers(0, self.n_nodes - 1))
        return d if d < src else d + 1  # skip self without rejection sampling

    def destination_matrix(self) -> np.ndarray:
        n = self.n_nodes
        m = np.full((n, n), 1.0 / (n - 1))
        np.fill_diagonal(m, 0.0)
        return m


class BitPermutation(TrafficPattern):
    """A deterministic pattern defined by a function on node ids."""

    is_permutation = True

    def __init__(self, n_nodes: int, fn: Callable[[int, int], int], name: str) -> None:
        super().__init__(n_nodes)
        self.name = name
        self._map: List[int] = []
        bits = _require_power_of_two(n_nodes, name) if name not in (
            "tornado",
            "neighbor",
        ) else 0
        for src in range(n_nodes):
            d = fn(src, bits) % n_nodes
            self._map.append(d)

    def dest(self, src: int, rng: Optional[np.random.Generator] = None) -> int:
        self._check_src(src)
        return self._map[src]

    def destination_matrix(self) -> np.ndarray:
        n = self.n_nodes
        m = np.zeros((n, n))
        for s, d in enumerate(self._map):
            m[s, d] = 1.0
        return m

    @property
    def mapping(self) -> List[int]:
        return list(self._map)


# ----------------------------------------------------------------------
# The paper's §4.1 patterns
# ----------------------------------------------------------------------

def butterfly(n_nodes: int) -> BitPermutation:
    """Swap the most- and least-significant address bits."""

    def fn(a: int, bits: int) -> int:
        msb = (a >> (bits - 1)) & 1
        lsb = a & 1
        out = a & ~(1 | (1 << (bits - 1)))
        out |= lsb << (bits - 1)
        out |= msb
        return out

    return BitPermutation(n_nodes, fn, "butterfly")


def complement(n_nodes: int) -> BitPermutation:
    """Flip every address bit (a -> N-1-a)."""

    def fn(a: int, bits: int) -> int:
        return (~a) & (n_nodes - 1)

    return BitPermutation(n_nodes, fn, "complement")


def perfect_shuffle(n_nodes: int) -> BitPermutation:
    """Rotate the address left by one bit."""

    def fn(a: int, bits: int) -> int:
        msb = (a >> (bits - 1)) & 1
        return ((a << 1) | msb) & (n_nodes - 1)

    return BitPermutation(n_nodes, fn, "perfect_shuffle")


# ----------------------------------------------------------------------
# Extended set (Dally & Towles) for the extension benches
# ----------------------------------------------------------------------

def bit_reverse(n_nodes: int) -> BitPermutation:
    """Reverse the address bits."""

    def fn(a: int, bits: int) -> int:
        out = 0
        for i in range(bits):
            out |= ((a >> i) & 1) << (bits - 1 - i)
        return out

    return BitPermutation(n_nodes, fn, "bit_reverse")


def transpose(n_nodes: int) -> BitPermutation:
    """Swap the upper and lower halves of the address bits."""

    def fn(a: int, bits: int) -> int:
        if bits % 2:
            raise ConfigurationError(
                f"transpose needs an even number of address bits, got {bits}"
            )
        half = bits // 2
        lo = a & ((1 << half) - 1)
        hi = a >> half
        return (lo << half) | hi

    return BitPermutation(n_nodes, fn, "transpose")


def tornado(n_nodes: int) -> BitPermutation:
    """Send almost half-way around the ring of nodes."""

    def fn(a: int, bits: int) -> int:
        return (a + (n_nodes // 2) - 1) % n_nodes

    return BitPermutation(n_nodes, fn, "tornado")


def neighbor(n_nodes: int) -> BitPermutation:
    """Send to the next node (benign, mostly local for board-major ids)."""

    def fn(a: int, bits: int) -> int:
        return (a + 1) % n_nodes

    return BitPermutation(n_nodes, fn, "neighbor")


#: Registry: name -> factory.
PATTERNS: Dict[str, Callable[[int], TrafficPattern]] = {
    "uniform": UniformRandom,
    "butterfly": butterfly,
    "complement": complement,
    "perfect_shuffle": perfect_shuffle,
    "bit_reverse": bit_reverse,
    "transpose": transpose,
    "tornado": tornado,
    "neighbor": neighbor,
}


def make_pattern(name: str, n_nodes: int) -> TrafficPattern:
    """Instantiate a registered pattern by name."""
    try:
        factory = PATTERNS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown traffic pattern {name!r}; known: {sorted(PATTERNS)}"
        ) from None
    return factory(n_nodes)
