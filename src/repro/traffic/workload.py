"""Workload specifications.

A :class:`WorkloadSpec` is the declarative description of one simulation
run's offered traffic: pattern, load (as a fraction of the uniform-random
network capacity N_c, per §4), packet sizing, injection process and seed.
``build_sources`` resolves it into per-node :class:`TrafficSource` objects
with independent RNG streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError
from repro.network.packet import PacketFactory
from repro.network.topology import ERapidTopology
from repro.sim.rng import RngRegistry
from repro.traffic.capacity import CapacityModel, CapacityParams
from repro.traffic.injection import (
    BernoulliProcess,
    InjectionProcess,
    OnOffProcess,
    PoissonProcess,
    TrafficSource,
)
from repro.traffic.patterns import TrafficPattern, make_pattern

__all__ = ["WorkloadSpec"]

_PROCESSES = {
    "bernoulli": BernoulliProcess,
    "poisson": PoissonProcess,
    "onoff": OnOffProcess,
}


@dataclass
class WorkloadSpec:
    """Declarative description of offered traffic for one run."""

    pattern: str = "uniform"
    #: Offered load as a fraction of N_c(uniform); §4 sweeps 0.1–0.9.
    load: float = 0.5
    packet_bytes: int = 64
    flit_bytes: int = 8
    process: str = "bernoulli"
    seed: int = 1

    def __post_init__(self) -> None:
        if self.load < 0:
            raise ConfigurationError(f"load must be >= 0, got {self.load}")
        if self.process not in _PROCESSES:
            raise ConfigurationError(
                f"unknown injection process {self.process!r}; "
                f"known: {sorted(_PROCESSES)}"
            )

    # ------------------------------------------------------------------
    def resolve_pattern(self, topology: ERapidTopology) -> TrafficPattern:
        return make_pattern(self.pattern, topology.total_nodes)

    def injection_rate(
        self, topology: ERapidTopology, params: CapacityParams = CapacityParams()
    ) -> float:
        """Absolute per-node injection rate: load × N_c(uniform)."""
        return self.load * CapacityModel.uniform_capacity(topology, params)

    def build_sources(
        self,
        topology: ERapidTopology,
        params: CapacityParams = CapacityParams(),
    ) -> List[TrafficSource]:
        """One :class:`TrafficSource` per node, independently seeded."""
        pattern = self.resolve_pattern(topology)
        rate = self.injection_rate(topology, params)
        factory = PacketFactory(self.packet_bytes, self.flit_bytes)
        registry = RngRegistry(seed=self.seed)
        sources = []
        for node in range(topology.total_nodes):
            process: InjectionProcess = _PROCESSES[self.process](rate)
            sources.append(
                TrafficSource(
                    node,
                    pattern,
                    process,
                    factory=factory,
                    rng=registry.stream(f"inject.{node}"),
                )
            )
        return sources

    def describe(self) -> str:
        return (
            f"{self.pattern} @ {self.load:.2f} N_c, {self.packet_bytes}B "
            f"packets, {self.process} injection, seed {self.seed}"
        )
