"""E-RAPID: a power-aware, bandwidth-reconfigurable optical interconnect
simulator.

A from-scratch reproduction of *Power-Aware Bandwidth-Reconfigurable
Optical Interconnects for High-Performance Computing (HPC) Systems*
(Kodi & Louri, IPPS 2007): the E-RAPID architecture, the Lock-Step (LS)
reconfiguration protocol combining Dynamic Power Management (DPM) with
Dynamic Bandwidth Re-allocation (DBR), and everything they stand on —
a discrete-event kernel, a flit-level VC router, the WDM optical plane,
opto-electronic power models, synthetic traffic and the measurement
harness.

Quickstart::

    from repro import ERapidSystem, WorkloadSpec

    system = ERapidSystem.build(boards=8, nodes_per_board=8, policy="P-B")
    result = system.run(WorkloadSpec(pattern="complement", load=0.5))
    print(result.summary())
"""

from repro.core import (
    ERapidConfig,
    ERapidSystem,
    FastEngine,
    NP_B,
    NP_NB,
    P_B,
    P_NB,
    POLICIES,
    ReconfigPolicy,
    Thresholds,
    make_policy,
)
from repro.core.detailed import DetailedEngine
from repro.metrics import MeasurementPlan, RunResult
from repro.network.topology import ERapidTopology
from repro.optics import StaticRWA, SuperHighway
from repro.power import PowerLevel, PowerLevelTable, TABLE1_LEVELS
from repro.sim import Simulator
from repro.traffic import CapacityModel, WorkloadSpec, make_pattern

__version__ = "1.0.0"

__all__ = [
    "CapacityModel",
    "DetailedEngine",
    "ERapidConfig",
    "ERapidSystem",
    "ERapidTopology",
    "FastEngine",
    "MeasurementPlan",
    "NP_B",
    "NP_NB",
    "P_B",
    "P_NB",
    "POLICIES",
    "PowerLevel",
    "PowerLevelTable",
    "ReconfigPolicy",
    "RunResult",
    "Simulator",
    "StaticRWA",
    "SuperHighway",
    "TABLE1_LEVELS",
    "Thresholds",
    "WorkloadSpec",
    "__version__",
    "make_pattern",
    "make_policy",
]
