"""E-RAPID: a power-aware, bandwidth-reconfigurable optical interconnect
simulator.

A from-scratch reproduction of *Power-Aware Bandwidth-Reconfigurable
Optical Interconnects for High-Performance Computing (HPC) Systems*
(Kodi & Louri, IPPS 2007): the E-RAPID architecture, the Lock-Step (LS)
reconfiguration protocol combining Dynamic Power Management (DPM) with
Dynamic Bandwidth Re-allocation (DBR), and everything they stand on —
a discrete-event kernel, a flit-level VC router, the WDM optical plane,
opto-electronic power models, synthetic traffic and the measurement
harness.

Quickstart::

    from repro import ERapidSystem, WorkloadSpec

    system = ERapidSystem.build(boards=8, nodes_per_board=8, policy="P-B")
    result = system.run(WorkloadSpec(pattern="complement", load=0.5))
    print(result.summary())

The package namespace is lazy (PEP 562): ``import repro`` touches no
submodule — and in particular stays numpy-free — until an attribute is
actually used.  This keeps CLI startup and scalar-only embedders from
paying for the vectorized batch tier's numpy import.
"""

from importlib import import_module
from typing import Any, List

__version__ = "1.0.0"

#: Public attribute -> submodule that defines it.  Resolution happens on
#: first access via :func:`__getattr__` below.
_EXPORTS = {
    "CapacityModel": "repro.traffic",
    "DetailedEngine": "repro.core.detailed",
    "ERapidConfig": "repro.core",
    "ERapidSystem": "repro.core",
    "ERapidTopology": "repro.network.topology",
    "FastEngine": "repro.core",
    "MeasurementPlan": "repro.metrics",
    "NP_B": "repro.core",
    "NP_NB": "repro.core",
    "P_B": "repro.core",
    "P_NB": "repro.core",
    "POLICIES": "repro.core",
    "PowerLevel": "repro.power",
    "PowerLevelTable": "repro.power",
    "ReconfigPolicy": "repro.core",
    "RunResult": "repro.metrics",
    "Simulator": "repro.sim",
    "StaticRWA": "repro.optics",
    "SuperHighway": "repro.optics",
    "TABLE1_LEVELS": "repro.power",
    "Thresholds": "repro.core",
    "WorkloadSpec": "repro.traffic",
    "make_pattern": "repro.traffic",
    "make_policy": "repro.core",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(module_name), name)
    # Cache on the package so later accesses skip this hook.
    globals()[name] = value
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
