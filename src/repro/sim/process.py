"""Generator-based simulation processes.

A *process* is a Python generator driven by the kernel.  At every ``yield``
the process hands the kernel a :class:`~repro.sim.events.Waitable`; the
process resumes — receiving the waitable's value as the result of the
``yield`` expression — when that waitable fires::

    def node(sim, queue):
        while True:
            packet = yield queue.get()      # blocks until an item arrives
            yield sim.timeout(packet.size)  # hold for the service time

Processes are themselves waitables: they fire with the generator's return
value, so one process can ``yield`` another to join it.  A process may be
interrupted with :meth:`Process.interrupt`, which raises :class:`Interrupt`
inside the generator at the current simulation time.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.errors import ProcessError
from repro.sim.events import Waitable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Raised inside a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Waitable):
    """A running generator; fires (as a waitable) when the generator returns."""

    __slots__ = ("generator", "name", "_waiting_on", "_alive")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Any, Any, None],
        name: str = "",
    ) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise ProcessError(
                f"Process needs a generator, got {type(generator).__name__} "
                "(did you forget to call the generator function?)"
            )
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Waitable] = None
        self._alive = True
        # Start the process at the current time, after already-queued events.
        sim.schedule_fast(0.0, self._resume, None, None)

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting detaches it from the waitable it was blocked on (the
        waitable may still fire later — the process simply no longer cares).
        """
        if not self._alive:
            raise ProcessError(f"cannot interrupt finished process {self.name!r}")
        self.sim.schedule(0.0, self._resume, None, Interrupt(cause))

    # ------------------------------------------------------------------
    def _on_wait_fired(self, waitable: Waitable) -> None:
        if self._waiting_on is not waitable:
            # Stale wake-up: the process was interrupted while blocked and has
            # since moved on.  Ignore.
            return
        self._waiting_on = None
        self._step(waitable.value, None)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self._alive:
            return
        if exc is not None:
            # Interrupt delivery cancels any pending wait.
            self._waiting_on = None
        self._step(value, exc)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self._alive = False
            self.trigger(stop.value)
            return
        except Interrupt:
            # Generator chose not to handle the interrupt: treat as death.
            self._alive = False
            self.trigger(None)
            return
        if not isinstance(target, Waitable):
            self._alive = False
            err = ProcessError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Waitable objects (timeout/get/put/event/...)"
            )
            self.generator.close()
            raise err
        self._waiting_on = target
        target.wait(self._on_wait_fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "finished"
        return f"<Process {self.name!r} {state}>"
