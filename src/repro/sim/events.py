"""Event primitives for the discrete-event kernel.

The kernel (:mod:`repro.sim.kernel`) executes *events*: callbacks bound to a
simulation time.  Higher-level synchronization is built from
:class:`Waitable` — a one-shot occurrence that processes can wait on and that
carries a value once triggered (the moral equivalent of YACSIM's semaphores
and SimPy's events).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

__all__ = ["ScheduledEvent", "Waitable", "Timeout", "CompositeWait"]

#: Monotonic tiebreaker so same-time events fire in scheduling order.
_seq = itertools.count()


class ScheduledEvent:
    """A cancellation handle for a callback on the kernel's event heap.

    Instances are created by :meth:`repro.sim.kernel.Simulator.schedule`.
    The kernel's heap itself stores plain ``(time, priority, seq, handle,
    fn, args)`` tuples (native tuple comparison, no ``__lt__`` dispatch);
    the handle rides along so :meth:`cancel` can mark the entry dead.  The
    total order is ``(time, priority, seq)``: earlier time first, then
    lower priority number, then FIFO.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        fn: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = 0,
        seq: Optional[int] = None,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = next(_seq) if seq is None else seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped.

        The owning kernel counts pending cancellations and compacts its
        heap once dead entries exceed a fraction of it, so cancel-heavy
        models don't degrade pop cost for the rest of the run.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._on_cancel()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time} fn={getattr(self.fn, '__name__', self.fn)!r} {state}>"


class Waitable:
    """A one-shot occurrence processes can wait on.

    A waitable starts *pending*; :meth:`trigger` fires it exactly once with an
    optional value, after which all registered callbacks run at the current
    simulation time.  Callbacks registered after triggering run immediately
    (still via the event heap, preserving determinism).
    """

    __slots__ = ("sim", "callbacks", "_triggered", "value")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Waitable"], None]]] = []
        self._triggered = False
        self.value: Any = None

    @property
    def triggered(self) -> bool:
        """Whether :meth:`trigger` has been called."""
        return self._triggered

    def wait(self, callback: Callable[["Waitable"], None]) -> None:
        """Register ``callback(self)`` to run when the waitable fires."""
        if self._triggered:
            # Fire on the heap at `now` so ordering stays deterministic.
            self.sim.schedule_fast(0.0, callback, self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(callback)

    def trigger(self, value: Any = None) -> "Waitable":
        """Fire the waitable, delivering ``value`` to every waiter."""
        if self._triggered:
            raise SimulationError(f"{self!r} triggered twice")
        self._triggered = True
        self.value = value
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        schedule_fast = self.sim.schedule_fast
        for cb in callbacks:
            schedule_fast(0.0, cb, self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"triggered value={self.value!r}" if self._triggered else "pending"
        return f"<{type(self).__name__} {state}>"


class Timeout(Waitable):
    """A waitable that fires automatically ``delay`` time units after creation.

    ``yield sim.timeout(d)`` is the canonical way for a process to hold.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        sim.schedule_fast(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.trigger(value)


class CompositeWait(Waitable):
    """Fires when ``any`` (default) or ``all`` of several waitables fire.

    The delivered value is a list of the values of the waitables that have
    fired so far, in their firing order.
    """

    __slots__ = ("_children", "_need", "_values")

    def __init__(self, sim: "Simulator", children: List[Waitable], mode: str = "any") -> None:
        super().__init__(sim)
        if mode not in ("any", "all"):
            raise SimulationError(f"CompositeWait mode must be 'any' or 'all', got {mode!r}")
        if not children:
            raise SimulationError("CompositeWait needs at least one child")
        self._children = list(children)
        self._need = 1 if mode == "any" else len(children)
        self._values: List[Any] = []
        for child in self._children:
            child.wait(self._on_child)

    def _on_child(self, child: Waitable) -> None:
        if self._triggered:
            return
        self._values.append(child.value)
        if len(self._values) >= self._need:
            self.trigger(list(self._values))
