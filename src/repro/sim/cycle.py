"""Cycle-synchronous driver riding on the event kernel.

Booksim-style flit-level models spend their time in a synchronous clock
loop over flat component arrays, not in per-component heap events.  This
module provides that loop as a *guest* of the discrete-event kernel, so a
clocked subsystem (the detailed engine's routers, NIs and channels) can
coexist with coarse event-driven processes (injection draws, optical
serialization, DPM windows) on one shared clock:

:class:`CycleDriver`
    Schedules at most one *tick* per requested time through the kernel's
    priority-1 continuation class (:meth:`Simulator.schedule_late`), so a
    tick at time ``t`` always runs **after** every priority-0 event at
    ``t`` — packet hand-offs, fiber relays and DPM decisions scheduled for
    a cycle are visible to that cycle's tick, exactly as they were visible
    to the per-component processes (which resumed one waitable-trigger
    wave after those events).  When nothing arms the driver, no tick is
    scheduled: a quiescent system costs zero heap events per cycle.

:class:`DueQueue`
    A monotone FIFO of ``(due_time, item)`` entries — the batched
    replacement for per-flit delivery and per-credit kernel events.  All
    producers push with non-decreasing due times (each tick pushes at
    ``now + constant``), so readiness is a single front comparison.

Determinism: ticks fire in time order; within a tick the *caller* iterates
components in a fixed structural order.  Arming the same time twice is
coalesced, so tick times never race on insertion order.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Generic, Optional, Tuple, TypeVar, TYPE_CHECKING

from repro.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

__all__ = ["CycleDriver", "DueQueue"]

_T = TypeVar("_T")


class DueQueue(Generic[_T]):
    """Monotone FIFO of items that become due at known times.

    Producers must push in non-decreasing ``due`` order (enforced), which
    holds by construction for clocked pipelines: every push made while the
    clock reads ``now`` is due at ``now + k`` for a per-queue constant
    ``k`` (wire latency, credit latency), and ticks execute in time order.
    """

    __slots__ = ("_entries", "_last_due")

    def __init__(self) -> None:
        self._entries: Deque[Tuple[float, _T]] = deque()
        self._last_due = float("-inf")

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, due: float, item: _T) -> None:
        """Append ``item`` with the given ``due`` time (non-decreasing)."""
        if due < self._last_due:
            raise SchedulingError(
                f"DueQueue push at {due} after {self._last_due}; "
                "producers must push in non-decreasing due order"
            )
        self._last_due = due
        self._entries.append((due, item))

    def pop_if_due(self, now: float) -> Optional[_T]:
        """The oldest item with ``due <= now``, or ``None``."""
        entries = self._entries
        if entries and entries[0][0] <= now:
            return entries.popleft()[1]
        return None

    def next_due(self) -> Optional[float]:
        """Due time of the oldest entry, or ``None`` when empty."""
        entries = self._entries
        return entries[0][0] if entries else None


class CycleDriver:
    """Fires ``tick(time)`` at armed times, after same-time kernel events.

    The driver is *demand-clocked*: it only ticks at times that were
    explicitly armed — by the owning engine when external events (packet
    arrivals, relays) wake a parked component, or by the previous tick
    when components remain active.  Each armed time produces exactly one
    tick; re-arming an already-armed time is a no-op, so wake-up paths
    never need to know whether the clock is already running.
    """

    __slots__ = ("sim", "tick", "_armed")

    def __init__(self, sim: "Simulator", tick: Callable[[float], None]) -> None:
        self.sim = sim
        #: The per-cycle callback; receives the tick's simulation time.
        self.tick = tick
        self._armed: set[float] = set()

    @property
    def armed_count(self) -> int:
        """Number of distinct tick times currently scheduled."""
        return len(self._armed)

    def arm(self, time: float) -> None:
        """Request a tick at absolute ``time`` (coalesced, >= now)."""
        armed = self._armed
        if time in armed:
            return
        sim = self.sim
        delay = time - sim.now
        if delay < 0:
            raise SchedulingError(
                f"cannot arm a tick at {time} < now={sim.now}"
            )
        armed.add(time)
        sim.schedule_late(delay, self._fire, time)

    def _fire(self, time: float) -> None:
        self._armed.discard(time)
        self.tick(time)
