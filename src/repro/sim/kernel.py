"""The discrete-event simulation kernel.

This is the reproduction's substitute for YACSIM/NETSIM (Jump, Rice
University, 1993): a process-oriented discrete-event engine.  Time is a
monotonically non-decreasing float (the E-RAPID models use integral router
cycles); events at equal times fire in deterministic ``(priority, FIFO)``
order.

Typical use::

    sim = Simulator()

    def producer(sim, store):
        for i in range(3):
            yield sim.timeout(10)
            yield store.put(i)

    store = Store(sim)
    sim.process(producer(sim, store))
    sim.run(until=100)
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import CompositeWait, ScheduledEvent, Timeout, Waitable
from repro.sim.process import Process
from repro.sim.trace import TraceLog

__all__ = ["Simulator"]


class Simulator:
    """Event heap + clock + process bookkeeping.

    Parameters
    ----------
    trace:
        Optional :class:`repro.sim.trace.TraceLog`; when set, the kernel
        records process starts/ends (models add their own records).
    """

    def __init__(self, trace: Optional[TraceLog] = None) -> None:
        self._now: float = 0.0
        self._heap: List[ScheduledEvent] = []
        self._running = False
        self._stopped = False
        self.trace = trace
        self._processes: List[Process] = []
        self._event_count = 0

    # ------------------------------------------------------------------
    # Clock & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def event_count(self) -> int:
        """Number of events executed so far (for profiling/tests)."""
        return self._event_count

    def schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay!r} in the past")
        ev = ScheduledEvent(self._now + delay, fn, args, priority)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time} < now={self._now}"
            )
        ev = ScheduledEvent(time, fn, args, priority)
        heapq.heappush(self._heap, ev)
        return ev

    # ------------------------------------------------------------------
    # Waitable factories
    # ------------------------------------------------------------------
    def event(self) -> Waitable:
        """A fresh untriggered waitable (a condition/semaphore seed)."""
        return Waitable(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """A waitable that fires ``delay`` from now."""
        return Timeout(self, delay, value)

    def any_of(self, waitables: List[Waitable]) -> CompositeWait:
        """Fires when any of ``waitables`` fires."""
        return CompositeWait(self, waitables, mode="any")

    def all_of(self, waitables: List[Waitable]) -> CompositeWait:
        """Fires when all of ``waitables`` have fired."""
        return CompositeWait(self, waitables, mode="all")

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def process(self, generator: Generator[Any, Any, None], name: str = "") -> Process:
        """Register a generator as a concurrent process; starts at ``now``."""
        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``False`` when the heap is empty (nothing executed).
        """
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            if ev.time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event heap yielded an event in the past")
            self._now = ev.time
            self._event_count += 1
            ev.fn(*ev.args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or the clock passes ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fired earlier, so back-to-back ``run`` calls
        observe a continuous clock.  Returns the final time.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        try:
            if until is not None and until < self._now:
                raise SchedulingError(
                    f"run(until={until}) is before now={self._now}"
                )
            while self._heap and not self._stopped:
                if until is not None and self._heap[0].time > until:
                    break
                self.step()
            if until is not None and not self._stopped:
                self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Stop a running :meth:`run` after the current event completes."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now} pending={len(self._heap)}>"
