"""The discrete-event simulation kernel.

This is the reproduction's substitute for YACSIM/NETSIM (Jump, Rice
University, 1993): a process-oriented discrete-event engine.  Time is a
monotonically non-decreasing float (the E-RAPID models use integral router
cycles); events at equal times fire in deterministic ``(priority, FIFO)``
order.

Typical use::

    sim = Simulator()

    def producer(sim, store):
        for i in range(3):
            yield sim.timeout(10)
            yield store.put(i)

    store = Store(sim)
    sim.process(producer(sim, store))
    sim.run(until=100)

Hot-path design
---------------
The event heap stores **plain tuples** ``(time, priority, seq, handle,
fn, args)`` so that ``heapq``'s C implementation compares native tuples
directly — the per-comparison tuple construction of an object-heap
``ScheduledEvent.__lt__`` is gone, and ``seq`` is unique so a comparison
never reaches the non-orderable payload slots.  :meth:`Simulator.schedule`
still returns a cancellable :class:`ScheduledEvent` handle, but the
internal hot paths (timeouts, waitable triggers, process start-up) go
through :meth:`Simulator.schedule_fast`, which pushes a handle-less entry
and allocates nothing beyond the tuple itself.

Cancelled events are skipped lazily when popped; when cancelled entries
exceed a fraction of the heap (:data:`COMPACT_MIN_CANCELLED` /
:data:`COMPACT_FRACTION`) the heap is compacted in place so a cancel-heavy
model cannot degrade pop cost for the rest of the run.

:meth:`Simulator.run` binds the heap and dispatch state to locals and
carries **zero per-event instrumentation** unless an :attr:`Simulator.
on_event` hook is installed, in which case a separate (slower) dispatch
loop invokes the hook for every executed event.
"""

from __future__ import annotations

import heapq
from math import inf
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import CompositeWait, ScheduledEvent, Timeout, Waitable
from repro.sim.process import Process
from repro.sim.trace import TraceLog

__all__ = ["Simulator", "KERNEL_VERSION"]

#: Version tag of the kernel's *observable semantics* (event total order,
#: timing model).  Content-addressed run caches include this in their keys:
#: bump it whenever a kernel change could alter simulation results, so
#: stale cached runs are invalidated instead of silently reused.
#: "3": the callback-engine rewrite — :meth:`Simulator.schedule_late`
#: introduces the priority-1 continuation class and the fast engine's
#: executed-event stream (and ``events`` count) changed shape.
KERNEL_VERSION = "3"

#: Compaction triggers only once at least this many cancellations are
#: pending — tiny heaps are cheaper to drain than to rebuild.
COMPACT_MIN_CANCELLED = 64
#: ... and only when cancelled entries exceed this fraction of the heap.
COMPACT_FRACTION = 0.5

#: One heap entry: (time, priority, seq, handle-or-None, fn, args).
_HeapEntry = Tuple[
    float, int, int, Optional[ScheduledEvent], Callable[..., None], Tuple[Any, ...]
]


class Simulator:
    """Event heap + clock + process bookkeeping.

    Parameters
    ----------
    trace:
        Optional :class:`repro.sim.trace.TraceLog`; when set, the kernel
        records process starts/ends (models add their own records).
    """

    def __init__(self, trace: Optional[TraceLog] = None) -> None:
        self._now: float = 0.0
        self._heap: List[_HeapEntry] = []
        self._seq = 0
        self._cancelled = 0
        self._running = False
        self._stopped = False
        self.trace = trace
        #: Optional per-event instrumentation hook ``fn(time, fn, args)``;
        #: when None (the default) the dispatch loop takes the fast path.
        self.on_event: Optional[
            Callable[[float, Callable[..., None], Tuple[Any, ...]], None]
        ] = None
        self._processes: List[Process] = []
        self._event_count = 0

    # ------------------------------------------------------------------
    # Clock & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def event_count(self) -> int:
        """Number of events executed so far (for profiling/tests)."""
        return self._event_count

    def schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay!r} in the past")
        time = self._now + delay
        self._seq = seq = self._seq + 1
        ev = ScheduledEvent(time, fn, args, priority, seq=seq, sim=self)
        heapq.heappush(self._heap, (time, priority, seq, ev, fn, args))
        return ev

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time} < now={self._now}"
            )
        self._seq = seq = self._seq + 1
        ev = ScheduledEvent(time, fn, args, priority, seq=seq, sim=self)
        heapq.heappush(self._heap, (time, priority, seq, ev, fn, args))
        return ev

    def schedule_fast(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> None:
        """Hot-path scheduling: default priority, no cancellation handle.

        The internal machinery (timeouts, waitable triggers, process
        start-up) schedules millions of events per run and never cancels
        them; this entry point skips the :class:`ScheduledEvent`
        allocation entirely.
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay!r} in the past")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (self._now + delay, 0, seq, None, fn, args))

    def schedule_late(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> None:
        """Hot-path scheduling at priority 1 — the *continuation* class.

        Callback state machines (the fast engine) schedule their
        model-mutating continuations through this entry point.  Priority 1
        reproduces the total order of the coroutine formulation they
        replaced: there, every ``yield`` deferred the model mutation into a
        resume event whose FIFO sequence number was assigned *at execution
        time*, so resumes always sorted after every same-time event that
        had been scheduled directly (priority 0 — deliveries, protocol
        stages, traces).  A priority-1 entry keeps that "mutations after
        direct callbacks" invariant while needing only ONE heap event per
        hold instead of the coroutine's fire + resume pair; among
        themselves, priority-1 entries fire in scheduling (FIFO) order,
        matching the old resumes' enablement order.
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay!r} in the past")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (self._now + delay, 1, seq, None, fn, args))

    # ------------------------------------------------------------------
    # Cancellation bookkeeping (called by ScheduledEvent.cancel)
    # ------------------------------------------------------------------
    def _on_cancel(self) -> None:
        self._cancelled = cancelled = self._cancelled + 1
        if (
            cancelled >= COMPACT_MIN_CANCELLED
            and cancelled > len(self._heap) * COMPACT_FRACTION
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In place matters: a running dispatch loop holds a local reference
        to the heap list, so the list object must stay the same.
        """
        heap = self._heap
        heap[:] = [e for e in heap if e[3] is None or not e[3].cancelled]
        heapq.heapify(heap)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Waitable factories
    # ------------------------------------------------------------------
    def event(self) -> Waitable:
        """A fresh untriggered waitable (a condition/semaphore seed)."""
        return Waitable(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """A waitable that fires ``delay`` from now."""
        return Timeout(self, delay, value)

    def any_of(self, waitables: List[Waitable]) -> CompositeWait:
        """Fires when any of ``waitables`` fires."""
        return CompositeWait(self, waitables, mode="any")

    def all_of(self, waitables: List[Waitable]) -> CompositeWait:
        """Fires when all of ``waitables`` have fired."""
        return CompositeWait(self, waitables, mode="all")

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def process(self, generator: Generator[Any, Any, None], name: str = "") -> Process:
        """Register a generator as a concurrent process; starts at ``now``."""
        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``False`` when the heap is empty (nothing executed).
        """
        heap = self._heap
        while heap:
            time, _prio, _seq, handle, fn, args = heapq.heappop(heap)
            if handle is not None and handle.cancelled:
                self._cancelled -= 1
                continue
            if time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event heap yielded an event in the past")
            self._now = time
            self._event_count += 1
            if self.on_event is not None:
                self.on_event(time, fn, args)
            fn(*args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or the clock passes ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fired earlier, so back-to-back ``run`` calls
        observe a continuous clock.  Returns the final time.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        try:
            if until is not None and until < self._now:
                raise SchedulingError(
                    f"run(until={until}) is before now={self._now}"
                )
            if self.on_event is None:
                self._run_fast(inf if until is None else until)
            else:
                # Instrumented path: step() fires the hook per event.
                while self._heap and not self._stopped:
                    if until is not None and self._heap[0][0] > until:
                        break
                    self.step()
            if until is not None and not self._stopped:
                self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def _run_fast(self, limit: float) -> None:
        """The uninstrumented dispatch loop (hot path).

        Everything touched per event is bound to a local: the heap list,
        ``heappop``, and the event-count accumulator.  ``self._now`` is
        still written through the instance so callbacks observe the
        advancing clock.
        """
        heap = self._heap
        heappop = heapq.heappop
        count = 0
        try:
            while heap and not self._stopped:
                entry = heap[0]
                time = entry[0]
                if time > limit:
                    break
                heappop(heap)
                handle = entry[3]
                if handle is not None and handle.cancelled:
                    self._cancelled -= 1
                    continue
                self._now = time
                count += 1
                entry[4](*entry[5])
        finally:
            self._event_count += count

    def stop(self) -> None:
        """Stop a running :meth:`run` after the current event completes."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when idle."""
        heap = self._heap
        while heap:
            handle = heap[0][3]
            if handle is not None and handle.cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            return heap[0][0]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now} pending={len(self._heap)}>"
