"""Monitored FIFO queues.

:class:`MonitoredStore` extends :class:`repro.sim.resources.Store` with the
time-weighted occupancy and throughput counters the E-RAPID link controllers
read every reconfiguration window (the paper's ``Buffer_util`` hardware
counter), plus per-item dwell-time statistics.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.sim.events import Waitable
from repro.sim.resources import Store
from repro.sim.stats import Tally, TimeWeighted

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

__all__ = ["MonitoredStore"]


class MonitoredStore(Store):
    """A :class:`Store` that tracks occupancy, arrivals and dwell time.

    ``occupancy.window(now)`` gives the time-averaged number of buffered
    items over the current measurement window; dividing by ``capacity``
    yields the paper's ``Buffer_util``.
    """

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None, name: str = "") -> None:
        super().__init__(sim, capacity)
        self.name = name
        self.occupancy = TimeWeighted(sim.now, 0.0)
        self.dwell = Tally()
        self.arrivals = 0
        self.departures = 0
        self._enqueue_times: dict[int, float] = {}

    # ------------------------------------------------------------------
    def buffer_util(self, now: Optional[float] = None) -> float:
        """Windowed ``Buffer_util`` in [0, 1] (occupancy / capacity).

        For an unbounded store the raw mean occupancy is returned (callers
        should configure a capacity to get a bounded utilization).
        """
        now = self.sim.now if now is None else now
        occ = self.occupancy.window(now)
        if self.capacity is None:
            return occ
        return min(1.0, occ / self.capacity)

    def reset_window(self, now: Optional[float] = None) -> None:
        """Start a new ``R_w`` measurement window."""
        now = self.sim.now if now is None else now
        self.occupancy.reset_window(now)

    # ------------------------------------------------------------------
    # Store hooks
    # ------------------------------------------------------------------
    def put(self, item: Any) -> Waitable:  # noqa: D102 - see Store.put
        self.arrivals += 1
        had_getter = bool(self._getters)
        req = super().put(item)
        if had_getter:
            # Direct hand-off: never buffered, dwell time zero.
            self.departures += 1
            self.dwell.add(0.0)
        return req

    def try_put(self, item: Any) -> bool:  # noqa: D102 - see Store.try_put
        had_getter = bool(self._getters)
        ok = super().try_put(item)
        if ok:
            self.arrivals += 1
            if had_getter:
                self.departures += 1
                self.dwell.add(0.0)
        return ok

    def offer(self, item: Any) -> bool:  # noqa: D102 - see Store.offer
        # Like the blocking put(), the attempt counts as an arrival even
        # when the store is full — the item is en route, merely stalled.
        self.arrivals += 1
        had_getter = bool(self._getters)
        ok = super().offer(item)
        if ok and had_getter:
            self.departures += 1
            self.dwell.add(0.0)
        return ok

    def record_handoff(self) -> None:
        """Count an arrival handed straight to its consumer (never buffered).

        Callback consumers take items synchronously instead of parking a
        getter inside the store, so the direct hand-off statistics a
        blocking ``put`` would have recorded (arrival + zero-dwell
        departure, no occupancy) are recorded through this hook.
        """
        self.arrivals += 1
        self.departures += 1
        self.dwell.add(0.0)

    def _on_item_enqueued(self, item: Any) -> None:
        super()._on_item_enqueued(item)
        self._enqueue_times[id(item)] = self.sim.now
        self.occupancy.add(self.sim.now, +1.0)

    def _on_item_dequeued(self, item: Any) -> None:
        super()._on_item_dequeued(item)
        t0 = self._enqueue_times.pop(id(item), self.sim.now)
        self.dwell.add(self.sim.now - t0)
        self.departures += 1
        self.occupancy.add(self.sim.now, -1.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity is None else self.capacity
        return f"<MonitoredStore {self.name!r} {len(self._items)}/{cap}>"
