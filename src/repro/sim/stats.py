"""Statistics accumulators used throughout the simulator.

Three flavours cover everything the E-RAPID models measure:

* :class:`Tally` — sample statistics (count/mean/variance/min/max) via
  Welford's online algorithm; used for packet latency.
* :class:`TimeWeighted` — time-weighted average of a piecewise-constant
  signal (queue occupancy, busy/idle state, instantaneous power); supports
  *windowed* readout so the link controllers can report per-``R_w``
  utilizations and reset (the paper's hardware counters).
* :class:`Histogram` — fixed-bin counts for latency distributions.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.errors import MeasurementError

__all__ = ["Tally", "TimeWeighted", "Histogram"]


class Tally:
    """Online sample statistics (Welford)."""

    __slots__ = ("count", "_mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, x: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 for < 2 samples)."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "Tally") -> "Tally":
        """Fold ``other`` into ``self`` (parallel Welford merge)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            return self
        n = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / n
        self._mean += delta * other.count / n
        self.count = n
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tally n={self.count} mean={self.mean:.4g}>"


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    ``update(t, value)`` says the signal holds ``value`` from time ``t``
    onward.  :meth:`average` integrates up to a given time.  :meth:`window`
    returns the average since the last :meth:`reset_window` — the model for
    the per-``R_w`` hardware counters at each link controller.
    """

    __slots__ = ("_t_last", "_value", "_area", "_t_start", "_win_area", "_win_start")

    def __init__(self, t0: float = 0.0, value: float = 0.0) -> None:
        self._t_start = t0
        self._t_last = t0
        self._value = value
        self._area = 0.0
        self._win_area = 0.0
        self._win_start = t0

    @property
    def value(self) -> float:
        """Current signal value."""
        return self._value

    def update(self, t: float, value: float) -> None:
        """Advance to time ``t`` and set the signal to ``value``."""
        if t < self._t_last:
            raise MeasurementError(
                f"TimeWeighted.update time went backwards: {t} < {self._t_last}"
            )
        dt = t - self._t_last
        self._area += self._value * dt
        self._win_area += self._value * dt
        self._t_last = t
        self._value = value

    def add(self, t: float, delta: float) -> None:
        """Advance to ``t`` and bump the signal by ``delta``."""
        self.update(t, self._value + delta)

    def average(self, t: Optional[float] = None) -> float:
        """Average over the whole history, integrated up to ``t``."""
        t = self._t_last if t is None else t
        span = t - self._t_start
        if span <= 0:
            return self._value
        area = self._area + self._value * (t - self._t_last)
        return area / span

    def window(self, t: Optional[float] = None) -> float:
        """Average since the last window reset, integrated up to ``t``."""
        t = self._t_last if t is None else t
        span = t - self._win_start
        if span <= 0:
            return self._value
        area = self._win_area + self._value * (t - self._t_last)
        return area / span

    def reset_window(self, t: float) -> None:
        """Start a new measurement window at ``t`` (signal value persists)."""
        self.update(t, self._value)
        self._win_area = 0.0
        self._win_start = t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TimeWeighted value={self._value:.4g} avg={self.average():.4g}>"


class Histogram:
    """Fixed-bin histogram over ``[lo, hi)`` with under/overflow bins."""

    def __init__(self, lo: float, hi: float, bins: int) -> None:
        if bins < 1 or hi <= lo:
            raise MeasurementError(f"bad histogram spec lo={lo} hi={hi} bins={bins}")
        self.lo = lo
        self.hi = hi
        self.bins = bins
        self._width = (hi - lo) / bins
        self.counts: List[int] = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self.n = 0

    def add(self, x: float) -> None:
        self.n += 1
        if x < self.lo:
            self.underflow += 1
        elif x >= self.hi:
            self.overflow += 1
        else:
            self.counts[int((x - self.lo) / self._width)] += 1

    def edges(self) -> List[float]:
        """Bin edges (length ``bins + 1``)."""
        return [self.lo + i * self._width for i in range(self.bins + 1)]

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (q in [0, 100]) from bin midpoints."""
        if not 0 <= q <= 100:
            raise MeasurementError(f"percentile q must be in [0,100], got {q}")
        if self.n == 0:
            return 0.0
        target = self.n * q / 100.0
        seen = self.underflow
        if seen >= target:
            return self.lo
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                return self.lo + (i + 0.5) * self._width
        return self.hi

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram n={self.n} [{self.lo},{self.hi}) x{self.bins}>"


def describe(samples: Sequence[float]) -> dict[str, float]:
    """Convenience: summary dict for a sequence of samples (used in reports)."""
    t = Tally()
    for s in samples:
        t.add(s)
    return {
        "count": t.count,
        "mean": t.mean,
        "stdev": t.stdev,
        "min": t.min if t.count else 0.0,
        "max": t.max if t.count else 0.0,
    }
