"""Process-oriented discrete-event simulation kernel.

The reproduction's substitute for the YACSIM/NETSIM simulator the paper
used.  See :class:`repro.sim.kernel.Simulator` for the entry point.
"""

from repro.sim.cycle import CycleDriver, DueQueue
from repro.sim.events import CompositeWait, ScheduledEvent, Timeout, Waitable
from repro.sim.kernel import Simulator
from repro.sim.process import Interrupt, Process
from repro.sim.queues import MonitoredStore
from repro.sim.resources import Resource, Store
from repro.sim.rng import RngRegistry, geometric_gap
from repro.sim.stats import Histogram, Tally, TimeWeighted
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "CompositeWait",
    "CycleDriver",
    "DueQueue",
    "Histogram",
    "Interrupt",
    "MonitoredStore",
    "Process",
    "Resource",
    "RngRegistry",
    "ScheduledEvent",
    "Simulator",
    "Store",
    "Tally",
    "TimeWeighted",
    "Timeout",
    "TraceLog",
    "TraceRecord",
    "Waitable",
    "geometric_gap",
]
