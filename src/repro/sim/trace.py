"""Structured event tracing.

A :class:`TraceLog` collects ``(time, category, entity, message, fields)``
records.  The reconfiguration-protocol bench (Figure 4) and several tests
assert on protocol traces, so records are cheap namedtuple-like rows and the
log supports filtering and bounded retention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "TraceLog"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace row."""

    time: float
    category: str
    entity: str
    message: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        """Human-readable single-line rendering."""
        extra = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:12.1f}] {self.category:<10} {self.entity:<14} {self.message}" + (
            f" | {extra}" if extra else ""
        )


class TraceLog:
    """Bounded in-memory trace collector with category filtering.

    Parameters
    ----------
    categories:
        When given, only these categories are recorded (others are dropped
        at call time, keeping disabled tracing nearly free).
    max_records:
        Retention bound; the oldest records are dropped past it.
    """

    def __init__(
        self,
        categories: Optional[set[str]] = None,
        max_records: int = 100_000,
    ) -> None:
        self.categories = categories
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self.dropped = 0
        self._sinks: List[Callable[[TraceRecord], None]] = []

    def enabled(self, category: str) -> bool:
        """Whether ``category`` is currently being recorded."""
        return self.categories is None or category in self.categories

    def record(
        self,
        time: float,
        category: str,
        entity: str,
        message: str,
        **fields: Any,
    ) -> None:
        """Append a record (no-op for filtered categories)."""
        if not self.enabled(category):
            return
        rec = TraceRecord(time, category, entity, message, fields)
        if len(self.records) >= self.max_records:
            self.records.pop(0)
            self.dropped += 1
        self.records.append(rec)
        for sink in self._sinks:
            sink(rec)

    def add_sink(self, sink: Callable[[TraceRecord], None]) -> None:
        """Stream records to ``sink`` as they arrive (e.g. ``print``)."""
        self._sinks.append(sink)

    def filter(
        self,
        category: Optional[str] = None,
        entity: Optional[str] = None,
        since: float = float("-inf"),
    ) -> Iterator[TraceRecord]:
        """Iterate records matching the given criteria."""
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if entity is not None and rec.entity != entity:
                continue
            if rec.time < since:
                continue
            yield rec

    def format(self, **kwargs: Any) -> str:
        """Render matching records, one per line."""
        return "\n".join(rec.format() for rec in self.filter(**kwargs))

    def __len__(self) -> int:
        return len(self.records)
