"""Blocking resources and stores for processes.

Provides the YACSIM-style primitives the network models are built on:

* :class:`Resource` — ``capacity`` interchangeable servers; processes
  ``yield res.request()`` and later call ``res.release()``.
* :class:`Store` — a FIFO buffer of items with optional capacity;
  ``yield store.put(item)`` / ``item = yield store.get()``.

Both hand out :class:`~repro.sim.events.Waitable` request objects so they
compose with timeouts via ``sim.any_of``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.events import Waitable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """``capacity`` interchangeable servers with a FIFO wait queue."""

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Waitable] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return self._in_use

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self.capacity - self._in_use

    def request(self) -> Waitable:
        """A waitable that fires when a slot is granted to the caller."""
        req = Waitable(self.sim)
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            req.trigger(self)
        else:
            self._waiters.append(req)
        return req

    def release(self) -> None:
        """Free one slot, handing it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            # Slot passes directly to the next waiter; in_use is unchanged.
            self._waiters.popleft().trigger(self)
        else:
            self._in_use -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Resource {self._in_use}/{self.capacity} waiters={len(self._waiters)}>"


class Store:
    """A FIFO buffer of items; the workhorse behind every queue in the models.

    Parameters
    ----------
    capacity:
        Maximum number of buffered items; ``None`` means unbounded.  A
        ``put`` on a full store blocks until space frees up.
    """

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"Store capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Waitable] = deque()
        self._putters: Deque[tuple[Waitable, Any]] = deque()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple[Any, ...]:
        """Snapshot of buffered items (oldest first)."""
        return tuple(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    # ------------------------------------------------------------------
    def put(self, item: Any) -> Waitable:
        """A waitable that fires (with ``item``) once the item is buffered."""
        req = Waitable(self.sim)
        if self._getters:
            # Hand straight to the oldest blocked getter (store stays empty).
            self._getters.popleft().trigger(item)
            req.trigger(item)
        elif not self.is_full:
            self._on_item_enqueued(item)
            req.trigger(item)
        else:
            self._putters.append((req, item))
        return req

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns ``False`` when the store is full."""
        if self._getters:
            self._getters.popleft().trigger(item)
            return True
        if self.is_full:
            return False
        self._on_item_enqueued(item)
        return True

    def offer(self, item: Any) -> bool:
        """Non-blocking put for callback producers; ``False`` when full.

        Semantically :meth:`try_put`, but monitored subclasses count the
        *attempt* (like a blocking :meth:`put` does) so a producer that
        parks itself on rejection and re-enters via :meth:`admit` leaves
        the same arrival statistics as one that blocked inside ``put``.
        """
        if self._getters:
            self._getters.popleft().trigger(item)
            return True
        if self.is_full:
            return False
        self._on_item_enqueued(item)
        return True

    def admit(self, item: Any) -> None:
        """Enqueue an item whose arrival a failed :meth:`offer` already
        counted — the callback analogue of the blocked-putter hand-off
        (:meth:`_admit_putter`).  The caller must have freed a slot."""
        if self.is_full:
            raise SimulationError("admit() into a full store")
        self._on_item_enqueued(item)

    def get(self) -> Waitable:
        """A waitable that fires with the oldest item once one is available."""
        req = Waitable(self.sim)
        if self._items:
            item = self._items.popleft()
            self._on_item_dequeued(item)
            self._admit_putter()
            req.trigger(item)
        else:
            self._getters.append(req)
        return req

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns ``(ok, item)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self._on_item_dequeued(item)
        self._admit_putter()
        return True, item

    # ------------------------------------------------------------------
    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            req, item = self._putters.popleft()
            self._on_item_enqueued(item)
            req.trigger(item)

    # Hooks for monitored subclasses -----------------------------------
    def _on_item_enqueued(self, item: Any) -> None:
        self._items.append(item)

    def _on_item_dequeued(self, item: Any) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity is None else self.capacity
        return f"<Store {len(self._items)}/{cap}>"
