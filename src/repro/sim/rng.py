"""Deterministic random-number streams.

Every stochastic entity (each node's injector, each pattern generator) gets
an *independent, named* stream derived from a single experiment seed, so

* runs are bit-reproducible for a given seed, and
* changing one entity's draws never perturbs another's (common random
  numbers across configurations — essential for comparing the four
  NP/P × NB/B configurations at identical injected workloads).

Streams use :class:`numpy.random.Generator` (PCG64) seeded via
:class:`numpy.random.SeedSequence` with a ``spawn_key`` derived from the
*full byte sequence* of the stream name.  Earlier revisions keyed streams
on ``zlib.crc32(name)``, which maps distinct names to the same 32-bit key
with birthday-paradox probability (~1 % at 10k streams) — a silent loss of
stream independence.  The spawn-key derivation is injective in the name, so
distinct names can never share a stream state, while the master-seed
semantics (one integer seed reproduces the whole experiment) are unchanged.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
import numpy.typing as npt

__all__ = [
    "RngRegistry",
    "geometric_gap",
    "geometric_gap_array",
    "integer_array",
]

#: Domain-separation tags so ``stream(name)`` and ``spawn(name)`` can never
#: derive the same SeedSequence from one name.
_STREAM_DOMAIN = 0
_SPAWN_DOMAIN = 1


class RngRegistry:
    """Factory for named, independent PCG64 streams under one master seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def _derive(self, name: str, domain: int) -> np.random.SeedSequence:
        """SeedSequence keyed on the full name bytes (collision-free)."""
        spawn_key: Tuple[int, ...] = (domain, *name.encode("utf-8"))
        return np.random.SeedSequence(self.seed, spawn_key=spawn_key)

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use, then cached)."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.Generator(
                np.random.PCG64(self._derive(name, _STREAM_DOMAIN))
            )
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        child_seed = int(
            self._derive(name, _SPAWN_DOMAIN).generate_state(1, np.uint64)[0]
        )
        return RngRegistry(seed=child_seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngRegistry seed={self.seed} streams={len(self._streams)}>"


def geometric_gap(rng: np.random.Generator, p: float) -> int:
    """Cycles until the next Bernoulli(p) success, inclusive (>= 1).

    Sampling the inter-arrival gap directly is equivalent to flipping a
    Bernoulli coin every cycle but costs O(1) per packet instead of O(1)
    per cycle — the key to simulating long runs in pure Python.
    """
    if p <= 0.0:
        return 1 << 30  # effectively never
    if p >= 1.0:
        return 1
    return int(rng.geometric(p))


def geometric_gap_array(
    rng: np.random.Generator, p: float, n: int
) -> npt.NDArray[np.int64]:
    """``n`` Bernoulli(p) gaps in one vectorized draw.

    Bit-identical to ``n`` successive :func:`geometric_gap` calls: numpy
    fills the array element by element from the same bit stream, so the
    value sequence is independent of how the draws are chunked.  The
    degenerate rates never touch the generator, exactly like the scalar
    path.  This is the sanctioned vectorized-draw primitive for the batch
    engine (SIM008 keeps RNG machinery out of every other module).
    """
    if p <= 0.0:
        return np.full(n, 1 << 30, dtype=np.int64)
    if p >= 1.0:
        return np.ones(n, dtype=np.int64)
    return rng.geometric(p, size=n).astype(np.int64, copy=False)


def integer_array(
    rng: np.random.Generator, low: int, high: int, n: int
) -> npt.NDArray[np.int64]:
    """``n`` draws of ``rng.integers(low, high)`` as one vectorized call.

    Counterpart of :func:`geometric_gap_array` for destination draws.
    Note the *scalar* uniform-traffic path interleaves one dest draw with
    each gap draw on the same stream, so chunked draws are NOT
    stream-identical to it — callers get statistically equivalent, not
    bit-identical, uniform traffic (permutation patterns draw no dests and
    stay bit-identical).
    """
    return rng.integers(low, high, size=n).astype(np.int64, copy=False)
