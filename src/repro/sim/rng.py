"""Deterministic random-number streams.

Every stochastic entity (each node's injector, each pattern generator) gets
an *independent, named* stream derived from a single experiment seed, so

* runs are bit-reproducible for a given seed, and
* changing one entity's draws never perturbs another's (common random
  numbers across configurations — essential for comparing the four
  NP/P × NB/B configurations at identical injected workloads).

Streams use :class:`numpy.random.Generator` (PCG64) seeded via
``numpy.random.SeedSequence.spawn``-style derivation keyed on a stable hash
of the stream name.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry", "geometric_gap"]


class RngRegistry:
    """Factory for named, independent PCG64 streams under one master seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use, then cached)."""
        gen = self._streams.get(name)
        if gen is None:
            # Stable across processes/platforms: key on CRC32 of the name.
            key = zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF
            gen = np.random.Generator(np.random.PCG64([self.seed, key]))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        key = zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF
        return RngRegistry(seed=(self.seed * 1_000_003 + key) & 0x7FFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngRegistry seed={self.seed} streams={len(self._streams)}>"


def geometric_gap(rng: np.random.Generator, p: float) -> int:
    """Cycles until the next Bernoulli(p) success, inclusive (>= 1).

    Sampling the inter-arrival gap directly is equivalent to flipping a
    Bernoulli coin every cycle but costs O(1) per packet instead of O(1)
    per cycle — the key to simulating long runs in pure Python.
    """
    if p <= 0.0:
        return 1 << 30  # effectively never
    if p >= 1.0:
        return 1
    return int(rng.geometric(p))
