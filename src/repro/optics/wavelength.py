"""Wavelength (WDM) abstractions.

E-RAPID uses W = B wavelengths.  A wavelength is identified by its index;
for realism (and nicer reports) indices map onto a 100 GHz ITU-style DWDM
grid in the C band starting at 1550.12 nm, which is where commercial
multi-wavelength VCSEL arrays of the era operated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import WavelengthError

__all__ = ["Wavelength", "wavelength_grid", "C_BAND_START_NM", "GRID_SPACING_NM"]

#: Anchor of the grid (nm) — ITU channel C34.
C_BAND_START_NM = 1550.12
#: 100 GHz spacing is ~0.8 nm in the C band.
GRID_SPACING_NM = 0.8


@dataclass(frozen=True, order=True)
class Wavelength:
    """One WDM channel, identified by ``index`` within the system grid."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise WavelengthError(f"wavelength index must be >= 0, got {self.index}")

    @property
    def nm(self) -> float:
        """Nominal centre wavelength in nanometres."""
        return C_BAND_START_NM + self.index * GRID_SPACING_NM

    @property
    def label(self) -> str:
        """The paper's λ_i notation."""
        return f"λ{self.index}"

    def __str__(self) -> str:
        return self.label


def wavelength_grid(count: int) -> List[Wavelength]:
    """The first ``count`` wavelengths of the system grid."""
    if count < 1:
        raise WavelengthError(f"grid needs >= 1 wavelength, got {count}")
    return [Wavelength(i) for i in range(count)]
