"""Static routing and wavelength assignment (RWA).

§2.1 of the paper assigns board *s* -> board *d* the wavelength

    λ_{B−(d−s)}  if d > s
    λ_{(s−d)}    if s > d

which is exactly ``(s − d) mod B``.  Both worked examples hold:
``w(1, 0) = 1`` (board 1 -> 0 uses λ1) and ``w(0, 1) = 3`` (board 0 -> 1
uses λ3) for B = 4.

Consequences used throughout the system:

* Transmitter *i* on board *s* statically serves destination
  ``(s − i) mod B``.
* The *default owner* of wavelength λ toward destination *d* is board
  ``(d + λ) mod B``.
* Wavelength 0 is the board's self-loop (s = d) and is never used for
  remote traffic; remote channels use indices 1..B−1.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WavelengthError
from repro.network.topology import ERapidTopology
from repro.optics.wavelength import Wavelength

__all__ = ["StaticRWA"]


class StaticRWA:
    """The paper's static wavelength-assignment algebra for B boards."""

    def __init__(self, boards: int) -> None:
        if boards < 2:
            raise WavelengthError(f"RWA needs >= 2 boards, got {boards}")
        self.boards = boards

    @classmethod
    def for_topology(cls, topology: ERapidTopology) -> "StaticRWA":
        return cls(topology.boards)

    # ------------------------------------------------------------------
    def wavelength_for(self, src_board: int, dst_board: int) -> int:
        """Static wavelength index for src -> dst (src != dst)."""
        self._check_board(src_board)
        self._check_board(dst_board)
        if src_board == dst_board:
            raise WavelengthError(
                f"no inter-board wavelength for a board to itself ({src_board})"
            )
        return (src_board - dst_board) % self.boards

    def dest_served_by(self, src_board: int, wavelength: int) -> int:
        """Destination that transmitter ``wavelength`` on ``src_board`` serves."""
        self._check_board(src_board)
        self._check_wavelength(wavelength)
        return (src_board - wavelength) % self.boards

    def default_owner(self, dst_board: int, wavelength: int) -> int:
        """Board that statically owns ``wavelength`` toward ``dst_board``."""
        self._check_board(dst_board)
        self._check_wavelength(wavelength)
        return (dst_board + wavelength) % self.boards

    # ------------------------------------------------------------------
    def assignment_map(self) -> Dict[int, Dict[int, int]]:
        """``{src: {dst: wavelength}}`` for every remote board pair."""
        return {
            s: {
                d: self.wavelength_for(s, d)
                for d in range(self.boards)
                if d != s
            }
            for s in range(self.boards)
        }

    def incoming_wavelengths(self, dst_board: int) -> Dict[int, int]:
        """``{src: wavelength}`` for everything arriving at ``dst_board``."""
        self._check_board(dst_board)
        return {
            s: self.wavelength_for(s, dst_board)
            for s in range(self.boards)
            if s != dst_board
        }

    def validate(self) -> None:
        """Check the collision-freedom invariant the architecture relies on.

        At every destination board the incoming wavelengths from distinct
        sources must be distinct (each fixed-λ receiver hears one source).
        """
        for d in range(self.boards):
            incoming = self.incoming_wavelengths(d)
            if len(set(incoming.values())) != len(incoming):
                raise WavelengthError(
                    f"receiver collision at board {d}: {incoming}"
                )  # pragma: no cover - algebraically impossible

    # ------------------------------------------------------------------
    def render_table(self) -> str:
        """Figure-1-style text rendering of the static assignment."""
        width = 7
        header = "src\\dst".ljust(width) + "".join(
            f"B{d}".center(width) for d in range(self.boards)
        )
        lines = [header]
        for s in range(self.boards):
            cells: List[str] = [f"B{s}".ljust(width)]
            for d in range(self.boards):
                if s == d:
                    cells.append("-".center(width))
                else:
                    w = self.wavelength_for(s, d)
                    cells.append(f"{Wavelength(w).label}^({s})".center(width))
            lines.append("".join(cells))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def _check_board(self, b: int) -> None:
        if not 0 <= b < self.boards:
            raise WavelengthError(f"board {b} out of range [0,{self.boards})")

    def _check_wavelength(self, w: int) -> None:
        if not 0 <= w < self.boards:
            raise WavelengthError(f"wavelength {w} out of range [0,{self.boards})")
