"""Passive couplers.

Coupler *p* merges port-*p* outputs from every board's transmitters onto the
fiber toward board *p* (Figure 2(b)).  Couplers are passive — they add no
power draw and no switching delay — but physics imposes one rule the
control plane must never violate: **two lit lasers on the same wavelength
must not feed the same coupler**, or the fixed-λ receiver hears a collision.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.errors import WavelengthError
from repro.optics.transmitter import TransmitterArray

__all__ = ["PassiveCoupler", "validate_coupler_plane"]


class PassiveCoupler:
    """The merge point for all light heading to one destination board."""

    def __init__(self, dst_board: int, wavelengths: int) -> None:
        self.dst_board = dst_board
        self.wavelengths = wavelengths

    def incident_lasers(
        self, arrays: Iterable[TransmitterArray]
    ) -> Dict[int, List[int]]:
        """``{wavelength: [source boards lit toward us]}``."""
        incident: Dict[int, List[int]] = {}
        for array in arrays:
            for wavelength, ports in array.active_channels().items():
                if self.dst_board in ports:
                    incident.setdefault(wavelength, []).append(array.board)
        return incident

    def validate(self, arrays: Iterable[TransmitterArray]) -> None:
        """Raise on a same-wavelength collision at this coupler."""
        for wavelength, sources in self.incident_lasers(arrays).items():
            if len(sources) > 1:
                raise WavelengthError(
                    f"collision at coupler {self.dst_board}: wavelength "
                    f"λ{wavelength} lit by boards {sorted(sources)}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PassiveCoupler -> board {self.dst_board}>"


def validate_coupler_plane(
    arrays: List[TransmitterArray], boards: int, wavelengths: int
) -> List[Tuple[int, int, int]]:
    """Validate every coupler; returns the active (src, wavelength, dst) set.

    Convenience for tests and the SRS: one pass over all boards that both
    checks the collision invariant and enumerates live channels.
    """
    channels: List[Tuple[int, int, int]] = []
    for dst in range(boards):
        coupler = PassiveCoupler(dst, wavelengths)
        incident = coupler.incident_lasers(arrays)
        for wavelength, sources in incident.items():
            if len(sources) > 1:
                raise WavelengthError(
                    f"collision at coupler {dst}: λ{wavelength} lit by "
                    f"boards {sorted(sources)}"
                )
            channels.append((sources[0], wavelength, dst))
    return channels
