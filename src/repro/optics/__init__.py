"""Optical substrate: WDM wavelengths, static RWA, transmitters, couplers,
receivers and the Scalable Remote Optical Super-Highway (SRS)."""

from repro.optics.coupler import PassiveCoupler, validate_coupler_plane
from repro.optics.optical_link import ChannelId, OpticalLinkTiming
from repro.optics.receiver import OpticalReceiver
from repro.optics.rwa import StaticRWA
from repro.optics.srs import SuperHighway
from repro.optics.transmitter import Transmitter, TransmitterArray
from repro.optics.wavelength import Wavelength, wavelength_grid

__all__ = [
    "ChannelId",
    "OpticalLinkTiming",
    "OpticalReceiver",
    "PassiveCoupler",
    "StaticRWA",
    "SuperHighway",
    "Transmitter",
    "TransmitterArray",
    "Wavelength",
    "wavelength_grid",
    "validate_coupler_plane",
]
