"""Optical transmitters: per-wavelength VCSEL arrays with one port per board.

Figure 2(b): each board carries W transmitters; transmitter *i* is an array
of identical-wavelength (λ_i) VCSELs, one behind each of B output ports.
Port *p* of every transmitter feeds passive coupler *p* (the fiber to board
*p*).  Reconfiguration = turning individual port lasers on/off.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import WavelengthError
from repro.optics.wavelength import Wavelength

__all__ = ["Transmitter", "TransmitterArray"]


class Transmitter:
    """One wavelength's VCSEL array on a board (B port lasers)."""

    def __init__(self, board: int, wavelength: int, n_ports: int) -> None:
        if n_ports < 2:
            raise WavelengthError(f"transmitter needs >= 2 ports, got {n_ports}")
        self.board = board
        self.wavelength = Wavelength(wavelength)
        self.n_ports = n_ports
        self._port_on: List[bool] = [False] * n_ports
        self.switch_count = 0

    # ------------------------------------------------------------------
    def is_on(self, port: int) -> bool:
        self._check_port(port)
        return self._port_on[port]

    def set_port(self, port: int, on: bool) -> bool:
        """Drive the laser behind ``port``; returns True if state changed."""
        self._check_port(port)
        if self._port_on[port] == on:
            return False
        self._port_on[port] = on
        self.switch_count += 1
        return True

    def active_ports(self) -> Set[int]:
        """Destinations this transmitter currently illuminates."""
        return {p for p, on in enumerate(self._port_on) if on}

    @property
    def any_on(self) -> bool:
        return any(self._port_on)

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.n_ports:
            raise WavelengthError(f"port {port} out of range [0,{self.n_ports})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        on = ",".join(str(p) for p in sorted(self.active_ports())) or "-"
        return f"<Tx b{self.board} {self.wavelength} ports_on=[{on}]>"


class TransmitterArray:
    """All W transmitters of one board (Figure 2(b) left-hand stack)."""

    def __init__(self, board: int, wavelengths: int, n_ports: int) -> None:
        self.board = board
        self.transmitters: List[Transmitter] = [
            Transmitter(board, w, n_ports) for w in range(wavelengths)
        ]

    def __getitem__(self, wavelength: int) -> Transmitter:
        return self.transmitters[wavelength]

    def __len__(self) -> int:
        return len(self.transmitters)

    def active_channels(self) -> Dict[int, Set[int]]:
        """``{wavelength: set(destination ports lit)}`` — the board's lasers."""
        return {
            tx.wavelength.index: tx.active_ports()
            for tx in self.transmitters
            if tx.any_on
        }

    def lasers_on(self) -> int:
        """Total number of lit port lasers on this board."""
        return sum(len(tx.active_ports()) for tx in self.transmitters)
