"""Optical link timing.

Converts between bit rates and router-clock cycles.  Table 1: the router
clock is 400 MHz (2.5 ns/cycle); optical bit rates are 2.5, 3.3 and 5 Gbps.
A 64-byte packet (512 bits) therefore serializes in ~41 cycles at 5 Gbps,
~62 at 3.3 Gbps and ~82 at 2.5 Gbps — the bit-rate-dependent service times
at the heart of the DPM latency/power trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["OpticalLinkTiming", "ChannelId"]


@dataclass(frozen=True)
class ChannelId:
    """Identity of one optical channel: source board, wavelength, destination."""

    src: int
    wavelength: int
    dst: int

    def __str__(self) -> str:
        return f"b{self.src}-λ{self.wavelength}->b{self.dst}"


@dataclass(frozen=True)
class OpticalLinkTiming:
    """Timing calculator for the optical plane.

    Parameters
    ----------
    clock_ghz:
        Router clock (0.4 GHz per Table 1); one cycle = 1/clock ns.
    fiber_latency_cycles:
        Propagation + mux/demux latency per traversal.  The paper targets
        board-to-board/rack-to-rack distances of a few metres; 8 cycles
        (20 ns ≈ 4 m of fiber) is the default.
    """

    clock_ghz: float = 0.4
    fiber_latency_cycles: int = 8

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ConfigurationError(f"clock must be positive, got {self.clock_ghz}")
        if self.fiber_latency_cycles < 0:
            raise ConfigurationError("fiber latency cannot be negative")

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.clock_ghz

    def serialization_cycles(self, bits: int, bit_rate_gbps: float) -> float:
        """Cycles to clock ``bits`` onto the fiber at ``bit_rate_gbps``."""
        if bits <= 0:
            raise ConfigurationError(f"bits must be positive, got {bits}")
        if bit_rate_gbps <= 0:
            raise ConfigurationError(
                f"bit rate must be positive, got {bit_rate_gbps}"
            )
        ns = bits / bit_rate_gbps
        return ns / self.cycle_ns

    def packet_service_cycles(self, size_bytes: int, bit_rate_gbps: float) -> float:
        """Serialization time of a whole packet (optical = packet granular)."""
        return self.serialization_cycles(size_bytes * 8, bit_rate_gbps)

    def effective_gbps(self, channel_count: int, bit_rate_gbps: float) -> float:
        """Aggregate bandwidth of ``channel_count`` parallel channels."""
        if channel_count < 0:
            raise ConfigurationError("channel count cannot be negative")
        return channel_count * bit_rate_gbps
