"""Scalable Remote Optical Super-Highway (SRS).

The structural state of E-RAPID's optical plane: every board's transmitter
array, every board's fixed-λ receivers, the passive couplers, and the
**wavelength ownership map** — for each destination board *d* and each
wavelength λ, which source board currently owns the (λ, d) channel.

The ownership map *is* the bandwidth allocation: DBR (§3.2) re-assigns
owners; the SRS turns the corresponding port lasers on/off and enforces the
coupler collision invariant.  The SRS holds no simulation processes — the
engines drive it and read it.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Tuple

from repro.errors import WavelengthError
from repro.network.topology import ERapidTopology
from repro.optics.coupler import PassiveCoupler, validate_coupler_plane
from repro.optics.optical_link import ChannelId
from repro.optics.receiver import OpticalReceiver
from repro.optics.rwa import StaticRWA
from repro.optics.transmitter import TransmitterArray

__all__ = ["SuperHighway"]

#: Shared empty result for pairs owning no channels (avoids a list
#: allocation per miss on the owner index's hottest query).
_NO_WAVELENGTHS: List[int] = []


class SuperHighway:
    """All-optical inter-board plane for an R(1, B, D) system."""

    def __init__(self, topology: ERapidTopology) -> None:
        self.topology = topology
        self.boards = topology.boards
        self.wavelengths = topology.wavelengths
        self.rwa = StaticRWA(self.boards)
        self.tx_arrays: List[TransmitterArray] = [
            TransmitterArray(b, self.wavelengths, self.boards)
            for b in range(self.boards)
        ]
        self.receivers: List[List[OpticalReceiver]] = [
            [OpticalReceiver(b, w) for w in range(self.wavelengths)]
            for b in range(self.boards)
        ]
        self.couplers: List[PassiveCoupler] = [
            PassiveCoupler(d, self.wavelengths) for d in range(self.boards)
        ]
        #: owner[d][λ] — source board holding channel (λ, d); None = dark.
        self.owner: List[List[Optional[int]]] = [
            [None] * self.wavelengths for _ in range(self.boards)
        ]
        #: Hard-failed channels (dead laser array port / dead receiver):
        #: permanently dark until repaired, and never grantable.
        self.failed: set = set()
        self.grants = 0
        #: Owner index: (src, dst) -> sorted wavelengths src currently owns
        #: toward dst.  Maintained by :meth:`grant` (failures route through
        #: it) so per-pair channel lookups are O(owned) instead of O(W).
        self._owned: Dict[Tuple[int, int], List[int]] = {}
        self.reset_to_static()

    # ------------------------------------------------------------------
    # Bring-up / reset
    # ------------------------------------------------------------------
    def reset_to_static(self) -> None:
        """Restore the paper's static RWA (Figure 1)."""
        for b in range(self.boards):
            for tx in self.tx_arrays[b].transmitters:
                for p in range(self.boards):
                    tx.set_port(p, False)
        for d in range(self.boards):
            for w in range(self.wavelengths):
                self.owner[d][w] = None
        self._owned.clear()
        for s in range(self.boards):
            for d in range(self.boards):
                if s == d:
                    continue
                w = self.rwa.wavelength_for(s, d)
                if (w, d) in self.failed:
                    continue  # failed channels stay dark across resets
                self.tx_arrays[s][w].set_port(d, True)
                self.owner[d][w] = s
                insort(self._owned.setdefault((s, d), []), w)
        self.validate()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def owner_of(self, dst: int, wavelength: int) -> Optional[int]:
        self._check(dst, wavelength)
        return self.owner[dst][wavelength]

    def owned_wavelengths(self, src: int, dst: int) -> List[int]:
        """Wavelengths ``src`` currently owns toward ``dst``, ascending.

        An O(1) dict hit on the maintained owner index (the returned list
        is the live index entry — callers must not mutate it).
        """
        return self._owned.get((src, dst)) or _NO_WAVELENGTHS

    def channels_from(self, src: int, dst: int) -> List[ChannelId]:
        """Every channel currently owned by ``src`` toward ``dst``."""
        self._check(dst, 0)
        self._check(src, 0)
        return [ChannelId(src, w, dst) for w in self.owned_wavelengths(src, dst)]

    def channels_into(self, dst: int) -> List[ChannelId]:
        """Every live channel arriving at ``dst``."""
        self._check(dst, 0)
        return [
            ChannelId(owner, w, dst)
            for w, owner in enumerate(self.owner[dst])
            if owner is not None
        ]

    def all_channels(self) -> List[ChannelId]:
        return [ch for d in range(self.boards) for ch in self.channels_into(d)]

    def lasers_on(self) -> int:
        """Total lit port lasers across all boards."""
        return sum(array.lasers_on() for array in self.tx_arrays)

    def receiver(self, board: int, wavelength: int) -> OpticalReceiver:
        self._check(board, wavelength)
        return self.receivers[board][wavelength]

    # ------------------------------------------------------------------
    # Reconfiguration (the Link-Response-stage actuation)
    # ------------------------------------------------------------------
    def grant(self, dst: int, wavelength: int, new_owner: Optional[int]) -> None:
        """Re-assign channel (λ=``wavelength``, ``dst``) to ``new_owner``.

        ``None`` darkens the channel (dynamic link shutdown).  The old
        owner's port laser is switched off, the new owner's on, and the
        coupler plane re-validated.  Self-loops are rejected: a board never
        needs an optical channel to itself.
        """
        self._check(dst, wavelength)
        if new_owner is not None:
            self._check(new_owner, 0)
            if new_owner == dst:
                raise WavelengthError(
                    f"board {dst} cannot own an optical channel to itself"
                )
        if new_owner is not None and (wavelength, dst) in self.failed:
            raise WavelengthError(
                f"channel (λ{wavelength}, board {dst}) is failed; repair it "
                "before granting"
            )
        old_owner = self.owner[dst][wavelength]
        if old_owner == new_owner:
            return
        if old_owner is not None:
            self.tx_arrays[old_owner][wavelength].set_port(dst, False)
            self._owned[(old_owner, dst)].remove(wavelength)
        if new_owner is not None:
            self.tx_arrays[new_owner][wavelength].set_port(dst, True)
            insort(self._owned.setdefault((new_owner, dst), []), wavelength)
        self.owner[dst][wavelength] = new_owner
        self.grants += 1
        self.couplers[dst].validate(self.tx_arrays)

    def fail_channel(self, dst: int, wavelength: int) -> Optional[int]:
        """Hard-fail channel (λ, dst): laser off, unowned, ungrantable.

        Returns the owner that lost the channel (None if it was dark).
        """
        self._check(dst, wavelength)
        old_owner = self.owner[dst][wavelength]
        self.grant(dst, wavelength, None)
        self.failed.add((wavelength, dst))
        return old_owner

    def repair_channel(self, dst: int, wavelength: int) -> None:
        """Clear a failure; the channel becomes grantable again (it stays
        dark until DBR or a reset re-assigns it)."""
        self._check(dst, wavelength)
        self.failed.discard((wavelength, dst))

    def is_failed(self, dst: int, wavelength: int) -> bool:
        self._check(dst, wavelength)
        return (wavelength, dst) in self.failed

    def validate(self) -> List[ChannelId]:
        """Validate the whole coupler plane against the ownership map."""
        live = validate_coupler_plane(self.tx_arrays, self.boards, self.wavelengths)
        expected = {
            (ch.src, ch.wavelength, ch.dst) for ch in self.all_channels()
        }
        if set(live) != expected:  # pragma: no cover - internal consistency
            raise WavelengthError(
                f"laser plane desynchronized from ownership map: "
                f"lasers={sorted(live)} owners={sorted(expected)}"
            )
        indexed = {
            (s, w, d) for (s, d), ws in self._owned.items() for w in ws
        }
        if indexed != expected:  # pragma: no cover - internal consistency
            raise WavelengthError(
                f"owner index desynchronized from ownership map: "
                f"index={sorted(indexed)} owners={sorted(expected)}"
            )
        return [ChannelId(*t) for t in live]

    # ------------------------------------------------------------------
    def _check(self, board: int, wavelength: int) -> None:
        if not 0 <= board < self.boards:
            raise WavelengthError(f"board {board} out of range [0,{self.boards})")
        if not 0 <= wavelength < self.wavelengths:
            raise WavelengthError(
                f"wavelength {wavelength} out of range [0,{self.wavelengths})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SuperHighway B={self.boards} W={self.wavelengths} "
            f"lasers_on={self.lasers_on()}>"
        )
