"""Optical receivers.

Each board carries W fixed-wavelength receivers behind a demultiplexer
(§2.1: "The multiplexed signal received at the board is demultiplexed such
that every optical receiver detects a wavelength").  A receiver consists of
photodetector + TIA + CDR; the CDR must *re-lock* whenever the transmitter
scales the bit rate (§3.1), and the link controller can power-gate the
whole receiver when its wavelength goes dark.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PowerModelError
from repro.optics.wavelength import Wavelength

__all__ = ["OpticalReceiver"]


class OpticalReceiver:
    """One fixed-λ receiver (photodetector + TIA + CDR) on a board."""

    def __init__(self, board: int, wavelength: int, bit_rate_gbps: float = 5.0) -> None:
        self.board = board
        self.wavelength = Wavelength(wavelength)
        self._bit_rate_gbps = float(bit_rate_gbps)
        self._powered = True
        #: Simulation time until which the CDR is re-locking (link unusable).
        self.relock_until: float = 0.0
        self.relock_count = 0
        self.power_toggles = 0

    # ------------------------------------------------------------------
    @property
    def bit_rate_gbps(self) -> float:
        return self._bit_rate_gbps

    @property
    def powered(self) -> bool:
        return self._powered

    def set_powered(self, on: bool) -> bool:
        """Gate the receiver; returns True if the state changed."""
        if self._powered == on:
            return False
        self._powered = on
        self.power_toggles += 1
        return True

    def reclock(self, bit_rate_gbps: float, now: float, relock_cycles: float) -> None:
        """Re-lock the CDR to a new bit rate (triggered by the control flit).

        The receiver is unusable until ``now + relock_cycles`` — the paper's
        CDR re-lock penalty (12 cycles frequency-only; the transmitter side
        conservatively stalls 65 cycles for the voltage ramp).
        """
        if bit_rate_gbps <= 0:
            raise PowerModelError(f"bit rate must be positive, got {bit_rate_gbps}")
        if not self._powered:
            raise PowerModelError(
                f"reclocking powered-down receiver b{self.board}/{self.wavelength}"
            )
        self._bit_rate_gbps = float(bit_rate_gbps)
        self.relock_until = now + relock_cycles
        self.relock_count += 1

    def usable(self, now: float) -> bool:
        """Whether the receiver can currently detect packets."""
        return self._powered and now >= self.relock_until

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self._powered else "off"
        return f"<Rx b{self.board} {self.wavelength} {self._bit_rate_gbps}Gbps {state}>"
