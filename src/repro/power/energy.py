"""System-level energy accounting.

An :class:`EnergyAccountant` owns one time-weighted power signal per optical
channel and integrates the system total.  The engines call
:meth:`set_channel_power` whenever a link's state changes (busy/idle,
level change, laser on/off); reports read average milliwatts over the
measurement window — the y-axis of the paper's power plots.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.errors import MeasurementError
from repro.sim.stats import TimeWeighted

__all__ = ["EnergyAccountant"]


class EnergyAccountant:
    """Integrates per-channel instantaneous power into system energy."""

    def __init__(self, cycle_ns: float = 2.5) -> None:
        if cycle_ns <= 0:
            raise MeasurementError(f"cycle_ns must be positive, got {cycle_ns}")
        self.cycle_ns = cycle_ns
        self._signals: Dict[Hashable, TimeWeighted] = {}

    # ------------------------------------------------------------------
    def set_channel_power(self, key: Hashable, now: float, mw: float) -> None:
        """Channel ``key`` draws ``mw`` from ``now`` until further notice."""
        if mw < 0:
            raise MeasurementError(f"negative power {mw} for {key!r}")
        sig = self._signals.get(key)
        if sig is None:
            self._signals[key] = TimeWeighted(now, mw)
        else:
            sig.update(now, mw)

    def channel_power(self, key: Hashable) -> float:
        """Current draw of one channel (0 for unknown channels)."""
        sig = self._signals.get(key)
        return sig.value if sig is not None else 0.0

    # ------------------------------------------------------------------
    def total_now_mw(self) -> float:
        """Instantaneous system power."""
        return sum(sig.value for sig in self._signals.values())

    def average_mw(self, now: float) -> float:
        """All-history average system power up to ``now``."""
        return sum(sig.average(now) for sig in self._signals.values())

    def window_average_mw(self, now: float) -> float:
        """Average system power since the last window reset."""
        return sum(sig.window(now) for sig in self._signals.values())

    def reset_window(self, now: float) -> None:
        """Start the measurement window (called when warm-up ends)."""
        for sig in self._signals.values():
            sig.reset_window(now)

    def window_energy_mj(self, now: float, window_start: float) -> float:
        """Energy over [window_start, now] in millijoules."""
        span_cycles = now - window_start
        if span_cycles < 0:
            raise MeasurementError("window end precedes start")
        seconds = span_cycles * self.cycle_ns * 1e-9
        return self.window_average_mw(now) * seconds

    def per_channel_average_mw(self, now: float) -> Dict[Hashable, float]:
        """Window-average draw per channel (diagnostics/reporting)."""
        return {k: sig.window(now) for k, sig in self._signals.items()}

    def __len__(self) -> int:
        return len(self._signals)
