"""Bit-rate / voltage transition penalties (DVS mechanics).

§3.1: scaling follows [Chen et al., HPCA-05] — the link stays operational
during the *slow* voltage ramp (speed-ups raise the voltage first, slow-
downs lower the frequency first), so the stall the network observes is the
CDR re-lock after the *frequency* step plus the conservative link-disable
the paper applies: "after the control bit rate packet is transmitted, the
transmitter conservatively disables the link for 65 cycles".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PowerModelError
from repro.power.levels import PowerLevel, PowerLevelTable

__all__ = ["TransitionModel"]


@dataclass(frozen=True)
class TransitionModel:
    """Cycle costs of changing power level.

    Parameters
    ----------
    frequency_relock_cycles:
        CDR re-lock after a frequency step (12 cycles in [12]).
    voltage_transition_cycles:
        Link-disable per adjacent-level transition (65 cycles — the paper's
        conservative choice; the voltage ramp dominates the 12-cycle
        re-lock, so the stall equals this value per level stepped).
    """

    frequency_relock_cycles: int = 12
    voltage_transition_cycles: int = 65

    def __post_init__(self) -> None:
        if self.frequency_relock_cycles < 0 or self.voltage_transition_cycles < 0:
            raise PowerModelError("transition penalties cannot be negative")

    def stall_cycles(
        self, table: PowerLevelTable, current: PowerLevel, target: PowerLevel
    ) -> int:
        """Cycles the link is disabled while moving ``current`` -> ``target``.

        Zero when the level is unchanged; otherwise the per-adjacent-level
        voltage ramp (which subsumes the frequency re-lock) times the number
        of levels stepped.
        """
        steps = table.steps_between(current, target)
        if steps == 0:
            return 0
        per_step = max(
            self.voltage_transition_cycles, self.frequency_relock_cycles
        )
        return per_step * steps

    def receiver_relock_cycles(self) -> int:
        """Cycles the receiver CDR needs to re-lock after the control flit."""
        return max(self.frequency_relock_cycles, self.voltage_transition_cycles)
