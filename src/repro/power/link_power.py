"""Per-link power accounting.

The figures in §4.2 report the optical plane's power consumption.  DESIGN.md
§2 derives the accounting that reproduces all of the paper's relative
claims simultaneously:

    P_link(t) = 0                                   if the laser is off
              = P(level) * busy + P_idle * (1-busy) if the laser is on

with ``P_idle = idle_fraction * P(level)`` modelling laser bias / receiver
standby of an enabled-but-idle channel (default 2 %).  Busy means a packet
is on the wire.  Power therefore tracks (a) how many channels are lit —
what DBR changes — and (b) the operating level — what DPM changes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PowerModelError
from repro.power.levels import PowerLevel

__all__ = ["LinkPowerModel"]


@dataclass(frozen=True)
class LinkPowerModel:
    """Maps (enabled, level, busy-fraction) to milliwatts."""

    idle_fraction: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.idle_fraction <= 1.0:
            raise PowerModelError(
                f"idle_fraction must be in [0,1], got {self.idle_fraction}"
            )

    def instantaneous_mw(
        self, enabled: bool, level: PowerLevel, busy: bool
    ) -> float:
        """Power right now (piecewise-constant between events)."""
        if not enabled:
            return 0.0
        if busy:
            return level.link_power_mw
        return self.idle_fraction * level.link_power_mw

    def average_mw(
        self, enabled: bool, level: PowerLevel, utilization: float
    ) -> float:
        """Window-average power for a link busy ``utilization`` of the time."""
        if not 0.0 <= utilization <= 1.0 + 1e-9:
            raise PowerModelError(
                f"utilization must be in [0,1], got {utilization}"
            )
        if not enabled:
            return 0.0
        u = min(1.0, utilization)
        return level.link_power_mw * (u + self.idle_fraction * (1.0 - u))

    def energy_mj(
        self,
        enabled: bool,
        level: PowerLevel,
        utilization: float,
        duration_cycles: float,
        cycle_ns: float = 2.5,
    ) -> float:
        """Energy over a window, in millijoules (mW × seconds)."""
        if duration_cycles < 0:
            raise PowerModelError("duration cannot be negative")
        seconds = duration_cycles * cycle_ns * 1e-9
        return self.average_mw(enabled, level, utilization) * seconds
