"""Discrete power levels.

§3.1: "We consider 3 power levels P_low, P_mid and P_high corresponding to
bit rates 2.5 Gbps, 3.3 Gbps and 5 Gbps" with Table 1's totals:

    P_low   2.5 Gbps @ 0.45 V ->  8.6  mW
    P_mid   3.3 Gbps @ 0.60 V -> 26.0  mW
    P_high  5.0 Gbps @ 0.90 V -> 43.03 mW

The table also supports synthesizing more levels for the paper's
future-work ablation ("More power levels and corresponding bit rates can
further improve the performance").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import PowerModelError
from repro.power.components import ComponentPower

__all__ = ["PowerLevel", "PowerLevelTable", "TABLE1_LEVELS"]


@dataclass(frozen=True)
class PowerLevel:
    """One (bit rate, supply voltage, link power) operating point."""

    name: str
    bit_rate_gbps: float
    vdd: float
    link_power_mw: float

    def __post_init__(self) -> None:
        if self.bit_rate_gbps <= 0 or self.vdd <= 0 or self.link_power_mw <= 0:
            raise PowerModelError(f"power level {self.name!r} must be positive")


#: The paper's Table 1 levels.
TABLE1_LEVELS: tuple[PowerLevel, ...] = (
    PowerLevel("P_low", 2.5, 0.45, 8.6),
    PowerLevel("P_mid", 3.3, 0.60, 26.0),
    PowerLevel("P_high", 5.0, 0.90, 43.03),
)


class PowerLevelTable:
    """An ordered ladder of power levels (ascending bit rate)."""

    def __init__(self, levels: Sequence[PowerLevel] = TABLE1_LEVELS) -> None:
        if len(levels) < 1:
            raise PowerModelError("need at least one power level")
        rates = [l.bit_rate_gbps for l in levels]
        if sorted(rates) != rates or len(set(rates)) != len(rates):
            raise PowerModelError(
                f"levels must have strictly ascending bit rates, got {rates}"
            )
        self.levels: List[PowerLevel] = list(levels)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.levels)

    def __getitem__(self, idx: int) -> PowerLevel:
        return self.levels[idx]

    @property
    def lowest(self) -> PowerLevel:
        return self.levels[0]

    @property
    def highest(self) -> PowerLevel:
        return self.levels[-1]

    def index_of(self, level: PowerLevel) -> int:
        try:
            return self.levels.index(level)
        except ValueError:
            raise PowerModelError(f"{level!r} not in this table") from None

    def up(self, level: PowerLevel) -> PowerLevel:
        """Next higher level (saturates at the top)."""
        idx = self.index_of(level)
        return self.levels[min(idx + 1, len(self.levels) - 1)]

    def down(self, level: PowerLevel) -> PowerLevel:
        """Next lower level (saturates at the bottom)."""
        idx = self.index_of(level)
        return self.levels[max(idx - 1, 0)]

    def steps_between(self, a: PowerLevel, b: PowerLevel) -> int:
        """Number of adjacent-level transitions from a to b (absolute)."""
        return abs(self.index_of(a) - self.index_of(b))

    # ------------------------------------------------------------------
    @classmethod
    def synthesize(cls, n_levels: int) -> "PowerLevelTable":
        """Build an ``n_levels`` ladder between the Table-1 extremes.

        Bit rate and V_DD interpolate linearly between (2.5 Gbps, 0.45 V)
        and (5 Gbps, 0.9 V); power follows the component scaling laws,
        renormalized so the top level reproduces the published 43.03 mW.
        Used by the "more power levels" ablation.
        """
        if n_levels < 2:
            raise PowerModelError(f"need >= 2 levels, got {n_levels}")
        model = ComponentPower()
        lo, hi = TABLE1_LEVELS[0], TABLE1_LEVELS[-1]
        scale = hi.link_power_mw / model.link_mw(hi.vdd, hi.bit_rate_gbps)
        levels = []
        for i in range(n_levels):
            f = i / (n_levels - 1)
            br = lo.bit_rate_gbps + f * (hi.bit_rate_gbps - lo.bit_rate_gbps)
            vdd = lo.vdd + f * (hi.vdd - lo.vdd)
            power = model.link_mw(vdd, br) * scale
            levels.append(PowerLevel(f"P{i}", round(br, 3), round(vdd, 3), power))
        return cls(levels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PowerLevelTable {[l.name for l in self.levels]}>"
