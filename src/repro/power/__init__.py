"""Opto-electronic power models: component scaling laws, the Table-1 power
levels, DVS transition penalties, per-link accounting and system energy."""

from repro.power.components import (
    ComponentPower,
    REFERENCE_BIT_RATE_GBPS,
    REFERENCE_COMPONENTS_MW,
    REFERENCE_VDD,
)
from repro.power.energy import EnergyAccountant
from repro.power.levels import PowerLevel, PowerLevelTable, TABLE1_LEVELS
from repro.power.link_power import LinkPowerModel
from repro.power.transitions import TransitionModel

__all__ = [
    "ComponentPower",
    "EnergyAccountant",
    "LinkPowerModel",
    "PowerLevel",
    "PowerLevelTable",
    "REFERENCE_BIT_RATE_GBPS",
    "REFERENCE_COMPONENTS_MW",
    "REFERENCE_VDD",
    "TABLE1_LEVELS",
    "TransitionModel",
]
