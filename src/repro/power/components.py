"""Opto-electronic component power models.

§3.1/§4.1 of the paper: an optical link = transmitter (VCSEL + driver) and
receiver (photodetector + TIA + CDR), with the scaling trends

    VCSEL        ∝ V_DD
    VCSEL driver ∝ V_DD² · BR
    photodetector∝ V_DD · BR        (not stated; follows the TIA front-end)
    TIA          ∝ V_DD · BR
    CDR          ∝ V_DD² · BR

anchored at the paper's 5 Gbps / 0.9 V operating point: VCSEL 1.5 µW,
driver 1.23 mW, photodetector 1.4 µW, TIA 25.02 mW, CDR 17.05 mW (total
≈ 43.03 mW, Table 1).

Note: the paper's Table 1 totals for the two lower levels (8.6 mW @
2.5 Gbps/0.45 V and 26 mW @ 3.3 Gbps/0.6 V) come from the authors' full
device models; our scaling laws land on 8.6 mW exactly for the low level
but underestimate the mid level.  The evaluation therefore uses the paper's
*published* level totals (:mod:`repro.power.levels`), while this component
model serves the per-component breakdown (Table 1 bench) and the
"more power levels" ablation, where only relative shape matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import PowerModelError

__all__ = [
    "ComponentPower",
    "REFERENCE_VDD",
    "REFERENCE_BIT_RATE_GBPS",
    "REFERENCE_COMPONENTS_MW",
]

#: Table 1 anchor operating point.
REFERENCE_VDD = 0.9
REFERENCE_BIT_RATE_GBPS = 5.0

#: Component power at the anchor point, in mW (Table 1 / §4.1 text).
REFERENCE_COMPONENTS_MW: Dict[str, float] = {
    "vcsel": 0.0015,        # 1.5 µW for a 64-byte packet
    "vcsel_driver": 1.23,
    "photodetector": 0.0014,  # 1.4 µW
    "tia": 25.02,
    "cdr": 17.05,
}

#: Scaling exponents (v_exp, br_exp) per component.
_SCALING: Dict[str, tuple[float, float]] = {
    "vcsel": (1.0, 0.0),
    "vcsel_driver": (2.0, 1.0),
    "photodetector": (1.0, 1.0),
    "tia": (1.0, 1.0),
    "cdr": (2.0, 1.0),
}


@dataclass(frozen=True)
class ComponentPower:
    """Closed-form component power model with the paper's scaling laws."""

    reference_vdd: float = REFERENCE_VDD
    reference_bit_rate_gbps: float = REFERENCE_BIT_RATE_GBPS

    def __post_init__(self) -> None:
        if self.reference_vdd <= 0 or self.reference_bit_rate_gbps <= 0:
            raise PowerModelError("reference operating point must be positive")

    def component_mw(self, name: str, vdd: float, bit_rate_gbps: float) -> float:
        """Power of one component at (``vdd``, ``bit_rate_gbps``) in mW."""
        self._check_point(vdd, bit_rate_gbps)
        try:
            ref = REFERENCE_COMPONENTS_MW[name]
            v_exp, br_exp = _SCALING[name]
        except KeyError:
            raise PowerModelError(
                f"unknown component {name!r}; known: {sorted(_SCALING)}"
            ) from None
        v_ratio = vdd / self.reference_vdd
        br_ratio = bit_rate_gbps / self.reference_bit_rate_gbps
        return ref * (v_ratio ** v_exp) * (br_ratio ** br_exp)

    def breakdown_mw(self, vdd: float, bit_rate_gbps: float) -> Dict[str, float]:
        """All component powers at an operating point, in mW."""
        return {
            name: self.component_mw(name, vdd, bit_rate_gbps)
            for name in REFERENCE_COMPONENTS_MW
        }

    def transmitter_mw(self, vdd: float, bit_rate_gbps: float) -> float:
        """VCSEL + driver (§3.1: 'transmitter power is consumed at the laser
        and laser driver/modulator')."""
        b = self.breakdown_mw(vdd, bit_rate_gbps)
        return b["vcsel"] + b["vcsel_driver"]

    def receiver_mw(self, vdd: float, bit_rate_gbps: float) -> float:
        """Photodetector + TIA + CDR."""
        b = self.breakdown_mw(vdd, bit_rate_gbps)
        return b["photodetector"] + b["tia"] + b["cdr"]

    def link_mw(self, vdd: float, bit_rate_gbps: float) -> float:
        """Total link power (transmitter + receiver)."""
        return self.transmitter_mw(vdd, bit_rate_gbps) + self.receiver_mw(
            vdd, bit_rate_gbps
        )

    @staticmethod
    def _check_point(vdd: float, bit_rate_gbps: float) -> None:
        if vdd <= 0:
            raise PowerModelError(f"V_DD must be positive, got {vdd}")
        if bit_rate_gbps <= 0:
            raise PowerModelError(f"bit rate must be positive, got {bit_rate_gbps}")
