"""System configuration.

:class:`RouterParams` transcribes Table 1's electrical router model;
:class:`ControlParams` sets the Lock-Step control-plane timing;
:class:`ERapidConfig` bundles everything one simulation run needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.network.topology import ERapidTopology
from repro.optics.optical_link import OpticalLinkTiming
from repro.power.levels import PowerLevelTable
from repro.power.link_power import LinkPowerModel
from repro.power.transitions import TransitionModel
from repro.core.policies import ReconfigPolicy, NP_NB

__all__ = ["RouterParams", "ControlParams", "ERapidConfig"]


@dataclass(frozen=True, slots=True)
class RouterParams:
    """Electrical router model (Table 1, after the SGI Spider chip)."""

    #: Channel width in bits.
    channel_bits: int = 16
    #: Router/link clock in GHz (400 MHz).
    clock_ghz: float = 0.4
    #: One cycle each for RC, VA, SA, ST.
    pipeline_cycles: int = 4
    #: Packet size (64 bytes -> 8 flits).
    packet_bytes: int = 64
    flit_bytes: int = 8
    #: Credit round-trip channel delay.
    credit_cycles: int = 1
    #: Virtual channels per input port (detailed engine).
    n_vcs: int = 2
    #: Flit buffer depth per VC.  Table 1 says "single flit buffer", but a
    #: depth-1 buffer cannot cover the credit round trip (flit serialization
    #: + wire + credit return), which would throttle the port below the
    #: nominal 6.4 Gbps the same table advertises; depth 2 is the minimum
    #: that sustains line rate, so it is the default.
    buf_depth: int = 2

    def __post_init__(self) -> None:
        if min(self.channel_bits, self.packet_bytes, self.flit_bytes) <= 0:
            raise ConfigurationError("router sizes must be positive")
        if self.clock_ghz <= 0:
            raise ConfigurationError("clock must be positive")

    @property
    def port_gbps(self) -> float:
        """Unidirectional electrical port bandwidth: 16 b x 0.4 GHz = 6.4."""
        return self.channel_bits * self.clock_ghz

    @property
    def flits_per_packet(self) -> int:
        return self.packet_bytes // self.flit_bytes

    @property
    def packet_serialization_cycles(self) -> int:
        """Cycles to clock one packet through an electrical port (32)."""
        return (self.packet_bytes * 8) // self.channel_bits


@dataclass(frozen=True, slots=True)
class ControlParams:
    """Lock-Step control-plane timing (§3.2 / Figure 4)."""

    #: Reconfiguration window R_w (2000 cycles, §3.1).
    window_cycles: int = 2000
    #: Per-hop latency of the on-board RC-LC ring.
    lc_hop_cycles: int = 4
    #: Per-hop latency of the board-to-board RC-RC electrical ring.
    rc_hop_cycles: int = 16
    #: Local classify/decide time at the Reconfigure stage.
    compute_cycles: int = 1

    def __post_init__(self) -> None:
        if self.window_cycles < 1:
            raise ConfigurationError("window_cycles must be >= 1")
        if min(self.lc_hop_cycles, self.rc_hop_cycles, self.compute_cycles) < 0:
            raise ConfigurationError("control latencies cannot be negative")

    def power_cycle_latency(self, nodes_per_board: int) -> int:
        """Power_Request LC-ring traversal time."""
        return (nodes_per_board + 1) * self.lc_hop_cycles

    def dbr_stage_latencies(self, boards: int, nodes_per_board: int) -> dict:
        """Per-stage latencies of the 5-stage DBR cycle."""
        lc_ring = (nodes_per_board + 1) * self.lc_hop_cycles
        rc_ring = boards * self.rc_hop_cycles
        return {
            "link_request": lc_ring,
            "board_request": rc_ring,
            "reconfigure": self.compute_cycles,
            "board_response": rc_ring,
            "link_response": lc_ring,
        }

    def dbr_cycle_latency(self, boards: int, nodes_per_board: int) -> int:
        """Total latency from window boundary to grant actuation."""
        return sum(self.dbr_stage_latencies(boards, nodes_per_board).values())


@dataclass(frozen=True, slots=True)
class ERapidConfig:
    """Everything one E-RAPID simulation run needs."""

    topology: ERapidTopology = field(
        default_factory=lambda: ERapidTopology(boards=8, nodes_per_board=8)
    )
    router: RouterParams = RouterParams()
    control: ControlParams = ControlParams()
    optical: OpticalLinkTiming = OpticalLinkTiming()
    policy: ReconfigPolicy = NP_NB
    power_levels: PowerLevelTable = field(default_factory=PowerLevelTable)
    link_power: LinkPowerModel = LinkPowerModel()
    transitions: TransitionModel = TransitionModel()
    #: Transmitter queue capacity per board pair, in packets.  Buffer_util
    #: is measured against this (the paper's per-LC buffer counters).
    tx_queue_capacity: int = 16
    #: Extra cycles paid when a DPM-slept laser wakes for a new packet.
    wake_cycles: int = 65
    seed: int = 1

    def __post_init__(self) -> None:
        if self.tx_queue_capacity < 1:
            raise ConfigurationError("tx_queue_capacity must be >= 1")
        if self.wake_cycles < 0:
            raise ConfigurationError("wake_cycles cannot be negative")
        if self.router.packet_bytes % self.router.flit_bytes:
            raise ConfigurationError("packet size must be a multiple of flit size")

    def with_policy(self, policy: ReconfigPolicy) -> "ERapidConfig":
        """A copy of this config running a different design-space corner."""
        return replace(self, policy=policy)

    def describe(self) -> str:
        t = self.topology
        return (
            f"E-RAPID R({t.clusters},{t.boards},{t.nodes_per_board}) "
            f"[{self.policy.name}] R_w={self.control.window_cycles} "
            f"levels={len(self.power_levels)}"
        )
