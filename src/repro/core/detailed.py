"""The detailed (flit-level, cycle-accurate) E-RAPID engine.

Implements Figure 2(a) literally: each board is one
:class:`~repro.network.router.VCRouter` whose first D ports connect the
node NIs (send + receive) and whose last W ports connect the optical plane
— output side to the wavelength-λ transmitter, input side to the fixed-λ
receiver.  Flits interleave in the electrical domain under credit-based
flow control; whole packets interleave in the optical domain (§2.1), so a
packet is reassembled at the transmitter queue before serialization onto
the fiber at the optical bit rate.

This engine runs the static RWA (no DBR — wavelength re-allocation lives
in the fast engine) but fully supports **DPM**: each transmitter carries a
flit-level link controller that scales its bit rate against the policy's
thresholds every R_w, paying the DVS stall, and the per-channel power is
integrated by the same accountant the fast engine uses.  It exists to
cross-validate the fast engine's electrical-domain and power-management
abstractions at flit granularity, not to run the full sweeps.

Execution model — cycle-synchronous clock loop
----------------------------------------------
The electrical substrate (routers, NIs, channels, credits) is driven by a
single :class:`~repro.sim.cycle.CycleDriver` tick instead of one kernel
process per component.  Each tick runs four phases in a fixed order:

1. **Credits** — apply every due entry of the shared credit due-queue
   (upstream restores from router traversal and sink ejection).
2. **Deliveries** — deliver every due in-flight flit from the shared
   channel due-queue into its sink's ``receive_flit``.
3. **Routers** — on integer cycle boundaries only, tick each board's
   router in board order, skipping routers whose input VCs are all idle
   (``busy_vcs == 0`` — a provable no-op cycle).
4. **NI pumps** — tick each :class:`ClockedSourceNI` whose ``next_due``
   has arrived, in creation order (node injectors first, then the
   receiver-side re-injection NIs).  Pumps woken at fractional times (by
   injection draws or fiber relays) poll on their own ``wake + k`` grid,
   exactly like the coroutine NIs' ``timeout(1)`` chains did.

The tick is scheduled through the kernel's priority-1 continuation class,
so every priority-0 event at time *t* (injection draws, packet hand-offs,
fiber relays, DPM window decisions) is visible to the tick at *t* — the
same visibility order the per-component processes had.  The coarse parts
of the model stay event-driven and unchanged: injector processes, optical
serialization processes, the DPM window process, and the run/drain phase
structure.  Results are bit-identical to the frozen process-based engine
(``repro.perf.legacy_detailed``), which ``tests/test_detailed_equivalence``
enforces field-for-field on :class:`RunResult`.
"""

from __future__ import annotations

from math import inf
from typing import Dict, List

from repro.core.config import ERapidConfig
from repro.core.dpm import DpmAction, LinkWindowStats, dpm_decide
from repro.errors import ConfigurationError
from repro.metrics.collector import Collector, MeasurementPlan, RunResult
from repro.network.channel import Delivery
from repro.network.interface import ClockedSinkNI, ClockedSourceNI, CreditReturn, SinkNI
from repro.network.packet import Packet
from repro.network.router import VCRouter
from repro.network.routing import ibi_routing
from repro.optics.rwa import StaticRWA
from repro.power.energy import EnergyAccountant
from repro.power.levels import PowerLevel
from repro.sim.cycle import CycleDriver, DueQueue
from repro.sim.kernel import Simulator
from repro.sim.stats import TimeWeighted
from repro.sim.queues import MonitoredStore
from repro.traffic.injection import TrafficSource
from repro.traffic.workload import WorkloadSpec

__all__ = ["DetailedEngine"]


class _ClockedTxSink(ClockedSinkNI):
    """Transmitter-port sink: reassembles flits, queues whole packets."""

    __slots__ = ("queue",)

    def __init__(
        self,
        sim: Simulator,
        delivery_ring: DueQueue[Delivery],
        credit_ring: DueQueue[CreditReturn],
        queue: MonitoredStore,
        name: str,
    ) -> None:
        super().__init__(sim, delivery_ring, credit_ring, on_packet=None, name=name)
        self.queue = queue

    def receive_flit(self, flit, port):  # noqa: D102 - see SinkNI
        # Don't stamp delivered_at here: the packet is only crossing into
        # the optical domain.  Tail -> whole packet is reassembled.
        self.flits_received += 1
        if self._credit_restore is not None:
            self.credit_ring.push(
                self.sim.now + 1.0, (self._credit_restore, flit.vc)
            )
        if flit.is_tail:
            self.packets_received += 1
            self.queue.put(flit.packet)


class _DetailedLC:
    """Flit-level link controller: per-transmitter DPM state."""

    __slots__ = (
        "engine", "board", "wavelength", "level", "stall_until", "busy",
        "busy_signal", "dpm_transitions",
    )

    def __init__(self, engine: "DetailedEngine", board: int, wavelength: int) -> None:
        self.engine = engine
        self.board = board
        self.wavelength = wavelength
        self.level: PowerLevel = engine.config.power_levels.highest
        self.stall_until = 0.0
        self.busy = False
        self.busy_signal = TimeWeighted(engine.sim.now, 0.0)
        self.dpm_transitions = 0
        self._push_power()

    @property
    def key(self):
        return (self.board, self.wavelength)

    def _push_power(self) -> None:
        mw = self.engine.config.link_power.instantaneous_mw(
            True, self.level, self.busy
        )
        self.engine.accountant.set_channel_power(
            self.key, self.engine.sim.now, mw
        )

    def set_busy(self, busy: bool) -> None:
        if busy == self.busy:
            return
        self.busy = busy
        self.busy_signal.update(self.engine.sim.now, 1.0 if busy else 0.0)
        self._push_power()

    def window_decide(self, queue: MonitoredStore) -> None:
        """End-of-window DPM decision (the §3.1 rule at flit granularity)."""
        now = self.engine.sim.now
        cfg = self.engine.config
        stats = LinkWindowStats(
            link_util=min(1.0, self.busy_signal.window(now)),
            buffer_util=min(1.0, queue.buffer_util(now)),
            queue_empty=len(queue) == 0,
        )
        self.busy_signal.reset_window(now)
        queue.reset_window(now)
        table = cfg.power_levels
        action = dpm_decide(
            stats,
            cfg.policy.thresholds,
            at_lowest=self.level is table.lowest,
            at_highest=self.level is table.highest,
        )
        if action in (DpmAction.SLEEP, DpmAction.HOLD):
            # Sleep is a power-only state; the detailed engine keeps the
            # laser formally on at the current level (its contribution to
            # idle power is what the fast engine cross-checks).
            return
        target = table.up(self.level) if action is DpmAction.UP else table.down(self.level)
        if target is self.level:
            return
        stall = cfg.transitions.stall_cycles(table, self.level, target)
        self.level = target
        self.stall_until = max(self.stall_until, now + stall)
        self.dpm_transitions += 1
        self._push_power()


class DetailedEngine:
    """Flit-level simulation of one E-RAPID run (static RWA, DPM optional)."""

    def __init__(
        self,
        config: ERapidConfig,
        workload: WorkloadSpec,
        plan: MeasurementPlan = MeasurementPlan(),
    ) -> None:
        if config.policy.dbr:
            raise ConfigurationError(
                "the detailed engine models the static wavelength allocation; "
                "run DBR policies on the fast engine"
            )
        self.config = config
        self.topology = config.topology
        self.workload = workload
        self.plan = plan
        self.sim = Simulator()
        self.collector = Collector(plan, self.topology.total_nodes)
        self.accountant = EnergyAccountant(cycle_ns=1.0 / config.router.clock_ghz)
        self.rwa = StaticRWA(self.topology.boards)
        #: (board, wavelength) -> flit-level link controller (remote tx only).
        self.lcs: Dict[tuple, _DetailedLC] = {}

        # Clocked substrate: shared due-queues + the cycle driver.
        self._delivery_ring: DueQueue[Delivery] = DueQueue()
        self._credit_ring: DueQueue[CreditReturn] = DueQueue()
        self.driver = CycleDriver(self.sim, self._tick)
        #: All ClockedSourceNI pumps in deterministic creation order.
        self._pumps: List[ClockedSourceNI] = []

        topo = self.topology
        D, W, B = topo.nodes_per_board, topo.wavelengths, topo.boards
        r = config.router

        self.routers: List[VCRouter] = []
        self.source_nis: Dict[int, ClockedSourceNI] = {}
        self.sink_nis: Dict[int, SinkNI] = {}
        #: (board, wavelength) -> transmitter packet queue.
        self.tx_queues: Dict[tuple, MonitoredStore] = {}
        #: (board, wavelength) -> receiver-side re-injection NI.
        self.rx_nis: Dict[tuple, ClockedSourceNI] = {}

        flit_cycles = (r.flit_bytes * 8) // r.channel_bits

        # Build one router per board with D node ports + W optical ports.
        for b in range(B):
            def tx_port_of(dest_board: int, _b: int = b) -> int:
                return D + self.rwa.wavelength_for(_b, dest_board)

            router = VCRouter(
                self.sim,
                n_ports=D + W,
                routing_fn=ibi_routing(topo, b, tx_port_of),
                n_vcs=r.n_vcs,
                buf_depth=r.buf_depth,
                credit_latency=r.credit_cycles,
                name=f"ibi{b}",
            )
            router.credit_ring = self._credit_ring
            self.routers.append(router)

        for b in range(B):
            router = self.routers[b]
            for local in range(D):
                node = topo.node_id(b, local)
                sink = ClockedSinkNI(
                    self.sim, self._delivery_ring, self._credit_ring,
                    on_packet=self._on_delivered, name=f"eject{node}",
                )
                sink.attach(router, local, latency=1, cycles_per_flit=flit_cycles)
                self.sink_nis[node] = sink
                src = ClockedSourceNI(
                    self.sim, router, local, self._delivery_ring,
                    latency=1, cycles_per_flit=flit_cycles,
                    name=f"inject{node}", on_wake=self._wake_ni,
                )
                self.source_nis[node] = src
                self._pumps.append(src)
            for w in range(W):
                port = D + w
                q = MonitoredStore(
                    self.sim, capacity=config.tx_queue_capacity, name=f"b{b}.λ{w}.txq"
                )
                self.tx_queues[(b, w)] = q
                tx_sink = _ClockedTxSink(
                    self.sim, self._delivery_ring, self._credit_ring, q,
                    name=f"b{b}.λ{w}.tx",
                )
                tx_sink.attach(router, port, latency=1, cycles_per_flit=flit_cycles)
                dest_board = self.rwa.dest_served_by(b, w)
                if dest_board != b:
                    self.lcs[(b, w)] = _DetailedLC(self, b, w)
                    rx_router = self.routers[dest_board]
                    rx = ClockedSourceNI(
                        self.sim, rx_router, D + w, self._delivery_ring,
                        latency=1, cycles_per_flit=flit_cycles,
                        name=f"b{dest_board}.λ{w}.rx", on_wake=self._wake_ni,
                    )
                    self.rx_nis[(b, w)] = rx
                    self._pumps.append(rx)

        from repro.traffic.capacity import CapacityParams

        params = CapacityParams(
            packet_bits=r.packet_bytes * 8,
            optical_gbps=config.power_levels.highest.bit_rate_gbps,
            electrical_gbps=r.port_gbps,
            clock_ghz=r.clock_ghz,
        )
        self.sources: List[TrafficSource] = workload.build_sources(topo, params)
        self._started = False

    # ------------------------------------------------------------------
    def _on_delivered(self, pkt: Packet) -> None:
        self.collector.on_delivered(pkt, self.sim.now)

    def _wake_ni(self, ni: ClockedSourceNI) -> None:
        """A parked pump got a packet: tick this very cycle."""
        self.driver.arm(self.sim.now)

    # ------------------------------------------------------------------
    # The clock loop
    # ------------------------------------------------------------------
    def _tick(self, now: float) -> None:
        """One synchronous cycle of the whole electrical substrate."""
        # Phase 1 — due credit restores (traversal + ejection returns).
        credit_ring = self._credit_ring
        while True:
            entry = credit_ring.pop_if_due(now)
            if entry is None:
                break
            entry[0](entry[1])
        # Phase 2 — due channel deliveries.
        delivery_ring = self._delivery_ring
        while True:
            dentry = delivery_ring.pop_if_due(now)
            if dentry is None:
                break
            dentry[0].receive_flit(dentry[2], dentry[1])
        # Phase 3 — router pipelines, on the integer cycle grid, board
        # order, idle-skip.
        routers = self.routers
        if now.is_integer():
            for router in routers:
                if router.busy_vcs:
                    router.tick()
        # Phase 4 — NI pumps in creation order, each on its own grid.
        pumps = self._pumps
        for ni in pumps:
            if ni.next_due <= now:
                ni.tick(now)
        # Re-arm: next integer cycle while any router is busy, plus the
        # earliest due times of the rings and each active pump.
        arm = self.driver.arm
        for router in routers:
            if router.busy_vcs:
                arm(float(int(now)) + 1.0)
                break
        nd = credit_ring.next_due()
        if nd is not None:
            arm(nd)
        nd = delivery_ring.next_due()
        if nd is not None:
            arm(nd)
        for ni in pumps:
            if ni.next_due < inf:
                arm(ni.next_due)

    # ------------------------------------------------------------------
    def start(self, node_order=None, optical_order=None) -> None:
        """Register all processes; orders only permute FIFO tie-breaking.

        ``node_order`` / ``optical_order`` are permutations of the node ids
        and remote ``(board, wavelength)`` keys used by the determinism
        auditor: registration order changes the FIFO sequence numbers of
        same-time start-up events, so a run that is a pure function of the
        kernel's ``(time, priority, FIFO)`` total order must not change.
        """
        if self._started:
            raise ConfigurationError("engine already started")
        self._started = True
        nodes = list(range(self.topology.total_nodes))
        if node_order is not None:
            if sorted(node_order) != nodes:
                raise ConfigurationError(
                    "node_order must be a permutation of all node ids"
                )
            nodes = list(node_order)
        for node in nodes:
            self.sim.process(
                self._injector_proc(node, self.sources[node]), name=f"dinj{node}"
            )
        remote = [
            key for key in self.tx_queues if self.rwa.dest_served_by(*key) != key[0]
        ]
        if optical_order is not None:
            if sorted(optical_order) != sorted(remote):
                raise ConfigurationError(
                    "optical_order must be a permutation of the remote "
                    "(board, wavelength) keys"
                )
            remote = list(optical_order)
        for b, w in remote:
            dest = self.rwa.dest_served_by(b, w)
            self.sim.process(
                self._optical_proc(b, w, dest, self.tx_queues[(b, w)]),
                name=f"opt{b}.{w}",
            )
        if self.config.policy.dpm:
            self.sim.process(self._dpm_window_proc(), name="detailed-dpm")

    def _dpm_window_proc(self):
        """Lock-step power windows: every LC decides at each R_w boundary."""
        sim = self.sim
        window = self.config.control.window_cycles
        latency = self.config.control.power_cycle_latency(
            self.topology.nodes_per_board
        )
        while True:
            yield sim.timeout(window)
            for (b, w), lc in self.lcs.items():
                sim.schedule(latency, lc.window_decide, self.tx_queues[(b, w)])

    def _injector_proc(self, node: int, source: TrafficSource):
        sim = self.sim
        hard_end = self.plan.hard_end
        ni = self.source_nis[node]
        while True:
            yield sim.timeout(source.next_gap())
            now = sim.now
            if now >= hard_end:
                return
            pkt = source.next_packet(now, labeled=self.collector.labeling(now))
            self.collector.on_injected(pkt, now)
            yield ni.send(pkt)

    def _optical_proc(self, board: int, wavelength: int, dest: int, queue):
        """One transmitter laser serving its static destination at the
        link controller's current power level."""
        sim = self.sim
        cfg = self.config
        fiber = cfg.optical.fiber_latency_cycles
        rx_ni = self.rx_nis[(board, wavelength)]
        lc = self.lcs[(board, wavelength)]
        while True:
            pkt: Packet = yield queue.get()
            if sim.now < lc.stall_until:  # DVS transition in progress
                yield sim.timeout(lc.stall_until - sim.now)
            lc.set_busy(True)
            yield sim.timeout(
                cfg.optical.packet_service_cycles(
                    pkt.size_bytes, lc.level.bit_rate_gbps
                )
            )
            lc.set_busy(False)
            pkt.wavelength = wavelength
            sim.schedule(fiber, self._relay, rx_ni, pkt)

    @staticmethod
    def _relay(rx_ni: ClockedSourceNI, pkt: Packet) -> None:
        rx_ni.send(pkt)

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        if not self._started:
            self.start()
        plan = self.plan
        self.sim.run(until=plan.warmup)
        self.accountant.reset_window(self.sim.now)
        self.sim.run(until=plan.measure_end)
        self.collector.power_avg_mw = self.accountant.window_average_mw(self.sim.now)
        t = plan.measure_end
        while not self.collector.drained() and t < plan.hard_end:
            t = min(t + 2000.0, plan.hard_end)
            self.sim.run(until=t)
        return self.collector.result(
            engine="detailed",
            pattern=self.workload.pattern,
            load=self.workload.load,
            events=self.sim.event_count,
            dpm_transitions=sum(
                self.lcs[key].dpm_transitions for key in sorted(self.lcs)
            ),
        )
