"""Dynamic Bandwidth Re-allocation — the §3.2 Reconfigure-stage logic.

For one destination board *d*, the RC classifies every incoming wavelength
by the owning source's buffer utilization toward *d*:

* **under-utilized** (``Buffer_util <= B_min``): the wavelength can be
  re-allocated (a *donor*);
* **normal** (``B_min < Buffer_util <= B_max``): well utilized, left alone;
* **over-utilized** (``Buffer_util > B_max``): the source needs additional
  wavelengths (*needy*).

Dark wavelengths (no owner) are always donors.  A board with traffic queued
toward *d* but *no* channel at all is treated as needy regardless of its
utilization — without this rule a board that donated its last channel could
starve for several windows after its traffic resumed.

Donors are matched to needy boards most-congested-first, with one
preference: a donor wavelength whose *static* owner is needy goes back to
that owner (restoring Figure 1's assignment as traffic normalizes).

The function is pure (stats in, grant plan out) so the protocol timing in
:mod:`repro.core.reconfig_controller` stays separate from the allocation
policy and both can be tested independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.core.policies import Thresholds
from repro.optics.rwa import StaticRWA

__all__ = ["DestDemand", "WavelengthState", "dbr_plan", "classify"]


@dataclass(frozen=True, slots=True)
class WavelengthState:
    """One incoming wavelength at the destination (RC's link-statistic row)."""

    wavelength: int
    owner: Optional[int]          # source board holding (λ, d); None = dark
    owner_buffer_util: float      # owner's Buffer_util toward d (0 if dark)
    owner_queue_empty: bool       # owner's transmitter queue toward d
    failed: bool = False          # dead laser/receiver: never grantable


@dataclass(frozen=True, slots=True)
class DestDemand:
    """One source board's demand toward the destination."""

    board: int
    buffer_util: float
    queue_empty: bool
    channels: int                 # channels the board currently owns toward d


def classify(util: float, thresholds: Thresholds) -> str:
    """The paper's three-way classification of an incoming link."""
    if util <= thresholds.b_min:
        return "under"
    if util <= thresholds.b_max:
        return "normal"
    return "over"


def dbr_plan(
    dest: int,
    wavelengths: List[WavelengthState],
    demands: List[DestDemand],
    thresholds: Thresholds,
    rwa: StaticRWA,
    max_grants: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """Grant plan for destination ``dest``: list of (wavelength, new_owner).

    Only re-assignments are returned; wavelengths that keep their owner do
    not appear.  ``max_grants`` caps the plan length (the limited-
    reconfigurability ablation).
    """
    if max_grants is not None and max_grants <= 0:
        return []
    demand_of: Dict[int, DestDemand] = {dm.board: dm for dm in demands}
    for dm in demands:
        if dm.board == dest:
            raise ConfigurationError(
                f"board {dest} cannot demand bandwidth toward itself"
            )

    # --- who needs bandwidth -------------------------------------------
    def is_needy(dm: DestDemand) -> bool:
        if classify(dm.buffer_util, thresholds) == "over":
            return True
        return dm.channels == 0 and not dm.queue_empty

    needy = sorted(
        (dm for dm in demands if is_needy(dm)),
        key=lambda dm: (-dm.buffer_util, dm.board),
    )
    if not needy:
        return []
    needy_boards = {dm.board for dm in needy}

    # --- which wavelengths are donors ----------------------------------
    def is_donor(ws: WavelengthState) -> bool:
        if ws.failed:
            return False  # dead hardware is never re-allocated
        if ws.owner is None:
            return True  # dark channel: free to grant
        if ws.owner in needy_boards:
            return False  # never strip a congested board
        return (
            classify(ws.owner_buffer_util, thresholds) == "under"
            and ws.owner_queue_empty
        )

    donors = sorted(
        (ws for ws in wavelengths if is_donor(ws)),
        key=lambda ws: ws.wavelength,
    )
    if not donors:
        return []

    # --- match donors to needy boards ----------------------------------
    plan: List[Tuple[int, int]] = []
    remaining = list(donors)

    # Preference pass: return a donor to its static owner if that owner is
    # needy (restores the Figure-1 assignment as traffic shifts back).
    for ws in list(remaining):
        static_owner = rwa.default_owner(dest, ws.wavelength)
        if static_owner in needy_boards and ws.owner != static_owner:
            plan.append((ws.wavelength, static_owner))
            remaining.remove(ws)
            if max_grants is not None and len(plan) >= max_grants:
                return plan

    # Round-robin the rest across needy boards, most congested first.
    if remaining and needy:
        i = 0
        for ws in remaining:
            target = needy[i % len(needy)].board
            i += 1
            if ws.owner == target:
                continue
            plan.append((ws.wavelength, target))
            if max_grants is not None and len(plan) >= max_grants:
                break
    return plan
