"""Per-board model: nodes and outgoing transmitter queues.

A board aggregates D nodes on the IBI plus one transmitter queue per remote
destination board — the queue the LC's ``Buffer_util`` counter watches and
the (one or more) optical channels granted to the (board, destination) pair
drain.  The paper's "spread the traffic on the transmitter board" falls out
of several channels serving one queue.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from repro.core.node import NodeModel
from repro.errors import ConfigurationError
from repro.sim.queues import MonitoredStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator
    from repro.network.topology import ERapidTopology

__all__ = ["BoardModel"]


class BoardModel:
    """Nodes + per-destination transmitter queues for one board."""

    __slots__ = ("board", "nodes", "tx_queues")

    def __init__(
        self,
        sim: "Simulator",
        board: int,
        topology: "ERapidTopology",
        tx_queue_capacity: int,
    ) -> None:
        self.board = board
        self.nodes: List[NodeModel] = [
            NodeModel(sim, node, board) for node in topology.nodes_on_board(board)
        ]
        #: dest board -> transmitter queue (the LC-monitored buffer).
        self.tx_queues: Dict[int, MonitoredStore] = {
            d: MonitoredStore(
                sim, capacity=tx_queue_capacity, name=f"b{board}->b{d}.txq"
            )
            for d in range(topology.boards)
            if d != board
        }

    def tx_queue(self, dest: int) -> MonitoredStore:
        try:
            return self.tx_queues[dest]
        except KeyError:
            raise ConfigurationError(
                f"board {self.board} has no transmitter queue toward {dest}"
            ) from None

    def reset_windows(self) -> None:
        """Start a new R_w window on every LC buffer counter."""
        for dest in sorted(self.tx_queues):
            self.tx_queues[dest].reset_window()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BoardModel b{self.board} nodes={len(self.nodes)}>"
