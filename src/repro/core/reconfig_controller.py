"""Reconfiguration Controllers — the per-board Lock-Step protocol engine.

Each board's RC drives the two cycles of §3 against the window snapshot the
coordinator hands it:

**Power cycle** (odd windows, or every window for P-NB): the
``Power_Request`` control packet circulates the on-board LC ring; when it
returns, every LC the board owns applies the §3.1 DPM rule locally.

**Bandwidth cycle** (even windows, or every window for NP-B): the 5-stage
sequence of Figure 4 —

    Link Request  -> Board Request -> Reconfigure -> Board Response
    -> Link Response

with ring latencies from :class:`~repro.core.config.ControlParams`.  The RC
computes the §3.2 grant plan for *its own incoming links* at the
Reconfigure stage and actuates the lasers at the Link Response stage.

All stage events are traced (category ``"protocol"``), which is what the
Figure-4 bench renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.dbr import DestDemand, WavelengthState, dbr_plan
from repro.core.dpm import DpmAction, LinkWindowStats, dpm_decide

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import FastEngine

__all__ = ["WindowSnapshot", "PairWindowStats", "ReconfigController"]


@dataclass(frozen=True, slots=True)
class PairWindowStats:
    """Per (source, dest) board-pair stats over the closed window."""

    buffer_util: float
    queue_empty: bool
    channel_count: int


@dataclass(frozen=True, slots=True)
class WindowSnapshot:
    """Everything the RCs need from the window that just closed."""

    time: float
    window_index: int
    #: (wavelength, dest) -> LC hardware counters.
    channels: Dict[Tuple[int, int], LinkWindowStats]
    #: (wavelength, dest) -> owner at snapshot time.
    owners: Dict[Tuple[int, int], Optional[int]]
    #: (src, dest) -> transmitter-queue stats.
    pairs: Dict[Tuple[int, int], PairWindowStats] = field(default_factory=dict)


class ReconfigController:
    """The RC of one system board."""

    def __init__(self, engine: "FastEngine", board: int) -> None:
        self.engine = engine
        self.board = board
        self.power_cycles = 0
        self.bandwidth_cycles = 0
        self.grants_issued = 0

    # ------------------------------------------------------------------
    def _trace(self, message: str, **fields) -> None:
        trace = self.engine.trace
        if trace is not None:
            trace.record(
                self.engine.sim.now, "protocol", f"RC{self.board}", message, **fields
            )

    # ------------------------------------------------------------------
    # Power-awareness cycle (§3.1)
    # ------------------------------------------------------------------
    def schedule_power_cycle(self, snapshot: WindowSnapshot) -> None:
        """Kick off the LC-ring Power_Request at the window boundary."""
        self.power_cycles += 1
        cfg = self.engine.config
        d_nodes = self.engine.topology.nodes_per_board
        latency = cfg.control.power_cycle_latency(d_nodes)
        self._trace("Power_Request sent", window=snapshot.window_index)
        self.engine.sim.schedule(latency, self._apply_power_cycle, snapshot)

    def _apply_power_cycle(self, snapshot: WindowSnapshot) -> None:
        """Power_Request returned: every LC this board owns decides locally."""
        self._trace("Power_Request returned; LCs scaling",
                    window=snapshot.window_index)
        table = self.engine.config.power_levels
        thresholds = self.engine.config.policy.thresholds
        for ch in self.engine.channels_owned_by(self.board):
            stats = snapshot.channels.get(ch.key)
            if stats is None or snapshot.owners.get(ch.key) != self.board:
                continue
            effective = ch.smoothed_util(stats.link_util)
            if effective != stats.link_util:
                stats = LinkWindowStats(
                    link_util=min(1.0, effective),
                    buffer_util=stats.buffer_util,
                    queue_empty=stats.queue_empty,
                )
            action = dpm_decide(
                stats,
                thresholds,
                at_lowest=ch.level is table.lowest,
                at_highest=ch.level is table.highest,
            )
            if action is not DpmAction.HOLD:
                self._trace(
                    f"DPM {action.value} λ{ch.wavelength}->b{ch.dest}",
                    level=ch.level.name,
                    link_util=round(stats.link_util, 3),
                )
            ch.apply_dpm(action)

    # ------------------------------------------------------------------
    # Bandwidth re-allocation cycle (§3.2, Figure 4)
    # ------------------------------------------------------------------
    def schedule_bandwidth_cycle(self, snapshot: WindowSnapshot) -> None:
        """Run Link Request .. Link Response with ring latencies."""
        self.bandwidth_cycles += 1
        cfg = self.engine.config
        topo = self.engine.topology
        stages = cfg.control.dbr_stage_latencies(topo.boards, topo.nodes_per_board)
        t = 0.0
        self._trace("Link_Request sent", window=snapshot.window_index)
        t += stages["link_request"]
        self.engine.sim.schedule(
            t, self._trace, "outgoing link statistics updated"
        )
        t += stages["board_request"]
        self.engine.sim.schedule(
            t, self._trace, "Board_Request completed; incoming stats updated"
        )
        t += stages["reconfigure"]
        self.engine.sim.schedule(t, self._reconfigure_stage, snapshot, t)

    def _reconfigure_stage(self, snapshot: WindowSnapshot, elapsed: float) -> None:
        """Reconfigure stage: classify incoming links, build the grant plan."""
        plan = self.compute_plan(snapshot)
        self._trace(
            "Reconfigure stage", grants=len(plan), window=snapshot.window_index
        )
        cfg = self.engine.config
        topo = self.engine.topology
        stages = cfg.control.dbr_stage_latencies(topo.boards, topo.nodes_per_board)
        t = stages["board_response"]
        self.engine.sim.schedule(t, self._trace, "Board_Response completed")
        t += stages["link_response"]
        self.engine.sim.schedule(t, self._apply_plan, plan, snapshot.window_index)

    def compute_plan(self, snapshot: WindowSnapshot) -> List[Tuple[int, int]]:
        """The §3.2 Reconfigure-stage decision for this board's incoming links."""
        dest = self.board
        topo = self.engine.topology
        wavelengths: List[WavelengthState] = []
        for w in range(topo.wavelengths):
            owner = snapshot.owners.get((w, dest))
            failed = self.engine.srs.is_failed(dest, w)
            if owner is None:
                wavelengths.append(WavelengthState(w, None, 0.0, True, failed))
            else:
                ps = snapshot.pairs.get((owner, dest))
                wavelengths.append(
                    WavelengthState(
                        w,
                        owner,
                        ps.buffer_util if ps else 0.0,
                        ps.queue_empty if ps else True,
                        failed,
                    )
                )
        demands: List[DestDemand] = []
        for s in range(topo.boards):
            if s == dest:
                continue
            ps = snapshot.pairs.get((s, dest))
            if ps is None:
                continue
            demands.append(
                DestDemand(s, ps.buffer_util, ps.queue_empty, ps.channel_count)
            )
        return dbr_plan(
            dest,
            wavelengths,
            demands,
            self.engine.config.policy.thresholds,
            self.engine.srs.rwa,
            max_grants=self.engine.config.policy.max_grants_per_dest,
        )

    def _apply_plan(self, plan: List[Tuple[int, int]], window: int) -> None:
        """Link Response stage: actuate the lasers."""
        for wavelength, new_owner in plan:
            self.engine.apply_grant(self.board, wavelength, new_owner)
            self.grants_issued += 1
            self._trace(
                f"grant λ{wavelength} -> board {new_owner}", window=window
            )
