"""The batch (vectorized, struct-of-arrays) E-RAPID engine tier.

Third engine tier after :mod:`repro.core.engine` (fast, event-driven) and
:mod:`repro.core.detailed` (flit-level): a :class:`BatchEngine` advances
*many runs at once* on one shared integer cycle grid.  All per-run state —
node injection/ejection ports, per-pair transmitter queues, wavelength
ownership and power level, DPM window counters, energy accumulators — lives
in flat numpy struct-of-arrays indexed ``run-major``:

* node  ``rn = r * N + n``          (``N`` nodes per run),
* pair  ``pq = (r * B + s) * B + d``  (transmitter queue of board ``s``
  toward board ``d``),
* channel ``rc = r * (W * B) + w * B + d``  (wavelength ``w`` into ``d``).

Each cycle applies updates to every run simultaneously, and the loop is
doubly event-driven: phases scan only the indices carried by the event
rings, and the loop itself jumps over cycles that provably execute no
event (:mod:`repro.core.skip` computes the next-event time from per-slot
ring occupancy, the injection schedule, the Lock-Step grid and the drain
grid), so wall-clock cost scales with events executed, not cycles
simulated.  Runs that drain their labeled packets mid-slab are compacted
out of the state arrays (their finished metrics scattered to their
original slab positions) instead of being re-masked every phase.  The
Lock-Step control plane (window snapshots, DPM decisions, DBR grant
plans with the real :func:`repro.core.dbr.dbr_plan`) runs at the same
window boundaries and protocol latencies as the fast engine.

Fidelity contract (enforced by the statistical-equivalence harness in
:mod:`repro.analysis.equivalence` and the batch benchmark gate):

* **Bit-identical where streams allow**: injection gap draws go through
  :func:`repro.sim.rng.geometric_gap_array`, which consumes the PCG64
  stream exactly like the scalar path, so for permutation patterns (no
  per-packet destination draws) ``offered`` and ``labeled_injected`` match
  :class:`~repro.core.engine.FastEngine` bit for bit.  Uniform traffic
  interleaves destination draws on the scalar path and is statistically
  equivalent only.
* **Integer cycle grid**: service completions are rounded up to the next
  cycle before delivery, intra-board deliveries keep the fast engine's
  same-cycle hand-off, and blocked senders retry once per cycle instead of
  exactly at the freeing pop.  These quantizations shift per-packet timing
  by under a cycle and are covered by the declared tolerances.
* **Latency proxy**: per-packet identity is not tracked; labeled latency
  pairs the j-th labeled delivery with the j-th labeled injection (FIFO
  proxy, exact in expectation for drained runs).  ``p99_latency`` and
  ``max_latency`` are not available and report 0.

``coverage_gap`` says whether a run point is batchable; the executor falls
back to per-run scalar execution for anything it declines, so ``--engine
batch`` never changes *what* can be swept, only how fast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ERapidConfig
from repro.core.dbr import DestDemand, WavelengthState, dbr_plan
from repro.core.skip import BatchTelemetry, next_event_time
from repro.errors import ConfigurationError
from repro.metrics.collector import MeasurementPlan, RunResult
from repro.optics.rwa import StaticRWA
from repro.sim.rng import RngRegistry, geometric_gap_array, integer_array
from repro.traffic.capacity import CapacityParams
from repro.traffic.workload import WorkloadSpec

__all__ = [
    "BATCH_KERNEL_VERSION",
    "coverage_gap",
    "slab_key",
    "BatchEngine",
    "BatchResultPayload",
    "decode_payload",
]

#: Version of the vectorized kernel, folded into batch cache keys so batch
#: results can never alias scalar entries (and are invalidated together
#: when the kernel's numerics change).
BATCH_KERNEL_VERSION = 1

#: Gap draws per vectorized refill while precomputing injection schedules.
_GAP_DRAW_CHUNK = 4096

#: Delivery/exit ring length in cycles; must exceed the longest scheduled
#: lead (wake + DVS stall + lowest-rate service + fiber/pipeline).
_RING = 512


def _cat(parts: List[np.ndarray], buf: np.ndarray) -> np.ndarray:
    """Concatenate index arrays into a preallocated staging buffer.

    With a single part the part itself is returned (zero copy); callers
    treat the result as scratch either way, so the in-place sorts in the
    dispatch/recv phases stay safe.  Replaces the per-cycle
    ``np.concatenate`` chains — the cycle loop never allocates staging.
    """
    if len(parts) == 1:
        return parts[0]
    n = 0
    for p in parts:
        k = len(p)
        buf[n : n + k] = p
        n += k
    return buf[:n]


# ----------------------------------------------------------------------
# Compact result transport
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class BatchResultPayload:
    """Struct-of-arrays transport of one slab's results.

    A batch worker returns this instead of a list of
    :class:`~repro.metrics.collector.RunResult` objects: ten flat numpy
    arrays (one slot per run) pickle in a handful of buffer copies,
    where the equivalent ``RunResult`` list would serialize one Python
    object graph per run.  :func:`decode_payload` rebuilds the exact
    ``RunResult`` sequence in the parent from the caller's own run
    descriptions — the payload carries *measurements*, never config —
    and :meth:`BatchEngine.run` itself goes through the same decode, so
    in-process and cross-process execution share one code path and are
    bit-identical by construction.
    """

    delivered_measure: np.ndarray
    inj_measure: np.ndarray
    lab_inj: np.ndarray
    lab_del: np.ndarray
    avg_latency: np.ndarray
    power_mw: np.ndarray
    grants: np.ndarray
    dpm_transitions: np.ndarray
    sleeps: np.ndarray
    lasers_on_final: np.ndarray

    def __len__(self) -> int:
        return len(self.delivered_measure)

    @property
    def nbytes(self) -> int:
        """Total buffer bytes (the transported volume, headers aside)."""
        return sum(
            getattr(self, f).nbytes for f in self.__dataclass_fields__
        )


def decode_payload(
    payload: BatchResultPayload,
    runs: Sequence[Tuple[ERapidConfig, WorkloadSpec, MeasurementPlan]],
) -> List[RunResult]:
    """Rebuild the per-run :class:`RunResult` list from a slab payload.

    ``runs`` must be the exact run descriptions the producing
    :class:`BatchEngine` was built from (same order); the decoder takes
    policy/pattern/load metadata and the throughput denominators from
    them, so a payload can never be replayed against the wrong slab
    without tripping the length check.
    """
    if len(runs) != len(payload):
        raise ConfigurationError(
            f"payload carries {len(payload)} runs, caller described "
            f"{len(runs)}"
        )
    out: List[RunResult] = []
    for r, (config, workload, plan) in enumerate(runs):
        nodes = config.topology.total_nodes
        measure = float(plan.measure)
        out.append(
            RunResult(
                throughput=int(payload.delivered_measure[r]) / (measure * nodes),
                offered=int(payload.inj_measure[r]) / (measure * nodes),
                avg_latency=float(payload.avg_latency[r]),
                p99_latency=0.0,
                max_latency=0.0,
                power_mw=float(payload.power_mw[r]),
                labeled_injected=int(payload.lab_inj[r]),
                labeled_delivered=int(payload.lab_del[r]),
                delivered_measure=int(payload.delivered_measure[r]),
                extra={
                    "policy": config.policy.name,
                    "pattern": workload.pattern,
                    "load": workload.load,
                    "grants": int(payload.grants[r]),
                    "dpm_transitions": int(payload.dpm_transitions[r]),
                    "sleeps": int(payload.sleeps[r]),
                    "lasers_on_final": int(payload.lasers_on_final[r]),
                    "events": 0,
                    "engine": "batch",
                },
            )
        )
    return out


# ----------------------------------------------------------------------
# Coverage and slab partitioning
# ----------------------------------------------------------------------
def coverage_gap(
    config: ERapidConfig, workload: WorkloadSpec, plan: MeasurementPlan
) -> Optional[str]:
    """Why this run point cannot run on the batch engine (None = it can).

    The executor uses this to route uncovered points to the scalar
    fallback; tests assert the reasons stay accurate.
    """
    if workload.process != "bernoulli":
        return f"injection process {workload.process!r} is not vectorized"
    try:
        pattern = workload.resolve_pattern(config.topology)
    except Exception as exc:  # noqa: BLE001 - reason string for fallback
        return f"pattern {workload.pattern!r} not resolvable: {exc}"
    if not pattern.is_permutation and pattern.name != "uniform":
        return f"pattern {workload.pattern!r} is neither uniform nor a permutation"
    if config.policy.dpm_smoothing != 0.0:
        return "dpm_smoothing requires per-window EWMA state (scalar only)"
    for name in ("warmup", "measure", "drain_limit"):
        value = float(getattr(plan, name))
        if not value.is_integer():
            return f"plan.{name}={value} is not on the integer cycle grid"
    chunk = max(1000.0, config.control.window_cycles / 2)
    if not float(chunk).is_integer():
        return "drain chunk is fractional (odd window_cycles)"
    if config.topology.total_nodes > 32000:
        return "topology too large for int16 destination arrays"
    # A service (plus wake + worst DVS stall + delivery) must never span
    # more than one window boundary, or the single-slot busy-carry
    # accounting breaks.
    levels = config.power_levels
    svc_max = config.optical.packet_service_cycles(
        workload.packet_bytes, levels.lowest.bit_rate_gbps
    )
    per_step = max(
        config.transitions.voltage_transition_cycles,
        config.transitions.frequency_relock_cycles,
    )
    d_nodes = config.topology.nodes_per_board
    lead = (
        config.wake_cycles
        + per_step * (len(levels) - 1)
        + svc_max
        + config.optical.fiber_latency_cycles
        + config.router.pipeline_cycles
        + config.control.power_cycle_latency(d_nodes)
    )
    if config.control.window_cycles < 2 * lead:
        return f"window_cycles={config.control.window_cycles} < 2x max lead {lead:.0f}"
    if lead + 8 >= _RING:
        return f"max event lead {lead:.0f} exceeds the ring horizon {_RING}"
    send_lead = int(config.router.packet_serialization_cycles) + int(
        config.router.pipeline_cycles
    )
    if send_lead + 8 >= _RING:
        return f"send lead {send_lead} exceeds the ring horizon {_RING}"
    boards = config.topology.boards
    if config.control.power_cycle_latency(d_nodes) >= config.control.window_cycles:
        return "power cycle latency spills past the next window"
    if config.control.dbr_cycle_latency(boards, d_nodes) >= config.control.window_cycles:
        return "DBR cycle latency spills past the next window"
    return None


def slab_key(
    config: ERapidConfig, workload: WorkloadSpec, plan: MeasurementPlan
) -> Tuple[object, ...]:
    """Hashable key grouping run points one :class:`BatchEngine` can share.

    Everything that shapes the shared cycle grid and array geometry is in
    the key; policy, pattern, load and workload seed vary freely within a
    slab (they are per-run columns).
    """
    t = config.topology
    levels = tuple(
        (lvl.name, lvl.bit_rate_gbps, lvl.vdd, lvl.link_power_mw)
        for lvl in config.power_levels.levels
    )
    return (
        (t.clusters, t.boards, t.nodes_per_board, t.wavelengths),
        (
            config.router.channel_bits,
            config.router.clock_ghz,
            config.router.pipeline_cycles,
            config.router.packet_bytes,
            config.router.flit_bytes,
        ),
        (
            config.control.window_cycles,
            config.control.lc_hop_cycles,
            config.control.rc_hop_cycles,
            config.control.compute_cycles,
        ),
        (config.optical.clock_ghz, config.optical.fiber_latency_cycles),
        levels,
        config.link_power.idle_fraction,
        (
            config.transitions.frequency_relock_cycles,
            config.transitions.voltage_transition_cycles,
        ),
        config.tx_queue_capacity,
        config.wake_cycles,
        config.seed,
        (float(plan.warmup), float(plan.measure), float(plan.drain_limit)),
        (workload.packet_bytes, workload.flit_bytes, workload.process),
    )


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class BatchEngine:
    """Advance a slab of run points simultaneously in numpy.

    ``time_skip`` (default on) lets the cycle loop jump over spans that
    provably execute no event; results are bit-identical either way (the
    batch benchmark gates the fingerprints against each other), so
    ``time_skip=False`` exists as the always-step reference and for
    debugging.  After :meth:`run_payload` the engine exposes a
    :class:`~repro.core.skip.BatchTelemetry` on ``self.telemetry``.
    """

    def __init__(
        self,
        runs: Sequence[Tuple[ERapidConfig, WorkloadSpec, MeasurementPlan]],
        time_skip: bool = True,
    ) -> None:
        if not runs:
            raise ConfigurationError("BatchEngine needs at least one run")
        keys = {slab_key(*run) for run in runs}
        if len(keys) > 1:
            raise ConfigurationError(
                f"runs span {len(keys)} slabs; partition with slab_key first"
            )
        for i, run in enumerate(runs):
            gap = coverage_gap(*run)
            if gap is not None:
                raise ConfigurationError(f"run {i} not batchable: {gap}")
        self.runs = list(runs)
        config, workload, plan = self.runs[0]
        self.config = config
        self.plan = plan
        topo = config.topology
        self.R = len(self.runs)
        self.B = topo.boards
        self.D = topo.nodes_per_board
        self.N = topo.total_nodes
        self.W = topo.wavelengths
        self.CH = self.W * self.B
        self.wu = int(plan.warmup)
        self.me = int(plan.measure_end)
        self.he = int(plan.hard_end)
        self.measure = float(plan.measure)
        self.Wc = int(config.control.window_cycles)
        self.chunk = int(max(1000.0, self.Wc / 2))
        self.SER = int(config.router.packet_serialization_cycles)
        self.SEND = self.SER + int(config.router.pipeline_cycles)
        self.DELIV = int(
            config.optical.fiber_latency_cycles + config.router.pipeline_cycles
        )
        self.CAP = int(config.tx_queue_capacity)
        self.WAKE = int(config.wake_cycles)
        self.rwa = StaticRWA(self.B)
        levels = config.power_levels
        self.L = len(levels)
        self.P_mw = np.array([lvl.link_power_mw for lvl in levels.levels])
        self.svc_by_level = np.array(
            [
                config.optical.packet_service_cycles(
                    workload.packet_bytes, lvl.bit_rate_gbps
                )
                for lvl in levels.levels
            ]
        )
        self.step_stall = int(
            max(
                config.transitions.voltage_transition_cycles,
                config.transitions.frequency_relock_cycles,
            )
        )
        self.power_lat = int(config.control.power_cycle_latency(self.D))
        self.dbr_lat = int(config.control.dbr_cycle_latency(self.B, self.D))
        self.idle_frac = float(config.link_power.idle_fraction)
        self._policies = [cfg.policy for cfg, _, _ in self.runs]
        self._workloads = [wl for _, wl, _ in self.runs]
        self.time_skip = bool(time_skip)
        self.telemetry: Optional[BatchTelemetry] = None
        self._build_state()

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------
    def _build_state(self) -> None:
        R, B, D, N, W, CH = self.R, self.B, self.D, self.N, self.W, self.CH
        RN, RC, RBB = R * N, R * CH, R * B * B
        # Send ports (one per node): packets arrived / started, port state.
        self.p_injcnt = np.zeros(RN, dtype=np.int64)
        self.p_started = np.zeros(RN, dtype=np.int64)
        self.p_busy = np.zeros(RN, dtype=bool)
        self.p_blocked = np.zeros(RN, dtype=bool)
        # Blocked senders as a compact index list (retried once per cycle).
        self.blk = np.zeros(0, dtype=np.int64)
        # Pair transmitter queues: bounded rings of local dest-node ids.
        self.tx_ring = np.zeros(RBB * self.CAP, dtype=np.int16)
        self.tx_head = np.zeros(RBB, dtype=np.int64)
        self.tx_qlen = np.zeros(RBB, dtype=np.int64)
        self.occ_acc = np.zeros(RBB)  # integral of queue length over window
        self.q_last = np.zeros(RBB, dtype=np.int64)
        # Optical channels.
        self.c_owner = np.full(RC, -1, dtype=np.int16)
        self.c_level = np.full(RC, self.L - 1, dtype=np.int8)
        self.c_sleep = np.zeros(RC, dtype=bool)
        self.c_stall = np.zeros(RC, dtype=np.int64)
        self.c_busy_until = np.zeros(RC)
        self.c_pq = np.zeros(RC, dtype=np.int64)
        self.win_busy = np.zeros(RC)
        self.win_carry = np.zeros(RC)
        # Receive ports.
        self.r_qlen = np.zeros(RN, dtype=np.int64)
        self.r_busy = np.zeros(RN, dtype=bool)
        # Per-run accumulators.
        self.delivered_total = np.zeros(R, dtype=np.int64)
        self.delivered_measure = np.zeros(R, dtype=np.int64)
        self.lab_del = np.zeros(R, dtype=np.int64)
        self.sum_del_t = np.zeros(R)
        self.base_A = np.zeros(R)
        self.base_last = np.zeros(R)
        self.base_E = np.zeros(R)
        self.busy_E = np.zeros(R)
        self.grants = np.zeros(R, dtype=np.int64)
        self.dpm_transitions = np.zeros(R, dtype=np.int64)
        self.sleeps = np.zeros(R, dtype=np.int64)
        # Original-index bookkeeping + per-run outputs: drained runs are
        # compacted out of the live arrays (never re-masked), their final
        # metrics scattered here at their original slab positions.
        self.orig = np.arange(R, dtype=np.int64)
        self.out_delivered = np.zeros(R, dtype=np.int64)
        self.out_inj = np.zeros(R, dtype=np.int64)
        self.out_lab_inj = np.zeros(R, dtype=np.int64)
        self.out_lab_del = np.zeros(R, dtype=np.int64)
        self.out_avg_lat = np.zeros(R)
        self.out_power = np.zeros(R)
        self.out_grants = np.zeros(R, dtype=np.int64)
        self.out_dpm = np.zeros(R, dtype=np.int64)
        self.out_sleeps = np.zeros(R, dtype=np.int64)
        self.out_lasers = np.zeros(R, dtype=np.int64)
        # Static RWA ownership, replicated per run: owner[d][w] = s.
        for s in range(B):
            for d in range(B):
                if s == d:
                    continue
                w = self.rwa.wavelength_for(s, d)
                c = w * B + d
                self.c_owner[c::CH] = s
                self.c_pq[c::CH] = (
                    np.arange(R, dtype=np.int64) * B + s
                ) * B + d
        owned_per_run = int(np.count_nonzero(self.c_owner[:CH] >= 0))
        self.base_A[:] = owned_per_run * self.P_mw[self.L - 1]
        # Reverse index pair -> owned channels, so pushes can poke exactly
        # the channels that might dispatch (updated incrementally on DBR
        # grants; W is a hard upper bound on channels per pair).
        self.pair_ch = np.full((RBB, W), -1, dtype=np.int64)
        self.pair_nch = np.zeros(RBB, dtype=np.int64)
        for rc in np.flatnonzero(self.c_owner >= 0):
            pq = self.c_pq[rc]
            self.pair_ch[pq, self.pair_nch[pq]] = rc
            self.pair_nch[pq] += 1
        # Per-run policy columns, expanded to channel rows.
        dpm = np.array([p.dpm for p in self._policies])
        dbr = np.array([p.dbr for p in self._policies])
        self.run_dpm = dpm
        self.run_dbr = dbr
        self.lockstep_on = bool((dpm | dbr).any())
        thr = [p.thresholds for p in self._policies]
        self.thr_lmin_rc = np.repeat([t.l_min for t in thr], CH)
        self.thr_lmax_rc = np.repeat([t.l_max for t in thr], CH)
        self.thr_bmax_rc = np.repeat([t.b_max for t in thr], CH)
        # Precomputed injection schedules + destination streams.
        self._build_traffic()
        # Event rings: python lists of small index arrays per cycle slot.
        # The loop is event-driven — every phase scans only the indices
        # carried by these rings (plus this cycle's injections), never the
        # full state arrays, so per-cycle cost scales with activity.
        self.ring_deliv: List[List[np.ndarray]] = [[] for _ in range(_RING)]
        self.ring_pexit: List[List[np.ndarray]] = [[] for _ in range(_RING)]
        self.ring_rexit: List[List[np.ndarray]] = [[] for _ in range(_RING)]
        # Channels whose service ends (and may redispatch) at a cycle.
        self.ring_cend: List[List[np.ndarray]] = [[] for _ in range(_RING)]
        # Per-slot ring occupancy: number of scheduled index arrays across
        # all four rings.  The time-skip loop's next-event index — every
        # ring append pairs with an increment; the slot is zeroed when the
        # loop lands on it.
        self.ring_occ = np.zeros(_RING, dtype=np.int64)
        # Pending control-plane applications, keyed by apply cycle.
        self._pend_dpm: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}
        self._pend_dbr: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        # Preallocated staging/scratch: per-cycle candidate concatenation
        # and mask temporaries never allocate.  Sizing: each send part is
        # a disjoint node set (<= RN total); deliveries are bounded by one
        # in-flight packet per channel (RC) plus local hand-offs and recv
        # completions (RN each); dispatch candidates by service ends +
        # poked pair channels + fresh grants (3 * RC).
        self._st_send = np.empty(RN, dtype=np.int64)
        self._st_pexit = np.empty(RN, dtype=np.int64)
        self._st_rexit = np.empty(RN, dtype=np.int64)
        self._st_deliv = np.empty(RC + RN, dtype=np.int64)
        self._st_recv = np.empty(RC + 2 * RN, dtype=np.int64)
        self._st_disp = np.empty(3 * RC, dtype=np.int64)
        self._st_prn = np.empty(RN, dtype=np.int64)
        self._st_ppq = np.empty(RN, dtype=np.int64)
        self._st_ploc = np.empty(RN, dtype=np.int64)
        scratch = max(3 * RC, RC + 2 * RN)
        self._bm1 = np.empty(scratch, dtype=bool)
        # Rank-scan scratch (push/dispatch group ranking): a read-only
        # iota, two int64 work buffers, and bool mask buffers.  _bm3 is
        # returned from _push_pairs as the admit mask — valid until the
        # next push, which is at least one cycle away.
        self._iota = np.arange(scratch, dtype=np.int64)
        self._rk1 = np.empty(scratch, dtype=np.int64)
        self._rk2 = np.empty(scratch, dtype=np.int64)
        self._bm2 = np.empty(scratch, dtype=bool)
        self._bm3 = np.empty(scratch, dtype=bool)
        self._fp1 = np.empty(scratch, dtype=np.float64)
        self._fp2 = np.empty(scratch, dtype=np.float64)

    def _build_traffic(self) -> None:
        """Draw every run's full injection schedule up front.

        Gap draws consume each node's named stream exactly as the scalar
        engine does (chunk size cannot change the values); uniform
        destination draws are chunked on the same stream afterwards, which
        is the documented statistically-equivalent deviation.
        """
        R, N = self.R, self.N
        cfg = self.config
        params = CapacityParams(
            packet_bits=cfg.router.packet_bytes * 8,
            optical_gbps=cfg.power_levels.highest.bit_rate_gbps,
            electrical_gbps=cfg.router.port_gbps,
            clock_ghz=cfg.router.clock_ghz,
        )
        he = self.he
        times_parts: List[np.ndarray] = []
        rn_parts: List[np.ndarray] = []
        counts = np.zeros(R * N, dtype=np.int64)
        self.inj_measure = np.zeros(R, dtype=np.int64)
        self.pre_wu_inj = np.zeros(R, dtype=np.int64)
        self.lab_inj = np.zeros(R, dtype=np.int64)
        self.lab_prefix: List[np.ndarray] = []
        dest_parts: List[np.ndarray] = []
        for r in range(R):
            workload = self._workloads[r]
            rate = workload.injection_rate(cfg.topology, params)
            pattern = workload.resolve_pattern(cfg.topology)
            registry = RngRegistry(seed=workload.seed)
            run_lab_times: List[np.ndarray] = []
            # One sized draw usually covers the horizon (mean gap 1/rate,
            # so ~he*rate gaps reach he; the 6-sigma margin makes a top-up
            # draw rare).  Chunking never changes the values drawn.
            mean_gaps = he * rate
            n0 = int(mean_gaps + 6.0 * math.sqrt(mean_gaps) + 16.0)
            for n in range(N):
                stream = registry.stream(f"inject.{n}")
                if rate <= 0.0:
                    t = np.zeros(0, dtype=np.int64)
                else:
                    g = geometric_gap_array(stream, rate, n0)
                    total = int(g.sum())
                    if total < he:
                        gaps = [g]
                        while total < he:
                            g2 = geometric_gap_array(
                                stream, rate, _GAP_DRAW_CHUNK
                            )
                            gaps.append(g2)
                            total += int(g2.sum())
                        g = np.concatenate(gaps)
                    t = np.cumsum(g)
                    t = t[: np.searchsorted(t, he)]
                rn = r * N + n
                counts[rn] = len(t)
                times_parts.append(t)
                rn_parts.append(np.full(len(t), rn, dtype=np.int64))
                lo = int(np.searchsorted(t, self.wu))
                hi = int(np.searchsorted(t, self.me))
                self.inj_measure[r] += hi - lo
                self.pre_wu_inj[r] += lo
                run_lab_times.append(t[lo:hi])
                if pattern.is_permutation:
                    dest_parts.append(
                        np.full(len(t), pattern.dest(n), dtype=np.int16)
                    )
                else:
                    d = integer_array(stream, 0, N - 1, len(t))
                    d += d >= n
                    dest_parts.append(d.astype(np.int16))
            self.lab_inj[r] = self.inj_measure[r]
            lab = np.sort(np.concatenate(run_lab_times))
            prefix = np.zeros(len(lab) + 1)
            np.cumsum(lab, out=prefix[1:])
            self.lab_prefix.append(prefix)
        self.p_off = np.zeros(R * N + 1, dtype=np.int64)
        np.cumsum(counts, out=self.p_off[1:])
        self.flat_dest = (
            np.concatenate(dest_parts) if dest_parts else np.zeros(0, np.int16)
        )
        times_all = np.concatenate(times_parts) if times_parts else np.zeros(0, np.int64)
        rn_all = np.concatenate(rn_parts) if rn_parts else np.zeros(0, np.int64)
        order = np.argsort(times_all, kind="stable")
        self.evt_rn = rn_all[order]
        per_cycle = np.bincount(times_all.astype(np.int64), minlength=he + 1)
        self.evt_off = np.zeros(he + 2, dtype=np.int64)
        np.cumsum(per_cycle, out=self.evt_off[1 : len(per_cycle) + 1])
        self.evt_off[len(per_cycle) + 1 :] = self.evt_off[len(per_cycle)]
        # Compressed nonzero-injection-cycle index (ascending) — the
        # time-skip loop's "next injection" pointer walks this instead of
        # scanning the dense CSR offsets.
        self.inj_cycles = np.flatnonzero(np.diff(self.evt_off) > 0).astype(
            np.int64
        )

    # ------------------------------------------------------------------
    # Energy bookkeeping
    # ------------------------------------------------------------------
    def _flush_base(self, run_idx: np.ndarray, t: int) -> None:
        """Integrate enabled-channel power A(t) up to ``t`` for these runs."""
        ov = np.clip(
            np.minimum(t, self.me) - np.maximum(self.base_last[run_idx], self.wu),
            0.0,
            None,
        )
        self.base_E[run_idx] += self.base_A[run_idx] * ov
        self.base_last[run_idx] = t

    # ------------------------------------------------------------------
    # Pair-queue helpers
    # ------------------------------------------------------------------
    def _flush_occ(self, pqs: np.ndarray, t: int) -> None:
        self.occ_acc[pqs] += self.tx_qlen[pqs] * (t - self.q_last[pqs])
        self.q_last[pqs] = t

    def _push_pairs(
        self,
        pq: np.ndarray,
        loc: np.ndarray,
        rn: np.ndarray,
        t: int,
        poked: List[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Ranked admission of this cycle's packets into their pair queues.

        Returns ``(admit, srn, order)``: the boolean admit mask aligned
        with the *sorted* inputs, the sorted ``rn``, and the sort
        permutation (so callers can carry per-packet side data through the
        same ordering); blocked senders are exactly ``srn[~admit]``.
        Admission rank within a pair follows caller order (the scalar
        engine admits in event order — a same-cycle tie broken
        differently, inside tolerance).  Pairs that received packets are
        appended to ``poked`` so the dispatch phase can wake exactly their
        channels.
        """
        order = np.argsort(pq, kind="stable")
        spq = pq[order]
        sloc = loc[order]
        srn = rn[order]
        # Rank within each pair group.  spq is sorted, so the first index
        # of the group containing i is the running maximum of group-start
        # indices — an O(n) scan instead of searchsorted's n·log n binary
        # searches, with identical (integer) results.  All temporaries
        # live in preallocated scratch (allocation-free cycle loop).
        n = len(spq)
        idx = self._iota[:n]
        sneq = self._bm2[:n]
        sneq[0] = True
        np.not_equal(spq[1:], spq[:-1], out=sneq[1:])
        rank = self._rk1[:n]
        np.multiply(sneq, idx, out=rank)
        np.maximum.accumulate(rank, out=rank)
        np.subtract(idx, rank, out=rank)
        cap_left = self.tx_qlen[spq]
        np.subtract(self.CAP, cap_left, out=cap_left)
        admit = self._bm3[:n]
        np.less(rank, cap_left, out=admit)
        apq = spq[admit]
        m = len(apq)
        if m:
            slot = self.tx_head[apq]
            slot += self.tx_qlen[apq]
            slot += rank[admit]
            slot %= self.CAP
            neq = np.empty(m, dtype=bool)
            neq[0] = True
            np.not_equal(apq[1:], apq[:-1], out=neq[1:])
            cut = neq.nonzero()[0]
            upq = apq[cut]
            self._flush_occ(upq, t)
            ri = self._rk2[:m]
            np.multiply(apq, self.CAP, out=ri)
            ri += slot
            self.tx_ring[ri] = sloc[admit]
            cnt = np.empty(len(cut), dtype=np.int64)
            np.subtract(cut[1:], cut[:-1], out=cnt[:-1])
            cnt[-1] = m - cut[-1]
            self.tx_qlen[upq] += cnt
            poked.append(upq)
        return admit, srn, order

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _window_boundary(self, t: int) -> None:
        k = t // self.Wc
        # Freeze the LC hardware counters (the lockstep snapshot).
        self._flush_occ(np.arange(len(self.tx_qlen), dtype=np.int64), t)
        util = np.minimum(1.0, self.win_busy / self.Wc)
        buf_p = np.minimum(1.0, self.occ_acc / (self.Wc * self.CAP))
        qe_p = self.tx_qlen == 0
        owned = self.c_owner >= 0
        bu_rc = np.where(owned, buf_p[self.c_pq], 0.0)
        qe_rc = np.where(owned, qe_p[self.c_pq], True)
        # Every live row is active — drained runs are compacted away.
        run_power = self.run_dpm & (~self.run_dbr | (k % 2 == 1))
        run_bw = self.run_dbr & (~self.run_dpm | (k % 2 == 0))
        if run_power.any():
            self._pend_dpm[t + self.power_lat] = (util, bu_rc, qe_rc, run_power)
        if run_bw.any():
            chc = np.bincount(
                self.c_pq[owned], minlength=len(self.tx_qlen)
            )
            rc_idx, new_owner = self._plan_dbr(run_bw, buf_p, qe_p, chc)
            if len(rc_idx):
                self._pend_dbr[t + self.dbr_lat] = (rc_idx, new_owner)
        # Window reset: busy time carried across the boundary seeds the
        # next window; queue-occupancy integrals restart.
        np.copyto(self.win_busy, self.win_carry)
        self.win_carry.fill(0.0)
        self.occ_acc.fill(0.0)

    def _plan_dbr(
        self,
        run_bw: np.ndarray,
        buf_p: np.ndarray,
        qe_p: np.ndarray,
        chc: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run the real §3.2 allocator per (run, dest) on the snapshot."""
        B, W, CH = self.B, self.W, self.CH
        rcs: List[int] = []
        owners: List[int] = []
        for r in np.flatnonzero(run_bw):
            thresholds = self._policies[r].thresholds
            pq0 = r * B * B
            for d in range(B):
                states = []
                for w in range(W):
                    rc = r * CH + w * B + d
                    owner = int(self.c_owner[rc])
                    if owner < 0:
                        states.append(WavelengthState(w, None, 0.0, True, False))
                    else:
                        pq = pq0 + owner * B + d
                        states.append(
                            WavelengthState(
                                w, owner, float(buf_p[pq]), bool(qe_p[pq]), False
                            )
                        )
                demands = [
                    DestDemand(
                        s,
                        float(buf_p[pq0 + s * B + d]),
                        bool(qe_p[pq0 + s * B + d]),
                        int(chc[pq0 + s * B + d]),
                    )
                    for s in range(B)
                    if s != d
                ]
                for w, new_owner in dbr_plan(
                    d,
                    states,
                    demands,
                    thresholds,
                    self.rwa,
                    max_grants=self._policies[r].max_grants_per_dest,
                ):
                    rcs.append(r * CH + w * B + d)
                    owners.append(new_owner)
        return (
            np.array(rcs, dtype=np.int64),
            np.array(owners, dtype=np.int16),
        )

    def _apply_dpm(self, t: int, pend: Tuple[np.ndarray, ...]) -> None:
        util, bu, qe, run_power = pend
        CH = self.CH
        mask = np.repeat(run_power, CH) & (self.c_owner >= 0)
        sleep_cond = (util <= 0.0) & qe
        sleep_m = mask & sleep_cond & ~self.c_sleep
        down_m = mask & ~sleep_cond & (util < self.thr_lmin_rc) & (self.c_level > 0)
        up_m = (
            mask
            & ~sleep_cond
            & ~(util < self.thr_lmin_rc)
            & (util > self.thr_lmax_rc)
            & ((self.thr_bmax_rc <= 0.0) | (bu > self.thr_bmax_rc))
            & (self.c_level < self.L - 1)
        )
        changed = sleep_m | down_m | up_m
        if not changed.any():
            return
        runs_touched = np.unique(np.flatnonzero(changed) // CH)
        self._flush_base(runs_touched, t)
        idx = np.flatnonzero(sleep_m)
        if len(idx):
            runs = idx // CH
            # Slept channels were enabled (owned, awake): drop their draw.
            np.add.at(self.base_A, runs, -self.P_mw[self.c_level[idx]])
            self.c_sleep[idx] = True
            np.add.at(self.sleeps, runs, 1)
        for m, delta in ((down_m, -1), (up_m, +1)):
            idx = np.flatnonzero(m)
            if not len(idx):
                continue
            runs = idx // CH
            old = self.c_level[idx].astype(np.int64)
            new = old + delta
            awake = ~self.c_sleep[idx]
            np.add.at(
                self.base_A,
                runs[awake],
                self.P_mw[new[awake]] - self.P_mw[old[awake]],
            )
            self.c_level[idx] = new.astype(np.int8)
            self.c_stall[idx] = np.maximum(self.c_stall[idx], t + self.step_stall)
            np.add.at(self.dpm_transitions, runs, 1)

    def _apply_dbr(
        self, t: int, pend: Tuple[np.ndarray, np.ndarray]
    ) -> Optional[np.ndarray]:
        """Apply a pending grant plan; returns the granted channel ids.

        Pending plans are remapped (and emptied entries dropped) when runs
        compact out, so every entry here targets a live channel.
        """
        rc_idx, new_owner = pend
        if not len(rc_idx):
            return None
        CH, B = self.CH, self.B
        runs = rc_idx // CH
        self._flush_base(np.unique(runs), t)
        owner_before = self.c_owner[rc_idx]
        enabled_before = (owner_before >= 0) & ~self.c_sleep[rc_idx]
        lit = ~enabled_before
        np.add.at(self.base_A, runs[lit], self.P_mw[self.c_level[rc_idx[lit]]])
        old_pq = self.c_pq[rc_idx]
        self.c_owner[rc_idx] = new_owner
        self.c_sleep[rc_idx] = False
        dests = rc_idx % B
        new_pq = (runs * B + new_owner.astype(np.int64)) * B + dests
        self.c_pq[rc_idx] = new_pq
        np.add.at(self.grants, runs, 1)
        # Maintain the pair -> channels reverse index (grant plans are
        # small, so a python loop is fine here).
        pair_ch, pair_nch = self.pair_ch, self.pair_nch
        for rc, was, po, pn in zip(
            rc_idx.tolist(), owner_before.tolist(), old_pq.tolist(), new_pq.tolist()
        ):
            if was >= 0:
                row = pair_ch[po]
                k = self.pair_nch[po]
                for j in range(k):
                    if row[j] == rc:
                        row[j] = row[k - 1]
                        row[k - 1] = -1
                        break
                pair_nch[po] = k - 1
            row = pair_ch[pn]
            row[pair_nch[pn]] = rc
            pair_nch[pn] += 1
        return rc_idx

    # ------------------------------------------------------------------
    # The cycle loop
    # ------------------------------------------------------------------
    def run(self) -> List[RunResult]:
        """Advance the slab and return one :class:`RunResult` per run.

        Delegates to :meth:`run_payload` + :func:`decode_payload` so the
        in-process path and the cross-process (worker shard) path share a
        single results pipeline.
        """
        return decode_payload(self.run_payload(), self.runs)

    def run_payload(self) -> BatchResultPayload:
        """Advance the slab and return the compact payload.

        Every phase is event-driven: the only indices examined each cycle
        are the ones carried by the event rings (injections, port exits,
        deliveries, service ends) plus the compact blocked-sender list, so
        per-cycle cost scales with actual activity, not with slab size.
        With ``time_skip`` (the default) the loop additionally jumps over
        cycles that provably execute no event — see
        :func:`repro.core.skip.next_event_time` — so wall-clock cost
        scales with events executed, not cycles simulated.  Runs that
        drain mid-slab are compacted away (:meth:`_compact`), never
        re-masked.  Neither mechanism changes a result bit: the batch
        benchmark gates ``time_skip=True`` against ``time_skip=False``
        fingerprints at every grid size.
        """
        SEND, SER = self.SEND, self.SER
        N, B, D = self.N, self.B, self.D
        wu, me, he, Wc = self.wu, self.me, self.he, self.Wc
        evt_rn, evt_off = self.evt_rn, self.evt_off
        flat_dest, p_off = self.flat_dest, self.p_off
        p_started, p_injcnt = self.p_started, self.p_injcnt
        p_busy, p_blocked = self.p_busy, self.p_blocked
        r_qlen, r_busy = self.r_qlen, self.r_busy
        ring_deliv, ring_pexit = self.ring_deliv, self.ring_pexit
        ring_rexit, ring_cend = self.ring_rexit, self.ring_cend
        ring_occ = self.ring_occ
        bm1 = self._bm1
        push = self._push_pairs
        lockstep = self.lockstep_on
        time_skip = self.time_skip
        inj_cycles = self.inj_cycles
        inj_ptr = 0
        tel = BatchTelemetry(horizon=he + 1)
        self.telemetry = tel
        lab_cur = np.empty(self.R, dtype=np.int64)
        t = 0
        while t <= he:
            tel.cycles_executed += 1
            slot_i = t % _RING
            ring_occ[slot_i] = 0
            send_cand: List[np.ndarray] = []
            recv_cand: List[np.ndarray] = []
            disp_cand = ring_cend[slot_i]
            poked: List[np.ndarray] = []
            served = 0
            # (0) Control plane: window boundaries and pending applies.
            if lockstep:
                if t and t % Wc == 0:
                    self._window_boundary(t)
                    tel.window_boundaries += 1
                pend = self._pend_dpm.pop(t, None)
                if pend is not None:
                    self._apply_dpm(t, pend)
                pend2 = self._pend_dbr.pop(t, None)
                if pend2 is not None:
                    granted = self._apply_dbr(t, pend2)
                    if granted is not None:
                        disp_cand.append(granted)
            # (1) Injections arriving this cycle.  Nodes that are busy or
            # blocked are dropped from the start candidates here: if they
            # exit or unblock this same cycle, those phases re-add them,
            # which keeps the candidate parts disjoint (no dedup needed).
            lo = evt_off[t]
            hi = evt_off[t + 1]
            if hi > lo:
                inj = evt_rn[lo:hi]
                tel.injections += int(hi - lo)
                p_injcnt[inj] += 1
                m = np.bitwise_or(
                    p_busy[inj], p_blocked[inj], out=self._bm2[: len(inj)]
                )
                np.logical_not(m, out=m)
                inj_f = inj[m]
                if len(inj_f):
                    send_cand.append(inj_f)
            # (2) Optical deliveries landing this cycle.
            slot = ring_deliv[slot_i]
            if slot:
                arr = _cat(slot, self._st_deliv)
                slot.clear()
                tel.deliveries += len(arr)
                np.add.at(r_qlen, arr, 1)
                recv_cand.append(arr)
            # (3) Send-port exits route their packet; blocked senders
            # retry in the same ranked push (blocked first, so they keep
            # their earlier admission priority).
            rn_e = None
            slot = ring_pexit[slot_i]
            if slot:
                rn_e = _cat(slot, self._st_pexit)
                slot.clear()
                tel.port_exits += len(rn_e)
                p_busy[rn_e] = False
                send_cand.append(rn_e)
            rem_rn = None
            if rn_e is not None:
                dest_e = flat_dest[p_off[rn_e] + p_started[rn_e] - 1].astype(
                    np.int64
                )
                runs_e = rn_e // N
                sb_e = (rn_e % N) // D
                db_e = dest_e // D
                local = db_e == sb_e
                if local.any():
                    lrn = runs_e[local] * N + dest_e[local]
                    np.add.at(r_qlen, lrn, 1)
                    recv_cand.append(lrn)
                rem = ~local
                if rem.any():
                    rem_rn = rn_e[rem]
                    rem_pq = (runs_e[rem] * B + sb_e[rem]) * B + db_e[rem]
                    rem_loc = dest_e[rem] % D
            nblk = len(self.blk)
            if nblk or rem_rn is not None:
                if nblk:
                    tel.blocked_retries += nblk
                    blk = self.blk
                    dest_b = flat_dest[
                        p_off[blk] + p_started[blk] - 1
                    ].astype(np.int64)
                    blk_pq = ((blk // N) * B + (blk % N) // D) * B + dest_b // D
                    if rem_rn is not None:
                        rn_p = _cat([blk, rem_rn], self._st_prn)
                        pq_p = _cat([blk_pq, rem_pq], self._st_ppq)
                        loc_p = _cat([dest_b % D, rem_loc], self._st_ploc)
                    else:
                        rn_p, pq_p, loc_p = blk, blk_pq, dest_b % D
                else:
                    rn_p, pq_p, loc_p = rem_rn, rem_pq, rem_loc
                admit, srn, order = push(pq_p, loc_p, rn_p, t, poked)
                if nblk:
                    if rem_rn is not None:
                        sfresh = order >= nblk
                        freed = srn[admit & ~sfresh]
                        newly = srn[~admit & sfresh]
                        if len(newly):
                            p_blocked[newly] = True
                    else:
                        freed = srn[admit]
                    if len(freed):
                        p_blocked[freed] = False
                        send_cand.append(freed)
                    self.blk = srn[~admit]
                else:
                    newly = srn[~admit]
                    if len(newly):
                        p_blocked[newly] = True
                        self.blk = newly
            # (5) Send-port starts (same-cycle turnaround): candidates are
            # exactly the nodes whose state changed this cycle.
            if send_cand:
                cand = _cat(send_cand, self._st_send)
                m = np.bitwise_or(
                    p_busy[cand], p_blocked[cand], out=self._bm2[: len(cand)]
                )
                np.logical_not(m, out=m)
                m &= np.greater(
                    p_injcnt[cand], p_started[cand], out=self._bm3[: len(cand)]
                )
                idx = cand[m]
                if len(idx):
                    p_busy[idx] = True
                    p_started[idx] += 1
                    s = (t + SEND) % _RING
                    ring_pexit[s].append(idx)
                    ring_occ[s] += 1
            # (6) Channel dispatch: channels whose service just ended, plus
            # channels of pairs that were pushed to, plus fresh grants.
            if poked:
                pqu = poked[0] if len(poked) == 1 else np.concatenate(poked)
                chs = self.pair_ch[pqu].ravel()
                chs = chs[chs >= 0]
                if len(chs):
                    disp_cand.append(chs)
            if disp_cand:
                rcs = _cat(disp_cand, self._st_disp)
                disp_cand.clear()
                rcs.sort()
                served = self._dispatch(t, rcs)
                tel.dispatches += served
            # (7) Receive ports: completions then starts.
            slot = ring_rexit[slot_i]
            if slot:
                rn_c = _cat(slot, self._st_rexit)
                slot.clear()
                tel.recv_completions += len(rn_c)
                r_busy[rn_c] = False
                add = np.bincount(rn_c // N, minlength=self.R)
                self.delivered_total += add
                if wu <= t < me:
                    self.delivered_measure += add
                np.subtract(self.delivered_total, self.pre_wu_inj, out=lab_cur)
                np.maximum(lab_cur, 0, out=lab_cur)
                np.minimum(lab_cur, self.lab_inj, out=lab_cur)
                d = self._rk1[: self.R]
                np.subtract(lab_cur, self.lab_del, out=d)
                d *= t
                self.sum_del_t += d
                self.lab_del[:] = lab_cur
                recv_cand.append(rn_c)
            if recv_cand:
                cand = _cat(recv_cand, self._st_recv)
                cand.sort()
                k = len(cand)
                m = bm1[:k]
                m[0] = True
                np.not_equal(cand[1:], cand[:-1], out=m[1:])
                m &= ~r_busy[cand] & (r_qlen[cand] > 0)
                idx = cand[m]
                if len(idx):
                    r_busy[idx] = True
                    r_qlen[idx] -= 1
                    s = (t + SER) % _RING
                    ring_rexit[s].append(idx)
                    ring_occ[s] += 1
            # (8) Drain checks on the scalar engine's chunk grid; drained
            # runs are compacted out of the live state entirely.
            if t >= me and (t - me) % self.chunk == 0:
                tel.drain_checks += 1
                done = self.lab_del == self.lab_inj
                if done.any():
                    self._compact(done, t)
                    tel.compactions += 1
                    if self.R == 0:
                        break
                    p_started, p_injcnt = self.p_started, self.p_injcnt
                    p_busy, p_blocked = self.p_busy, self.p_blocked
                    r_qlen, r_busy = self.r_qlen, self.r_busy
                    evt_rn, evt_off = self.evt_rn, self.evt_off
                    flat_dest, p_off = self.flat_dest, self.p_off
                    lockstep = self.lockstep_on
                    inj_cycles = self.inj_cycles
                    inj_ptr = 0
                    lab_cur = np.empty(self.R, dtype=np.int64)
            # Advance: one grid cycle in always-step mode, or jump to the
            # next cycle that can observably do something.  The two
            # mandatory-stop conditions that fire on nearly every busy
            # cycle (a freed queue slot with senders waiting, an occupied
            # ring slot at t+1) are checked inline so the full next-event
            # computation only runs when a jump is actually possible.
            if time_skip:
                if (served and len(self.blk)) or ring_occ[(t + 1) % _RING]:
                    t += 1
                else:
                    pend_min = None
                    if lockstep and (self._pend_dpm or self._pend_dbr):
                        pend_min = min(
                            min(self._pend_dpm, default=he + 1),
                            min(self._pend_dbr, default=he + 1),
                        )
                    t2, inj_ptr = next_event_time(
                        t,
                        he,
                        ring_occ,
                        inj_cycles,
                        inj_ptr,
                        lockstep,
                        Wc,
                        me,
                        self.chunk,
                        pend_min,
                        False,
                    )
                    tel.cycles_skipped += t2 - t - 1
                    t = t2
            else:
                t += 1
        self._flush_base(np.arange(self.R, dtype=np.int64), he)
        return self._payload()

    def _dispatch(self, t: int, cand: np.ndarray) -> int:
        """Serve the candidate channels (sorted, possibly repeated) at ``t``.

        Returns the number of packets taken off pair queues — the signal
        the time-skip loop uses to force a stop at ``t + 1`` while any
        sender sits blocked (a freed queue slot admits a blocked sender on
        the following cycle in the always-step engine).

        Small candidate sets (the common case outside saturation) take a
        scalar per-channel path that mirrors the vectorized arithmetic
        operation for operation: iterating channels in ascending id order
        reproduces the wavelength ranking, sequential queue pops read the
        same ring slots as the gathered ranks, and a second same-cycle
        integral flush adds exactly ``0.0`` — IEEE doubles round
        identically either way, so the fast path is bit-invisible.
        """
        n = len(cand)
        if n <= 16:
            served = 0
            prev = -1
            one = self._dispatch_one
            for rc in cand.tolist():
                if rc != prev:
                    prev = rc
                    served += one(t, rc)
            return served
        keep = self._bm1[:n]
        keep[0] = True
        np.not_equal(cand[1:], cand[:-1], out=keep[1:])
        keep &= self.c_busy_until[cand] <= t
        cand = cand[keep]
        if not len(cand):
            return 0
        pqs = self.c_pq[cand]
        has = self.tx_qlen[pqs] > 0
        cand = cand[has]
        n = len(cand)
        if not n:
            return 0
        pqs = pqs[has]
        CAP, B, D, N, CH = self.CAP, self.B, self.D, self.N, self.CH
        # Rank same-pair channels by ascending wavelength (cand is sorted
        # rc-ascending = wavelength-ascending within a pair).
        order = np.argsort(pqs, kind="stable")
        spq = pqs[order]
        # O(n) group-rank scan (see _push_pairs): identical integer ranks
        # without searchsorted's n·log n binary searches.  Temporaries
        # live in the shared scratch pools — _push_pairs's slices are dead
        # by dispatch time (phase 4 completes before phase 6).
        idx = self._iota[:n]
        sneq = self._bm2[:n]
        sneq[0] = True
        np.not_equal(spq[1:], spq[:-1], out=sneq[1:])
        rank = self._rk1[:n]
        np.multiply(sneq, idx, out=rank)
        np.maximum.accumulate(rank, out=rank)
        np.subtract(idx, rank, out=rank)
        serve = sneq
        np.less(rank, self.tx_qlen[spq], out=serve)
        chosen = cand[order][serve]
        if not len(chosen):
            return 0
        cpq = spq[serve]
        crank = rank[serve]
        ri = self._rk2[: len(cpq)]
        np.add(self.tx_head[cpq], crank, out=ri)
        ri %= CAP
        slot_base = self._rk1[: len(cpq)]  # rank's storage, dead here
        np.multiply(cpq, CAP, out=slot_base)
        ri += slot_base
        loc = self.tx_ring[ri].astype(np.int64)
        m = len(cpq)
        neq = np.empty(m, dtype=bool)
        neq[0] = True
        np.not_equal(cpq[1:], cpq[:-1], out=neq[1:])
        cut = neq.nonzero()[0]
        upq = cpq[cut]
        self._flush_occ(upq, t)
        counts = np.empty(len(cut), dtype=np.int64)
        np.subtract(cut[1:], cut[:-1], out=counts[:-1])
        counts[-1] = m - cut[-1]
        self.tx_qlen[upq] -= counts
        self.tx_head[upq] = (self.tx_head[upq] + counts) % CAP
        runs = chosen // CH
        # Wake DPM-slept lasers (the packet pays wake_cycles; the laser
        # starts drawing idle power immediately).
        slp = self.c_sleep[chosen]
        if slp.any():
            widx = chosen[slp]
            wruns = runs[slp]
            self._flush_base(np.unique(wruns), t)
            np.add.at(self.base_A, wruns, self.P_mw[self.c_level[widx]])
            self.c_sleep[widx] = False
        # From here on the float temporaries chain through the scratch
        # pools with ``out=``; every arithmetic op, and the order of the
        # unbuffered ``np.add.at`` accumulations, is unchanged — the
        # results are bit-identical, only the allocator traffic is gone.
        k2 = len(chosen)
        wake = self._rk1[:k2]  # rank/slot_base storage, dead here
        np.multiply(slp, self.WAKE, out=wake)
        wake += t
        start = self.c_stall[chosen].astype(float)
        np.maximum(start, wake, out=start)
        lvl = self.c_level[chosen].astype(np.int64)
        end = self.svc_by_level[lvl]
        end += start
        self.c_busy_until[chosen] = end
        # Busy energy over the measurement window.
        ov = self._fp1[:k2]
        np.minimum(end, self.me, out=ov)
        hi = self._fp2[:k2]
        np.maximum(start, self.wu, out=hi)
        ov -= hi
        np.maximum(ov, 0.0, out=ov)
        pw = hi  # reuse: the window-clip bound is dead
        np.multiply(self.P_mw[lvl], ov, out=pw)
        np.add.at(self.busy_E, runs, pw)
        # Link_util busy time, split at the next window boundary.
        wend = (t // self.Wc + 1) * self.Wc
        wb = ov  # reuse: the energy overlap is dead
        np.minimum(end, wend, out=wb)
        wb -= start
        np.maximum(wb, 0.0, out=wb)
        self.win_busy[chosen] += wb
        wc = pw  # reuse: the power weights are dead
        np.maximum(start, wend, out=wc)
        np.subtract(end, wc, out=wc)
        np.maximum(wc, 0.0, out=wc)
        self.win_carry[chosen] += wc
        # Deliveries (fiber + destination pipeline after service) and the
        # channel's own re-dispatch moment, grouped by completion cycle.
        np.ceil(end, out=end)
        end_i = end.astype(np.int64)
        rn_dest = self._rk2[:k2]  # ring-slot indices, dead here
        np.remainder(cpq, B, out=rn_dest)
        rn_dest *= D
        rn_dest += loc
        runs *= N
        rn_dest += runs
        order2 = np.argsort(end_i, kind="stable")
        end_s = end_i[order2]
        rn_s = rn_dest[order2]
        ch_s = chosen[order2]
        k = len(end_s)
        neq2 = np.empty(k, dtype=bool)
        neq2[0] = True
        np.not_equal(end_s[1:], end_s[:-1], out=neq2[1:])
        cut2 = neq2.nonzero()[0]
        bounds = cut2.tolist()
        bounds.append(k)
        times = end_s[cut2].tolist()
        ring_deliv, ring_cend = self.ring_deliv, self.ring_cend
        ring_occ = self.ring_occ
        deliv = self.DELIV
        for i, et in enumerate(times):
            lo = bounds[i]
            hi = bounds[i + 1]
            s1 = et % _RING
            ring_cend[s1].append(ch_s[lo:hi])
            ring_occ[s1] += 1
            s2 = (et + deliv) % _RING
            ring_deliv[s2].append(rn_s[lo:hi])
            ring_occ[s2] += 1
        return len(chosen)

    def _dispatch_one(self, t: int, rc: int) -> int:
        """Scalar dispatch of a single candidate channel (see _dispatch).

        Every expression mirrors the vectorized path's elementwise
        arithmetic exactly; only the array machinery is gone.
        """
        if self.c_busy_until[rc] > t:
            return 0
        pq = int(self.c_pq[rc])
        qlen = int(self.tx_qlen[pq])
        if qlen <= 0:
            return 0
        CAP = self.CAP
        head = int(self.tx_head[pq])
        loc = int(self.tx_ring[pq * CAP + head % CAP])
        self.occ_acc[pq] += qlen * (t - int(self.q_last[pq]))
        self.q_last[pq] = t
        self.tx_qlen[pq] = qlen - 1
        self.tx_head[pq] = (head + 1) % CAP
        run = rc // self.CH
        lvl = int(self.c_level[rc])
        slp = bool(self.c_sleep[rc])
        if slp:
            bl = float(self.base_last[run])
            ovb = max(min(t, self.me) - max(bl, self.wu), 0.0)
            self.base_E[run] += self.base_A[run] * ovb
            self.base_last[run] = t
            self.base_A[run] += self.P_mw[lvl]
            self.c_sleep[rc] = False
        start = float(max(t + self.WAKE * slp, int(self.c_stall[rc])))
        end = start + float(self.svc_by_level[lvl])
        self.c_busy_until[rc] = end
        ov = max(min(end, self.me) - max(start, self.wu), 0.0)
        self.busy_E[run] += float(self.P_mw[lvl]) * ov
        wend = (t // self.Wc + 1) * self.Wc
        self.win_busy[rc] += max(min(end, wend) - start, 0.0)
        self.win_carry[rc] += max(end - max(start, wend), 0.0)
        end_i = math.ceil(end)
        rn_dest = run * self.N + (pq % self.B) * self.D + loc
        s1 = end_i % _RING
        self.ring_cend[s1].append(np.array([rc], dtype=np.int64))
        self.ring_occ[s1] += 1
        s2 = (end_i + self.DELIV) % _RING
        self.ring_deliv[s2].append(np.array([rn_dest], dtype=np.int64))
        self.ring_occ[s2] += 1
        return 1

    def _scatter(self, rows: np.ndarray) -> None:
        """Write these live rows' final metrics at their original slots.

        The per-run arithmetic (labeled-latency FIFO proxy, energy /
        measure-window division) happens here, on the producer side, with
        the exact scalar expressions the engine always used — the decoder
        only unpacks, so where a payload is produced never affects the
        bits of the results.
        """
        if not len(rows):
            return
        o = self.orig[rows]
        self.out_delivered[o] = self.delivered_measure[rows]
        self.out_inj[o] = self.inj_measure[rows]
        self.out_lab_inj[o] = self.lab_inj[rows]
        self.out_lab_del[o] = self.lab_del[rows]
        self.out_grants[o] = self.grants[rows]
        self.out_dpm[o] = self.dpm_transitions[rows]
        self.out_sleeps[o] = self.sleeps[rows]
        self.out_power[o] = (
            self.idle_frac * self.base_E[rows]
            + (1.0 - self.idle_frac) * self.busy_E[rows]
        ) / self.measure
        owned = (self.c_owner >= 0).reshape(self.R, self.CH)
        self.out_lasers[o] = np.count_nonzero(owned[rows], axis=1)
        for i, r in zip(o.tolist(), rows.tolist()):
            lab_del = int(self.lab_del[r])
            if lab_del > 0:
                self.out_avg_lat[i] = float(
                    (self.sum_del_t[r] - self.lab_prefix[r][lab_del]) / lab_del
                )

    def _compact(self, done: np.ndarray, t: int) -> None:
        """Remove drained runs from the live state (order-preserving).

        Scatters their final metrics into the original-index output
        arrays, then compacts every run/node/pair/channel array and remaps
        every stored index (ring events, blocked senders, injection CSR,
        channel<->pair cross-references, pending control-plane plans).
        The remap preserves relative order, so every later stable sort
        produces the same permutation of the surviving rows — compaction
        is bit-invisible to the results.  Replaces the old per-phase
        active-mask filtering: the loop pays for drained runs exactly
        once, here.
        """
        R, N, B, CH, CAP = self.R, self.N, self.B, self.CH, self.CAP
        BB = B * B
        frozen = np.flatnonzero(done)
        self._flush_base(frozen, t)
        self._scatter(frozen)
        keep_r = ~done
        R2 = int(np.count_nonzero(keep_r))
        self.orig = self.orig[keep_r]
        new_of_old = np.cumsum(keep_r, dtype=np.int64) - 1
        for name in (
            "inj_measure", "pre_wu_inj", "lab_inj", "delivered_total",
            "delivered_measure", "lab_del", "sum_del_t", "base_A",
            "base_last", "base_E", "busy_E", "grants", "dpm_transitions",
            "sleeps", "run_dpm", "run_dbr",
        ):
            setattr(self, name, getattr(self, name)[keep_r])
        keep_list = keep_r.tolist()
        self.lab_prefix = [p for p, k in zip(self.lab_prefix, keep_list) if k]
        self._policies = [p for p, k in zip(self._policies, keep_list) if k]
        self._workloads = [w for w, k in zip(self._workloads, keep_list) if k]
        # Node-major arrays + the blocked-sender list.
        keep_n = np.repeat(keep_r, N)
        for name in (
            "p_injcnt", "p_started", "p_busy", "p_blocked", "r_qlen", "r_busy",
        ):
            setattr(self, name, getattr(self, name)[keep_n])
        if len(self.blk):
            blk = self.blk[keep_n[self.blk]]
            self.blk = new_of_old[blk // N] * N + blk % N
        # Pair-major arrays (tx_ring is CAP-wide per pair) and the
        # pair -> channels reverse index (values are channel ids).
        keep_pq = np.repeat(keep_r, BB)
        for name in ("tx_head", "tx_qlen", "occ_acc", "q_last", "pair_nch"):
            setattr(self, name, getattr(self, name)[keep_pq])
        self.tx_ring = self.tx_ring.reshape(R, BB * CAP)[keep_r].ravel()
        pc = self.pair_ch[keep_pq]
        pos = pc >= 0
        v = pc[pos]
        pc[pos] = new_of_old[v // CH] * CH + v % CH
        self.pair_ch = pc
        # Channel-major arrays and the channel -> pair index.
        keep_rc = np.repeat(keep_r, CH)
        for name in (
            "c_owner", "c_level", "c_sleep", "c_stall", "c_busy_until",
            "win_busy", "win_carry", "thr_lmin_rc", "thr_lmax_rc",
            "thr_bmax_rc",
        ):
            setattr(self, name, getattr(self, name)[keep_rc])
        cpq = self.c_pq[keep_rc]
        cpq = new_of_old[cpq // BB] * BB + cpq % BB
        # Unowned channels keep the placeholder pair 0 (never read).
        cpq[self.c_owner < 0] = 0
        self.c_pq = cpq
        # Injection CSR: drop removed nodes' events, recount offsets.
        ev_keep = keep_n[self.evt_rn]
        csum = np.zeros(len(ev_keep) + 1, dtype=np.int64)
        np.cumsum(ev_keep, dtype=np.int64, out=csum[1:])
        self.evt_off = csum[self.evt_off]
        rn = self.evt_rn[ev_keep]
        self.evt_rn = new_of_old[rn // N] * N + rn % N
        self.inj_cycles = np.flatnonzero(np.diff(self.evt_off) > 0).astype(
            np.int64
        )
        # Destination streams.
        node_counts = np.diff(self.p_off)
        el_keep = np.repeat(keep_n, node_counts)
        self.flat_dest = self.flat_dest[el_keep]
        kept_counts = node_counts[keep_n]
        self.p_off = np.zeros(len(kept_counts) + 1, dtype=np.int64)
        np.cumsum(kept_counts, out=self.p_off[1:])
        # Event rings: filter each slot's arrays, remap, recount occupancy.
        self.ring_occ.fill(0)
        for ring, div, keep_i in (
            (self.ring_deliv, N, keep_n),
            (self.ring_pexit, N, keep_n),
            (self.ring_rexit, N, keep_n),
            (self.ring_cend, CH, keep_rc),
        ):
            for s, slot in enumerate(ring):
                if not slot:
                    continue
                new_slot = []
                for arr in slot:
                    arr = arr[keep_i[arr]]
                    if len(arr):
                        new_slot.append(
                            new_of_old[arr // div] * div + arr % div
                        )
                slot[:] = new_slot
                self.ring_occ[s] += len(new_slot)
        # Pending control-plane plans: snapshots shrink with the state.
        for key in list(self._pend_dpm):
            util, bu, qe, run_power = self._pend_dpm[key]
            self._pend_dpm[key] = (
                util[keep_rc], bu[keep_rc], qe[keep_rc], run_power[keep_r]
            )
        for key in list(self._pend_dbr):
            rc_idx, new_owner = self._pend_dbr[key]
            m = keep_rc[rc_idx]
            rc_idx, new_owner = rc_idx[m], new_owner[m]
            if len(rc_idx):
                rc_idx = new_of_old[rc_idx // CH] * CH + rc_idx % CH
                self._pend_dbr[key] = (rc_idx, new_owner)
            else:
                del self._pend_dbr[key]
        self.R = R2
        self.lockstep_on = bool((self.run_dpm | self.run_dbr).any())
        if not self.lockstep_on:
            # No surviving run is power-aware: any leftover pending plan
            # could only have touched removed runs (a provable no-op), so
            # drop it rather than have the skip loop stop for it.
            self._pend_dpm.clear()
            self._pend_dbr.clear()

    # ------------------------------------------------------------------
    def _payload(self) -> BatchResultPayload:
        """Package the original-index output arrays as the transport.

        Runs that drained mid-slab were scattered at compaction time;
        this scatters whatever is still live, so the payload always spans
        the engine's original run list regardless of how many compactions
        happened along the way.
        """
        self._scatter(np.arange(self.R, dtype=np.int64))
        return BatchResultPayload(
            delivered_measure=self.out_delivered,
            inj_measure=self.out_inj,
            lab_inj=self.out_lab_inj,
            lab_del=self.out_lab_del,
            avg_latency=self.out_avg_lat,
            power_mw=self.out_power,
            grants=self.out_grants,
            dpm_transitions=self.out_dpm,
            sleeps=self.out_sleeps,
            lasers_on_final=self.out_lasers,
        )
