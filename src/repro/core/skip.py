"""Event-horizon bookkeeping for the batch engine's time-skipping loop.

:class:`~repro.core.batch.BatchEngine` advances a slab of runs on one
shared integer cycle grid.  At the low-load end of the paper's sweep —
exactly where the DPM/Lock-Step savings the paper cares about live —
most grid cycles execute no event at all: no injection arrives, no ring
slot holds a delivery/port-exit/service-end, no Lock-Step boundary or
pending control-plane apply or drain check falls on the cycle, and no
blocked sender can possibly be admitted.  Such a cycle is an exact no-op
on the engine state (the energy and queue-occupancy integrals are lazy),
so the loop may jump straight to the next cycle that can observably do
something without changing a single result bit.

This module holds the two pieces of that machinery that are independent
of the engine's array layout:

* :func:`next_event_time` — the pure next-event computation: a min over
  the occupied ring slots (per-slot occupancy counters maintained by the
  engine), the next nonempty injection cycle (a compressed index over
  the precomputed injection CSR), the next Lock-Step window boundary and
  earliest pending ``_pend_dpm``/``_pend_dbr`` apply, the drain-check
  grid, and the blocked-sender retry condition.
* :class:`BatchTelemetry` — per-slab counters (cycles executed/skipped,
  events per phase) surfaced through ``erapid profile --engine batch``,
  shard reports, and the ``skip`` dimension of ``BENCH_batch.json``.

Both are covered by the same linter/layering scope as the engine itself
(``MODULE_LAYERS['repro.core.skip']``, SIM007's vectorized-engine scope).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "BatchTelemetry",
    "next_event_time",
]


@dataclass(slots=True)
class BatchTelemetry:
    """Per-slab activity counters for one :meth:`BatchEngine.run_payload`.

    ``cycles_executed + cycles_skipped == horizon`` whenever the slab ran
    to its hard end; a slab that drained early stops short of the horizon
    (the remaining cycles are neither executed nor skipped).  The event
    counters are phase totals across all runs in the slab, so they are
    layout-dependent diagnostics — never part of the result payload,
    which stays bit-identical across skip modes and shard layouts.
    """

    horizon: int = 0
    cycles_executed: int = 0
    cycles_skipped: int = 0
    injections: int = 0
    deliveries: int = 0
    port_exits: int = 0
    dispatches: int = 0
    recv_completions: int = 0
    blocked_retries: int = 0
    window_boundaries: int = 0
    drain_checks: int = 0
    compactions: int = 0

    @property
    def skip_ratio(self) -> float:
        """Fraction of visited grid cycles that were skipped."""
        total = self.cycles_executed + self.cycles_skipped
        return self.cycles_skipped / total if total else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "horizon": self.horizon,
            "cycles_executed": self.cycles_executed,
            "cycles_skipped": self.cycles_skipped,
            "skip_ratio": self.skip_ratio,
            "injections": self.injections,
            "deliveries": self.deliveries,
            "port_exits": self.port_exits,
            "dispatches": self.dispatches,
            "recv_completions": self.recv_completions,
            "blocked_retries": self.blocked_retries,
            "window_boundaries": self.window_boundaries,
            "drain_checks": self.drain_checks,
            "compactions": self.compactions,
        }


def next_event_time(
    t: int,
    hard_end: int,
    ring_occ: np.ndarray,
    inj_cycles: np.ndarray,
    inj_ptr: int,
    lockstep: bool,
    window_cycles: int,
    measure_end: int,
    chunk: int,
    pend_min: Optional[int],
    retry_pending: bool,
) -> Tuple[int, int]:
    """Earliest cycle after ``t`` at which the batch loop must execute.

    Returns ``(t_next, inj_ptr)`` with ``t < t_next <= hard_end + 1``
    (``hard_end + 1`` terminates the loop) and the advanced injection-
    cycle pointer.  A cycle is a mandatory stop when any of these can
    fire on it:

    * an occupied ring slot — ``ring_occ[s] > 0`` means slot ``s`` holds
      at least one scheduled delivery/port-exit/recv-exit/service-end
      array.  All scheduled times live in ``(t, t + ring_len)`` (the
      coverage gate bounds every lead below the ring length), so slot
      ``s`` denotes absolute cycle ``t+1 + ((s - t - 1) mod ring_len)``
      without aliasing.
    * the next nonempty injection cycle (``inj_cycles``, ascending).
    * a Lock-Step window boundary or the earliest pending DPM/DBR apply
      (only when the slab has any power-aware run left).
    * a drain-check grid point ``measure_end + k * chunk`` — mandatory
      even though no packet moves, because *when* a run freezes gates
      which control-plane updates still touch its counters.
    * ``t + 1`` itself when a dispatch served packets this cycle while
      senders sit blocked (``retry_pending``): a freed queue slot admits
      a blocked sender on the very next cycle in the unskipped engine.
      While no pop occurs, a blocked sender's pair queue stays full and
      every retry is an exact no-op, so blocked senders alone never
      force single-stepping.
    """
    t1 = t + 1
    if retry_pending:
        return t1, inj_ptr
    n = len(inj_cycles)
    while inj_ptr < n and inj_cycles[inj_ptr] <= t:
        inj_ptr += 1
    ring_len = len(ring_occ)
    if ring_occ[t1 % ring_len]:
        return t1, inj_ptr
    nxt = hard_end + 1
    if inj_ptr < n:
        nxt = int(inj_cycles[inj_ptr])
    occupied = np.flatnonzero(ring_occ)
    if len(occupied):
        nxt = min(nxt, t1 + int(((occupied - t1) % ring_len).min()))
    if lockstep:
        nxt = min(nxt, (t // window_cycles + 1) * window_cycles)
        if pend_min is not None:
            nxt = min(nxt, pend_min)
    if t1 <= measure_end:
        grid = measure_end
    else:
        grid = measure_end + -((measure_end - t1) // chunk) * chunk
    nxt = min(nxt, grid)
    return max(t1, min(nxt, hard_end + 1)), inj_ptr
