"""The fast (event-driven, packet-granular) E-RAPID engine.

This engine runs the full evaluation sweeps.  Structure per packet:

1. **Injection** — Bernoulli gaps sampled directly (O(1)/packet); the
   packet enters the node's send queue.
2. **Send port** — serializes at the Table-1 electrical rate (32 cycles
   per 64 B packet) plus the 4-cycle router pipeline.  Local packets go
   straight to the destination node's receive queue; remote packets enter
   the board's per-destination transmitter queue (backpressure when full —
   the LC's bounded buffer).
3. **Optical channel** — every (wavelength, dest) channel owned by the
   source board drains the transmitter queue; service time is the packet
   serialization at the channel's *current power level*, plus fiber and
   destination-IBI pipeline latency.  DVS stalls, DPM sleep/wake penalties
   and DBR ownership changes all act at packet boundaries.
4. **Receive port** — 32-cycle ejection serialization, then delivery.

The Lock-Step coordinator, RCs and LCs mutate channel state on window
boundaries; the power accountant integrates every channel's instantaneous
draw.  Flit-level behaviour is validated against
:mod:`repro.core.detailed` on small configurations.

Callback state machines
-----------------------
The per-packet pipeline runs as flat continuation-passing callbacks, not
generator coroutines: each hold schedules its continuation directly via
:meth:`~repro.sim.kernel.Simulator.schedule_late` (the priority-1
continuation class, which reproduces the coroutine formulation's event
total order — see the kernel docs), and the send port's serialization +
pipeline timeouts are fused into a single event.  A waitable is never
allocated on the hot path; blocking is modelled by flags
(``OpticalChannel.parked``, ``NodeModel.send_busy``/``recv_busy``) plus an
engine-side registry of backpressured senders, and
``SuperHighway.owned_wavelengths`` makes ``_poke_pair`` /
``channels_owned_by`` owner-index hits instead of channel scans.  The
pre-rewrite coroutine engine is frozen in
:mod:`repro.perf.legacy_engine` as the benchmark baseline; every
:class:`~repro.metrics.collector.RunResult` metric except the executed
``events`` count is bit-identical between the two.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.board import BoardModel
from repro.core.config import ERapidConfig
from repro.core.link_controller import OpticalChannel
from repro.core.lockstep import LockStepCoordinator
from repro.core.node import NodeModel
from repro.core.reconfig_controller import ReconfigController
from repro.errors import ConfigurationError
from repro.metrics.collector import Collector, MeasurementPlan, RunResult
from repro.network.packet import Packet
from repro.optics.srs import SuperHighway
from repro.power.energy import EnergyAccountant
from repro.sim.kernel import Simulator
from repro.sim.queues import MonitoredStore
from repro.sim.trace import TraceLog
from repro.traffic.injection import TrafficSource
from repro.traffic.workload import WorkloadSpec

__all__ = ["FastEngine"]


class FastEngine:
    """Event-driven simulation of one E-RAPID run."""

    def __init__(
        self,
        config: ERapidConfig,
        workload: WorkloadSpec,
        plan: MeasurementPlan = MeasurementPlan(),
        trace: Optional[TraceLog] = None,
        sources: Optional[List[TrafficSource]] = None,
    ) -> None:
        self.config = config
        self.topology = config.topology
        self.workload = workload
        self.plan = plan
        self.trace = trace
        self.sim = Simulator(trace=trace)
        self.srs = SuperHighway(self.topology)
        self.accountant = EnergyAccountant(cycle_ns=1.0 / config.router.clock_ghz)
        self.collector = Collector(plan, self.topology.total_nodes)

        self.boards: List[BoardModel] = [
            BoardModel(self.sim, b, self.topology, config.tx_queue_capacity)
            for b in range(self.topology.boards)
        ]
        #: (wavelength, dest) -> channel state; one per receiver slot.
        self.channels: Dict[Tuple[int, int], OpticalChannel] = {}
        self._channels_by_dest: Dict[int, List[OpticalChannel]] = {
            d: [] for d in range(self.topology.boards)
        }
        for d in range(self.topology.boards):
            for w in range(self.topology.wavelengths):
                ch = OpticalChannel(self, w, d)
                self.channels[(w, d)] = ch
                self._channels_by_dest[d].append(ch)

        self.rcs: List[ReconfigController] = [
            ReconfigController(self, b) for b in range(self.topology.boards)
        ]
        self.lockstep = LockStepCoordinator(self)

        from repro.traffic.capacity import CapacityParams

        params = CapacityParams(
            packet_bits=config.router.packet_bytes * 8,
            optical_gbps=config.power_levels.highest.bit_rate_gbps,
            electrical_gbps=config.router.port_gbps,
            clock_ghz=config.router.clock_ghz,
        )
        if sources is not None:
            if len(sources) != self.topology.total_nodes:
                raise ConfigurationError(
                    f"need {self.topology.total_nodes} sources, got {len(sources)}"
                )
            self.sources = list(sources)
        else:
            self.sources = workload.build_sources(self.topology, params)
        self._started = False

        # Hot-path constants and the backpressure registry: send ports
        # blocked on a full transmitter queue park here (FIFO per pair)
        # until a channel pops a slot free.
        self._ser: float = config.router.packet_serialization_cycles
        self._pipeline: float = config.router.pipeline_cycles
        self._deliver_latency: float = (
            config.optical.fiber_latency_cycles + config.router.pipeline_cycles
        )
        self._hard_end: float = plan.hard_end
        self._blocked: Dict[Tuple[int, int], Deque[Tuple[NodeModel, Packet]]] = {}

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def pair_queue(self, src_board: int, dst_board: int) -> MonitoredStore:
        """The transmitter queue of board ``src_board`` toward ``dst_board``."""
        return self.boards[src_board].tx_queue(dst_board)

    def channels_owned_by(self, board: int) -> List[OpticalChannel]:
        """Every channel the board's transmitters currently drive.

        Served from the SRS owner index — O(channels owned), not O(W x B).
        Order matches the pre-index scan: destination-major, wavelength
        ascending (the ``channels`` dict insertion order, filtered).
        """
        channels = self.channels
        owned = self.srs.owned_wavelengths
        return [
            channels[(w, d)]
            for d in range(self.topology.boards)
            for w in owned(board, d)
        ]

    def node_model(self, node: int) -> NodeModel:
        b = self.topology.board_of(node)
        return self.boards[b].nodes[self.topology.local_of(node)]

    # ------------------------------------------------------------------
    # Reconfiguration actuation
    # ------------------------------------------------------------------
    def apply_grant(self, dest: int, wavelength: int, new_owner: Optional[int]) -> None:
        """Link-Response-stage actuation of one ownership change."""
        self.srs.grant(dest, wavelength, new_owner)
        ch = self.channels[(wavelength, dest)]
        ch.on_ownership_change()
        if new_owner is not None and len(self.pair_queue(new_owner, dest)) > 0:
            self._poke_channel(ch)

    def inject_laser_failure(self, dest: int, wavelength: int, at: float) -> None:
        """Schedule a hard channel failure at simulation time ``at``.

        The laser goes dark mid-run; any in-flight packet completes (the
        failure acts at the next dispatch, like every reconfiguration).
        Traffic queued on the owning pair recovers via DBR: the pair shows
        up channel-less with a non-empty queue at the next bandwidth window
        and is granted a surviving wavelength.
        """
        if self.sim.now > at:
            raise ConfigurationError(f"failure time {at} is in the past")
        self.sim.schedule_at(at, self._fail_now, dest, wavelength)

    def _fail_now(self, dest: int, wavelength: int) -> None:
        old_owner = self.srs.fail_channel(dest, wavelength)
        ch = self.channels[(wavelength, dest)]
        ch.on_ownership_change()
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "failure", f"ch({wavelength},{dest})",
                "laser failed", lost_owner=old_owner,
            )

    def _poke_channel(self, ch: OpticalChannel) -> None:
        """Schedule a dispatch for a parked channel (idempotent until it runs)."""
        if ch.parked:
            ch.parked = False
            self.sim.schedule_late(0.0, self._dispatch, ch)

    def _poke_pair(self, src_board: int, dst_board: int) -> None:
        """Wake one parked channel owned by the pair (called after a put).

        Iterates only the wavelengths the pair owns (SRS owner index), in
        ascending order — the same selection the pre-index scan over
        ``_channels_by_dest`` made.
        """
        channels = self.channels
        for w in self.srs.owned_wavelengths(src_board, dst_board):
            ch = channels[(w, dst_board)]
            if ch.parked:
                ch.parked = False
                self.sim.schedule_late(0.0, self._dispatch, ch)
                return

    # ------------------------------------------------------------------
    # Callback state machines (one per port / channel, not one process)
    # ------------------------------------------------------------------
    def start(
        self,
        *,
        node_order: Optional[List[int]] = None,
        channel_order: Optional[List[Tuple[int, int]]] = None,
    ) -> None:
        """Schedule the initial injection ticks (idempotent guard).

        ``node_order`` / ``channel_order`` override the start-up order of
        the per-node machines and (formerly) the per-channel processes.
        Start-up order only sets the FIFO sequence numbers of same-time
        events, so a deterministic model produces identical results under
        any permutation of the *same* order — the determinism auditor
        (:mod:`repro.analysis.determinism`) exploits this to flag hidden
        iteration-order dependence.  Channels are born parked and woken by
        pokes, so ``channel_order`` is validated but schedules nothing.
        """
        if self._started:
            raise ConfigurationError("engine already started")
        self._started = True
        nodes = list(range(self.topology.total_nodes))
        if node_order is not None:
            if sorted(node_order) != nodes:
                raise ConfigurationError(
                    f"node_order must permute 0..{len(nodes) - 1}"
                )
            nodes = list(node_order)
        for node in nodes:
            model = self.node_model(node)
            source = self.sources[node]
            if hasattr(source.process, "bind_clock"):
                source.process.bind_clock(lambda: self.sim.now)
            self.sim.schedule_late(
                source.next_gap(), self._injection_tick, model, source
            )
        if channel_order is not None:
            if sorted(channel_order) != sorted(self.channels):
                raise ConfigurationError(
                    "channel_order must permute the engine's channel keys"
                )
        self.lockstep.start_fast()

    # Injection -----------------------------------------------------------
    #
    # Same-instant ordering contract: the coroutine engine interleaved all
    # machines' zero-delay steps through one FIFO of resume events, so a
    # state transition that took k suspensions landed k positions deep in
    # that instant's cascade.  The callback machines keep each such hop as
    # an explicit zero-delay continuation (``schedule_late(0.0, ...)``)
    # rather than calling through — collapsing a hop would move its
    # scheduling earlier in the FIFO and (rarely, under same-cycle
    # collisions) reorder same-time events against the coroutine engine,
    # breaking bit-identity of the run metrics.  Timed holds still fuse the
    # coroutine's fire + resume pair into a single event.
    def _injection_tick(self, model: NodeModel, source: TrafficSource) -> None:
        """One injection: make the packet, feed the send port."""
        now = self.sim.now
        if now >= self._hard_end:
            return
        pkt = source.next_packet(now, labeled=self.collector.labeling(now))
        model.injected += 1
        self.collector.on_injected(pkt, now)
        if model.send_busy:
            model.send_queue.try_put(pkt)
        else:
            model.send_queue.record_handoff()
            model.send_busy = True
            self.sim.schedule_late(0.0, self._send_begin, model, pkt)
        self.sim.schedule_late(0.0, self._injection_next, model, source)

    def _injection_next(self, model: NodeModel, source: TrafficSource) -> None:
        """Draw the next gap and re-arm (the coroutine's loop-around hop)."""
        self.sim.schedule_late(
            source.next_gap(), self._injection_tick, model, source
        )

    # Send port -----------------------------------------------------------
    def _send_begin(self, model: NodeModel, pkt: Packet) -> None:
        pkt.injected_at = self.sim.now
        self.sim.schedule_late(self._ser, self._send_mid, model, pkt)

    def _send_mid(self, model: NodeModel, pkt: Packet) -> None:
        # Serialization done; cross the router pipeline.  This anchor event
        # is not fused into ``_send_begin``: same-time continuations run in
        # scheduling order, so the arrival event must be *seeded here*, at
        # the serialization boundary — exactly where the coroutine engine
        # created its pipeline timeout — or arrivals would sort against
        # same-instant events by the wrong moment and (rarely) swap
        # same-time deliveries.  Each hold is still one event, not the
        # coroutine's fire + resume pair.
        self.sim.schedule_late(self._pipeline, self._send_done, model, pkt)

    def _send_done(self, model: NodeModel, pkt: Packet) -> None:
        s = model.board
        d = self.topology.board_of(pkt.dst)
        if d == s:
            # Intra-board: skip the optical plane.  The coroutine's local
            # branch had no blocking put, so the next pop happens in this
            # event, one cascade level shallower than the remote branch.
            self._deliver(self.node_model(pkt.dst), pkt)
            self._send_pop(model)
            return
        q = self.pair_queue(s, d)
        if not q.offer(pkt):
            # Backpressure: the send port stalls while the LC buffer is
            # full (wormhole blocking into the IBI); a channel pop re-admits
            # the packet and restarts the port.
            self._blocked.setdefault((s, d), deque()).append((model, pkt))
            self._poke_pair(s, d)
            return
        self._poke_pair(s, d)
        self.sim.schedule_late(0.0, self._send_pop, model)

    def _send_pop(self, model: NodeModel) -> None:
        """Pop the next packet for the send port, or go idle."""
        ok, pkt = model.send_queue.try_get()
        if ok:
            self.sim.schedule_late(0.0, self._send_begin, model, pkt)
        else:
            model.send_busy = False

    # Optical channel -----------------------------------------------------
    def _dispatch(self, ch: OpticalChannel) -> None:
        """One dispatch attempt: pop the owner's queue or park."""
        owner = self.srs.owner[ch.dest][ch.wavelength]
        if owner is not None:
            q = self.pair_queue(owner, ch.dest)
            ok, pkt = q.try_get()
            if ok:
                blocked = self._blocked.get((owner, ch.dest))
                if blocked:
                    # The pop freed one LC buffer slot: re-admit the oldest
                    # backpressured sender and restart its port.
                    bmodel, bpkt = blocked.popleft()
                    q.admit(bpkt)
                    self.sim.schedule_late(0.0, self._send_pop, bmodel)
                self._serve(ch, pkt)
                return
        ch.parked = True

    def _serve(self, ch: OpticalChannel, pkt: Packet) -> None:
        wake_stall = ch.wake()
        if wake_stall > 0:
            self.sim.schedule_late(wake_stall, self._wake_done, ch, pkt)
            return
        self._wake_done(ch, pkt)

    def _wake_done(self, ch: OpticalChannel, pkt: Packet) -> None:
        stall = ch.stall_until - self.sim.now
        if stall > 0:
            # DVS transition / residual wake penalty at the packet boundary.
            self.sim.schedule_late(stall, self._begin_service, ch, pkt)
            return
        self._begin_service(ch, pkt)

    def _begin_service(self, ch: OpticalChannel, pkt: Packet) -> None:
        ch.set_busy(True)
        self.sim.schedule_late(
            ch.service_cycles(pkt.size_bytes), self._end_service, ch, pkt
        )

    def _end_service(self, ch: OpticalChannel, pkt: Packet) -> None:
        ch.set_busy(False)
        ch.packets_served += 1
        pkt.wavelength = ch.wavelength
        self.sim.schedule_fast(
            self._deliver_latency, self._deliver, self.node_model(pkt.dst), pkt
        )
        # Greedy: grab the next packet in the same event (the coroutine
        # loop did the same within its service-done resume).
        self._dispatch(ch)

    # Receive port --------------------------------------------------------
    def _deliver(self, model: NodeModel, pkt: Packet) -> None:
        if model.recv_busy:
            model.recv_queue.try_put(pkt)
        else:
            model.recv_queue.record_handoff()
            model.recv_busy = True
            self.sim.schedule_late(0.0, self._recv_start, model, pkt)

    def _recv_start(self, model: NodeModel, pkt: Packet) -> None:
        """Begin ejection serialization (the coroutine's getter-resume hop)."""
        self.sim.schedule_late(self._ser, self._recv_done, model, pkt)

    def _recv_done(self, model: NodeModel, pkt: Packet) -> None:
        now = self.sim.now
        pkt.delivered_at = now
        model.delivered += 1
        self.collector.on_delivered(pkt, now)
        ok, nxt = model.recv_queue.try_get()
        if ok:
            self.sim.schedule_late(0.0, self._recv_start, model, nxt)
        else:
            model.recv_busy = False

    # ------------------------------------------------------------------
    # Window bookkeeping
    # ------------------------------------------------------------------
    def reset_windows(self) -> None:
        for key in sorted(self.channels):
            self.channels[key].reset_window()
        for board in self.boards:
            board.reset_windows()

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Warm up, measure, drain; return the run metrics."""
        if not self._started:
            self.start()
        plan = self.plan
        self.sim.run(until=plan.warmup)
        self.accountant.reset_window(self.sim.now)
        self.sim.run(until=plan.measure_end)
        self.collector.power_avg_mw = self.accountant.window_average_mw(self.sim.now)
        # Drain: run in chunks until every labeled packet lands (or cap).
        chunk = max(1000.0, self.config.control.window_cycles / 2)
        t = plan.measure_end
        while not self.collector.drained() and t < plan.hard_end:
            t = min(t + chunk, plan.hard_end)
            self.sim.run(until=t)
        return self.collector.result(
            policy=self.config.policy.name,
            pattern=self.workload.pattern,
            load=self.workload.load,
            grants=self.srs.grants,
            dpm_transitions=sum(
                self.channels[k].dpm_transitions for k in sorted(self.channels)
            ),
            sleeps=sum(self.channels[k].sleeps for k in sorted(self.channels)),
            lasers_on_final=self.srs.lasers_on(),
            events=self.sim.event_count,
        )
