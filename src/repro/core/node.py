"""Per-node model: network-interface queues and statistics.

Each node owns a send port and a receive port (§2.1).  In the fast engine
these are single-server queues with the Table-1 electrical serialization
time (32 cycles/packet at 6.4 Gbps); the engine runs one process per port.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.queues import MonitoredStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

__all__ = ["NodeModel"]


class NodeModel:
    """Queues and counters for one compute node."""

    __slots__ = (
        "node_id",
        "board",
        "send_queue",
        "recv_queue",
        "injected",
        "delivered",
        "send_busy",
        "recv_busy",
    )

    def __init__(self, sim: "Simulator", node_id: int, board: int) -> None:
        self.node_id = node_id
        self.board = board
        #: Packets awaiting send-port serialization (NI injection FIFO).
        self.send_queue = MonitoredStore(sim, name=f"n{node_id}.send")
        #: Packets awaiting receive-port serialization (NI ejection FIFO).
        self.recv_queue = MonitoredStore(sim, name=f"n{node_id}.recv")
        self.injected = 0
        self.delivered = 0
        #: Callback engine: a send/recv completion event is in flight, so
        #: new arrivals buffer instead of starting the port directly.
        self.send_busy = False
        self.recv_busy = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NodeModel {self.node_id}@b{self.board} "
            f"send={len(self.send_queue)} recv={len(self.recv_queue)}>"
        )
