"""The paper's contribution: the E-RAPID system model and the Lock-Step
power/bandwidth reconfiguration protocol (DPM + DBR)."""

from repro.core.config import ControlParams, ERapidConfig, RouterParams
from repro.core.dbr import DestDemand, WavelengthState, classify, dbr_plan
from repro.core.dpm import DpmAction, LinkWindowStats, dpm_decide
from repro.core.engine import FastEngine
from repro.core.erapid import ERapidSystem
from repro.core.lockstep import LockStepCoordinator
from repro.core.policies import (
    NP_B,
    NP_NB,
    P_B,
    P_NB,
    POLICIES,
    ReconfigPolicy,
    Thresholds,
    make_policy,
)
from repro.core.reconfig_controller import (
    PairWindowStats,
    ReconfigController,
    WindowSnapshot,
)

__all__ = [
    "ControlParams",
    "DestDemand",
    "DpmAction",
    "ERapidConfig",
    "ERapidSystem",
    "FastEngine",
    "LinkWindowStats",
    "LockStepCoordinator",
    "NP_B",
    "NP_NB",
    "P_B",
    "P_NB",
    "POLICIES",
    "PairWindowStats",
    "ReconfigController",
    "ReconfigPolicy",
    "RouterParams",
    "Thresholds",
    "WavelengthState",
    "WindowSnapshot",
    "classify",
    "dbr_plan",
    "dpm_decide",
    "make_policy",
]
