"""Link controllers and optical channel state.

The paper attaches a Link Controller (LC) to every optical transmitter /
receiver pair.  In the fast engine an :class:`OpticalChannel` bundles, for
one (wavelength, destination) channel:

* the LC's hardware counters (``Link_util`` busy signal per window),
* the DPM state machine (power level, DVS stall, sleep/wake),
* the instantaneous power pushed into the system energy accountant,
* the dispatch hooks the engine's channel-server process uses.

Ownership (which source board drives the channel) lives in the
:class:`~repro.optics.srs.SuperHighway`; the channel reads it on every
dispatch so a DBR grant takes effect at the next packet boundary — the
paper's requirement that reconfiguration never corrupts in-flight packets.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.dpm import DpmAction, LinkWindowStats
from repro.power.levels import PowerLevel
from repro.sim.events import Waitable
from repro.sim.stats import TimeWeighted

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import FastEngine

__all__ = ["OpticalChannel"]


class OpticalChannel:
    """State + LC for one (λ, destination board) optical channel."""

    __slots__ = (
        "engine",
        "wavelength",
        "dest",
        "key",
        "level",
        "sleeping",
        "stall_until",
        "busy",
        "busy_signal",
        "work_signal",
        "idle",
        "parked",
        "packets_served",
        "dpm_transitions",
        "sleeps",
        "wakes",
        "util_smoothed",
    )

    def __init__(self, engine: "FastEngine", wavelength: int, dest: int) -> None:
        self.engine = engine
        self.wavelength = wavelength
        self.dest = dest
        self.key = (wavelength, dest)
        cfg = engine.config
        self.level: PowerLevel = cfg.power_levels.highest
        #: DPM sleep (laser gated while idle); wakes on the next packet.
        self.sleeping = False
        #: Link disabled until this time (DVS transition / wake penalty).
        self.stall_until = 0.0
        self.busy = False
        #: Link_util counter: busy fraction per window.
        self.busy_signal = TimeWeighted(engine.sim.now, 0.0)
        #: Dispatch signal the legacy coroutine channel process parks on.
        self.work_signal: Optional[Waitable] = None
        self.idle = True
        #: Callback engine: the channel is waiting for a poke (no pending
        #: dispatch event).  Plays the role of ``idle`` + ``work_signal``
        #: without allocating a waitable per idle period.
        self.parked = True
        self.packets_served = 0
        self.dpm_transitions = 0
        self.sleeps = 0
        self.wakes = 0
        #: EWMA of window link utilization (None until the first window).
        self.util_smoothed: Optional[float] = None
        self._push_power()

    # ------------------------------------------------------------------
    @property
    def owner(self) -> Optional[int]:
        """Source board currently owning this channel (None = dark)."""
        return self.engine.srs.owner_of(self.dest, self.wavelength)

    @property
    def enabled(self) -> bool:
        """Laser lit: owned and not DPM-slept."""
        return self.owner is not None and not self.sleeping

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def _push_power(self) -> None:
        now = self.engine.sim.now
        mw = self.engine.config.link_power.instantaneous_mw(
            self.enabled, self.level, self.busy
        )
        self.engine.accountant.set_channel_power(self.key, now, mw)

    def set_busy(self, busy: bool) -> None:
        if busy == self.busy:
            return
        self.busy = busy
        self.busy_signal.update(self.engine.sim.now, 1.0 if busy else 0.0)
        self._push_power()

    # ------------------------------------------------------------------
    # LC hardware counters
    # ------------------------------------------------------------------
    def window_stats(self) -> LinkWindowStats:
        """Snapshot the LC counters for the window that just ended."""
        now = self.engine.sim.now
        link_util = min(1.0, self.busy_signal.window(now))
        owner = self.owner
        if owner is None:
            return LinkWindowStats(0.0, 0.0, True)
        queue = self.engine.pair_queue(owner, self.dest)
        return LinkWindowStats(
            link_util=link_util,
            buffer_util=min(1.0, queue.buffer_util(now)),
            queue_empty=len(queue) == 0,
        )

    def reset_window(self) -> None:
        self.busy_signal.reset_window(self.engine.sim.now)

    def smoothed_util(self, window_util: float) -> float:
        """Fold this window's utilization into the EWMA and return the
        value the DPM rule should see (equals ``window_util`` when the
        policy's ``dpm_smoothing`` is 0 — the paper's raw counter)."""
        alpha = self.engine.config.policy.dpm_smoothing
        if alpha <= 0.0:
            self.util_smoothed = window_util
            return window_util
        if self.util_smoothed is None:
            self.util_smoothed = window_util
        else:
            self.util_smoothed = (
                alpha * self.util_smoothed + (1.0 - alpha) * window_util
            )
        return self.util_smoothed

    # ------------------------------------------------------------------
    # DPM actuation
    # ------------------------------------------------------------------
    def apply_dpm(self, action: DpmAction) -> None:
        """Apply a §3.1 decision: level step, sleep, or hold.

        Level changes inject the bit-rate control packet: the link stalls
        for the DVS transition and the receiver re-clocks (Figure 2a's
        one-to-one transmitter/receiver mapping).
        """
        cfg = self.engine.config
        now = self.engine.sim.now
        if action is DpmAction.SLEEP:
            if not self.sleeping and self.owner is not None:
                self.sleeping = True
                self.sleeps += 1
                rx = self.engine.srs.receiver(self.dest, self.wavelength)
                rx.set_powered(False)
                self._push_power()
            return
        if action is DpmAction.HOLD:
            return
        table = cfg.power_levels
        target = table.up(self.level) if action is DpmAction.UP else table.down(self.level)
        if target is self.level:
            return
        stall = cfg.transitions.stall_cycles(table, self.level, target)
        self.level = target
        self.stall_until = max(self.stall_until, now + stall)
        self.dpm_transitions += 1
        rx = self.engine.srs.receiver(self.dest, self.wavelength)
        if rx.powered:
            rx.reclock(target.bit_rate_gbps, now, stall)
        self._push_power()

    def wake(self) -> float:
        """Leave DPM sleep; returns the wake stall in cycles."""
        if not self.sleeping:
            return 0.0
        self.sleeping = False
        self.wakes += 1
        rx = self.engine.srs.receiver(self.dest, self.wavelength)
        rx.set_powered(True)
        self._push_power()
        return float(self.engine.config.wake_cycles)

    def on_ownership_change(self) -> None:
        """Called when DBR re-assigns (or darkens) this channel."""
        # A newly granted channel starts awake; a darkened one draws zero.
        if self.sleeping and self.owner is not None:
            self.sleeping = False
        rx = self.engine.srs.receiver(self.dest, self.wavelength)
        rx.set_powered(self.owner is not None)
        self._push_power()

    # ------------------------------------------------------------------
    def service_cycles(self, size_bytes: int) -> float:
        """Packet serialization time at the current level."""
        return self.engine.config.optical.packet_service_cycles(
            size_bytes, self.level.bit_rate_gbps
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dark" if self.owner is None else (
            "sleeping" if self.sleeping else ("busy" if self.busy else "idle")
        )
        return (
            f"<OpticalChannel λ{self.wavelength}->b{self.dest} "
            f"owner={self.owner} {self.level.name} {state}>"
        )
