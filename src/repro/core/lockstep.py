"""The Lock-Step (LS) coordinator.

§3: "The power-bandwidth reconfiguration algorithm is implemented every R_w
by the board reconfiguration controller RC_i.  We implement odd-even
reconfiguration, where every odd cycle R_w = 1, 3, 5 ... RC_i triggers the
power-awareness cycle and every even cycle, R_w = 2, 4, 6 ... the bandwidth
reconfiguration cycle is triggered."

The coordinator models the synchronized window boundary: it snapshots every
LC's hardware counters, resets them for the next window, and hands the
snapshot to all RCs simultaneously — the lock-step property that a control
packet is received exactly as the next one is transmitted.  Configurations
with only one mechanism enabled run it every window (Figure 3's
R_w = R_p / R_w = R_B cases).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.reconfig_controller import PairWindowStats, WindowSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import FastEngine

__all__ = ["LockStepCoordinator"]


class LockStepCoordinator:
    """Drives every board's RC at each reconfiguration-window boundary."""

    def __init__(self, engine: "FastEngine") -> None:
        self.engine = engine
        self.windows_elapsed = 0

    def start(self) -> None:
        """Coroutine mode (the legacy engine's registration path)."""
        policy = self.engine.config.policy
        if policy.dpm or policy.dbr:
            self.engine.sim.process(self._run(), name="lockstep")

    def start_fast(self) -> None:
        """Callback mode: one priority-1 tick per window boundary.

        The continuation class (:meth:`~repro.sim.kernel.Simulator.
        schedule_late`) puts the boundary in the same position the
        coroutine's resume occupied: after every directly-scheduled event
        at the boundary instant, ordered FIFO against the other
        continuations by when each was scheduled.
        """
        policy = self.engine.config.policy
        if policy.dpm or policy.dbr:
            self.engine.sim.schedule_late(
                self.engine.config.control.window_cycles, self._tick
            )

    # ------------------------------------------------------------------
    def _run(self):
        sim = self.engine.sim
        window = self.engine.config.control.window_cycles
        while True:
            yield sim.timeout(window)
            self.windows_elapsed += 1
            self._window_boundary(self.windows_elapsed)

    def _tick(self) -> None:
        self.windows_elapsed += 1
        self._window_boundary(self.windows_elapsed)
        self.engine.sim.schedule_late(
            self.engine.config.control.window_cycles, self._tick
        )

    def _window_boundary(self, k: int) -> None:
        engine = self.engine
        policy = engine.config.policy
        snapshot = self.take_snapshot(k)
        engine.reset_windows()
        run_power = policy.dpm and (not policy.dbr or k % 2 == 1)
        run_bandwidth = policy.dbr and (not policy.dpm or k % 2 == 0)
        for rc in engine.rcs:
            if run_power:
                rc.schedule_power_cycle(snapshot)
            if run_bandwidth:
                rc.schedule_bandwidth_cycle(snapshot)

    # ------------------------------------------------------------------
    def take_snapshot(self, k: int) -> WindowSnapshot:
        """Freeze every LC counter at the window boundary."""
        engine = self.engine
        topo = engine.topology
        now = engine.sim.now
        channels = {}
        owners = {}
        for key in sorted(engine.channels):
            ch = engine.channels[key]
            channels[ch.key] = ch.window_stats()
            owners[ch.key] = ch.owner
        pairs = {}
        for s in range(topo.boards):
            for d in range(topo.boards):
                if s == d:
                    continue
                q = engine.pair_queue(s, d)
                pairs[(s, d)] = PairWindowStats(
                    buffer_util=min(1.0, q.buffer_util(now)),
                    queue_empty=len(q) == 0,
                    channel_count=len(engine.srs.channels_from(s, d)),
                )
        return WindowSnapshot(
            time=now, window_index=k, channels=channels, owners=owners, pairs=pairs
        )
