"""The user-facing E-RAPID system facade.

Typical use::

    from repro import ERapidSystem, WorkloadSpec, P_B

    system = ERapidSystem.build(boards=8, nodes_per_board=8, policy=P_B)
    result = system.run(WorkloadSpec(pattern="complement", load=0.5))
    print(result.summary())

``run`` builds a fresh fast engine per call so repeated runs (load sweeps)
are independent and reproducible for a fixed seed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

from repro.core.config import ERapidConfig
from repro.core.engine import FastEngine
from repro.core.policies import ReconfigPolicy, make_policy
from repro.metrics.collector import MeasurementPlan, RunResult
from repro.network.topology import ERapidTopology
from repro.sim.trace import TraceLog
from repro.traffic.workload import WorkloadSpec

__all__ = ["ERapidSystem"]


class ERapidSystem:
    """Configured E-RAPID instance; every ``run`` is one simulation."""

    def __init__(self, config: ERapidConfig) -> None:
        self.config = config
        self.last_engine: Optional[FastEngine] = None

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        boards: int = 8,
        nodes_per_board: int = 8,
        policy: Union[str, ReconfigPolicy] = "NP-NB",
        **overrides,
    ) -> "ERapidSystem":
        """Construct a system from the common knobs.

        ``overrides`` are forwarded to :class:`ERapidConfig` (e.g.
        ``tx_queue_capacity=32``, ``seed=7``, ``control=...``).
        """
        if isinstance(policy, str):
            policy = make_policy(policy)
        topology = ERapidTopology(boards=boards, nodes_per_board=nodes_per_board)
        config = ERapidConfig(topology=topology, policy=policy, **overrides)
        return cls(config)

    def with_policy(self, policy: Union[str, ReconfigPolicy]) -> "ERapidSystem":
        """Same system, different design-space corner."""
        if isinstance(policy, str):
            policy = make_policy(policy)
        return ERapidSystem(self.config.with_policy(policy))

    # ------------------------------------------------------------------
    def run(
        self,
        workload: WorkloadSpec,
        plan: Optional[MeasurementPlan] = None,
        trace: Optional[TraceLog] = None,
    ) -> RunResult:
        """Simulate one workload; returns throughput/latency/power metrics."""
        plan = plan or MeasurementPlan()
        # Runs share the config seed unless the workload carries its own.
        workload = replace(workload, seed=workload.seed or self.config.seed)
        engine = FastEngine(self.config, workload, plan, trace=trace)
        self.last_engine = engine
        return engine.run()

    def describe(self) -> str:
        return self.config.describe()
