"""Dynamic Power Management — the §3.1 decision rule, as pure logic.

Each link controller reads its hardware counters at the end of a power
window and picks one action:

* ``SLEEP`` — the link carried nothing and has nothing queued: gate the
  laser and receiver (dynamic link shutdown).  The link wakes automatically
  (paying ``wake_cycles``) when the next packet arrives.
* ``DOWN``  — Link_util < L_min: step one power level down.
* ``UP``    — Link_util > L_max *and* (B_max == 0 or Buffer_util > B_max):
  step one power level up.  B_max = 0 is the conservative P-NB variant
  (scale up on the link threshold alone); B_max > 0 is the aggressive P-B
  variant that waits for real congestion (§4.2).
* ``HOLD``  — otherwise (including saturating at the ladder ends).

The function is pure so it can be property-tested exhaustively; the link
controller applies the action with the DVS stall penalties.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigurationError
from repro.core.policies import Thresholds

__all__ = ["LinkWindowStats", "DpmAction", "dpm_decide"]


@dataclass(frozen=True, slots=True)
class LinkWindowStats:
    """One LC's hardware counters over the previous window R_w."""

    #: Fraction of cycles the transmitter was clocking a packet out.
    link_util: float
    #: Time-averaged transmitter-queue occupancy / capacity.
    buffer_util: float
    #: Whether the transmitter queue is empty right now.
    queue_empty: bool

    def __post_init__(self) -> None:
        if not 0.0 <= self.link_util <= 1.0 + 1e-9:
            raise ConfigurationError(f"link_util out of range: {self.link_util}")
        if not 0.0 <= self.buffer_util <= 1.0 + 1e-9:
            raise ConfigurationError(f"buffer_util out of range: {self.buffer_util}")


class DpmAction(Enum):
    SLEEP = "sleep"
    DOWN = "down"
    UP = "up"
    HOLD = "hold"


def dpm_decide(
    stats: LinkWindowStats,
    thresholds: Thresholds,
    at_lowest: bool,
    at_highest: bool,
) -> DpmAction:
    """The §3.1 dynamic power regulation rule for one link."""
    if stats.link_util <= 0.0 and stats.queue_empty:
        return DpmAction.SLEEP
    if stats.link_util < thresholds.l_min:
        return DpmAction.DOWN if not at_lowest else DpmAction.HOLD
    if stats.link_util > thresholds.l_max:
        buffer_gate = thresholds.b_max <= 0.0 or stats.buffer_util > thresholds.b_max
        if buffer_gate:
            return DpmAction.UP if not at_highest else DpmAction.HOLD
    return DpmAction.HOLD
