"""Reconfiguration policies — the Figure 3 design space.

The four corners the paper evaluates:

==========  =====  =====  ==========================================
Config      DPM    DBR    Thresholds
==========  =====  =====  ==========================================
``NP-NB``   off    off    —
``P-NB``    on     off    L_min 0.4, L_max 0.7, B_max 0.0 (conservative:
                          scale up on the link threshold alone, §4.2:
                          "the links are not allowed to completely
                          saturate")
``NP-B``    off    on     B_min 0.0, B_max 0.3
``P-B``     on     on     L_min 0.7, L_max 0.9, B_max 0.3 (§3.1's
                          aggressive band: "aggressively push the link
                          utilization to the limit"; scale up only when
                          link *and* buffer exceed)
==========  =====  =====  ==========================================

§3.1 fixes L_min = 0.7 / L_max = 0.9 for the aggressive (P-B) corner —
the wide lower band is what drives links *down* the level ladder until
utilization lands just below saturation, which is where the energy/bit
savings live.  P-NB's lower L_max (0.7, per §4.2) with a correspondingly
lower L_min keeps it stable without letting links saturate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Thresholds", "ReconfigPolicy", "NP_NB", "P_NB", "NP_B", "P_B",
           "POLICIES", "make_policy"]


@dataclass(frozen=True, slots=True)
class Thresholds:
    """Utilization thresholds driving DPM (§3.1) and DBR (§3.2)."""

    #: Scale the bit rate down below this link utilization.
    l_min: float = 0.3
    #: Scale the bit rate up above this link utilization.
    l_max: float = 0.9
    #: DBR: a link is *under-utilized* (donor) at or below this buffer util.
    b_min: float = 0.0
    #: DBR: a link is *over-utilized* (needs bandwidth) above this buffer
    #: util; DPM additionally requires it before scaling up when > 0.
    b_max: float = 0.3

    def __post_init__(self) -> None:
        for name in ("l_min", "l_max", "b_min", "b_max"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ConfigurationError(f"{name} must be in [0,1], got {v}")
        if self.l_min >= self.l_max:
            raise ConfigurationError(
                f"l_min ({self.l_min}) must be < l_max ({self.l_max})"
            )
        if self.b_min > self.b_max:
            raise ConfigurationError(
                f"b_min ({self.b_min}) must be <= b_max ({self.b_max})"
            )


@dataclass(frozen=True, slots=True)
class ReconfigPolicy:
    """One corner of the power/bandwidth design space."""

    name: str
    #: Dynamic Power Management: bit-rate/voltage scaling + idle-link sleep.
    dpm: bool
    #: Dynamic Bandwidth Re-allocation: wavelength ownership re-assignment.
    dbr: bool
    thresholds: Thresholds = Thresholds()
    #: Optional cap on DBR grants per destination per window (the paper's
    #: future-work "limited flexibility" alternative; None = unlimited).
    max_grants_per_dest: int | None = None
    #: EWMA weight on *past* windows when computing the utilization the DPM
    #: rule sees (0 = the paper's raw per-window counter; towards 1 = the
    #: §5 future-work "multiple power scaling techniques" direction: slower
    #: but steadier level tracking, fewer re-clock stalls).
    dpm_smoothing: float = 0.0

    def __post_init__(self) -> None:
        if self.max_grants_per_dest is not None and self.max_grants_per_dest < 0:
            raise ConfigurationError("max_grants_per_dest must be >= 0 or None")
        if not 0.0 <= self.dpm_smoothing < 1.0:
            raise ConfigurationError(
                f"dpm_smoothing must be in [0,1), got {self.dpm_smoothing}"
            )

    @property
    def power_aware(self) -> bool:
        return self.dpm

    @property
    def bandwidth_reconfigured(self) -> bool:
        return self.dbr


#: Non-power-aware, non-bandwidth-reconfigured baseline.
NP_NB = ReconfigPolicy("NP-NB", dpm=False, dbr=False)
#: Power-aware only; conservative scale-up (B_max = 0: link threshold alone,
#: and a lower L_max so links are not allowed to fully saturate — §4.2).
P_NB = ReconfigPolicy(
    "P-NB", dpm=True, dbr=False, thresholds=Thresholds(l_min=0.4, l_max=0.7, b_max=0.0)
)
#: Bandwidth-reconfigured only.
NP_B = ReconfigPolicy("NP-B", dpm=False, dbr=True)
#: The paper's Lock-Step target: both, with the aggressive thresholds.
P_B = ReconfigPolicy(
    "P-B", dpm=True, dbr=True, thresholds=Thresholds(l_min=0.7, l_max=0.9, b_max=0.3)
)

POLICIES = {p.name: p for p in (NP_NB, P_NB, NP_B, P_B)}


def make_policy(name: str) -> ReconfigPolicy:
    """Look up one of the four paper configurations by name."""
    try:
        return POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; known: {sorted(POLICIES)}"
        ) from None
