"""Routing functions for the detailed router models.

The intra-board interconnect (IBI) is a single router whose ports are the
D node NIs plus the W optical transmitter ports (Figure 2a).  Routing is
therefore a direct lookup:

* destination on this board  -> the destination node's ejection port;
* destination on board ``d`` -> the transmitter port for the wavelength the
  RWA (or the current DBR grant) assigns to ``d``.
"""

from __future__ import annotations

from typing import Callable, Dict, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.network.topology import ERapidTopology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.router import VCRouter

__all__ = ["table_routing", "ibi_routing"]


def table_routing(table: Dict[int, int]) -> Callable[["VCRouter", int], int]:
    """A routing function backed by an explicit dst -> port table."""

    def route(router: "VCRouter", dst: int) -> int:
        try:
            return table[dst]
        except KeyError:
            raise ConfigurationError(
                f"no route for destination {dst} at {router.name!r}"
            ) from None

    return route


def ibi_routing(
    topology: ERapidTopology,
    board: int,
    tx_port_of: Callable[[int], int],
) -> Callable[["VCRouter", int], int]:
    """Routing for board ``board``'s IBI router.

    Ports 0..D-1 are the node ejection ports (local index order); remote
    destinations map through ``tx_port_of(dest_board)`` which reflects the
    current wavelength assignment (static RWA or a DBR override).
    """

    def route(router: "VCRouter", dst: int) -> int:
        dst_board = topology.board_of(dst)
        if dst_board == board:
            return topology.local_of(dst)
        return tx_port_of(dst_board)

    return route
