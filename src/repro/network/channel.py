"""Electrical channels between router ports.

Table 1: 16-bit channels at 400 MHz (6.4 Gbps unidirectional).  A 64-bit
flit therefore occupies the wire for 4 cycles (``cycles_per_flit``); the
channel enforces that serialization and delivers flits to the sink after
``latency`` additional cycles of wire delay.
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple, TYPE_CHECKING

from repro.errors import SimulationError
from repro.network.packet import Flit
from repro.sim.cycle import DueQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

__all__ = ["FlitSink", "Channel", "ClockedChannel", "Delivery"]


class FlitSink(Protocol):
    """Anything that can receive flits from a channel."""

    def receive_flit(self, flit: Flit, port: int) -> None:  # pragma: no cover
        ...


#: One in-flight clocked delivery: (sink, sink_port, flit).
Delivery = Tuple["FlitSink", int, Flit]


class Channel:
    """Unidirectional flit channel with serialization and wire latency."""

    __slots__ = (
        "sim", "sink", "sink_port", "latency", "cycles_per_flit", "name",
        "_busy_until", "flits_sent",
    )

    def __init__(
        self,
        sim: "Simulator",
        sink: Optional[FlitSink] = None,
        sink_port: int = 0,
        latency: int = 1,
        cycles_per_flit: int = 4,
        name: str = "",
    ) -> None:
        if latency < 0:
            raise SimulationError(f"negative channel latency {latency}")
        if cycles_per_flit < 1:
            raise SimulationError(f"cycles_per_flit must be >= 1, got {cycles_per_flit}")
        self.sim = sim
        self.sink = sink
        self.sink_port = sink_port
        self.latency = latency
        self.cycles_per_flit = cycles_per_flit
        self.name = name
        self._busy_until = 0.0
        self.flits_sent = 0

    def connect(self, sink: FlitSink, sink_port: int = 0) -> None:
        """Attach (or re-attach) the downstream sink."""
        self.sink = sink
        self.sink_port = sink_port

    @property
    def busy(self) -> bool:
        """Whether the wire is still serializing a previous flit."""
        return self.sim.now < self._busy_until

    def send(self, flit: Flit) -> None:
        """Serialize ``flit`` onto the wire; delivery after ser + latency."""
        if self.sink is None:
            raise SimulationError(f"channel {self.name!r} has no sink")
        if self.busy:
            raise SimulationError(
                f"channel {self.name!r} busy until {self._busy_until}; "
                "router ST stage must check Channel.busy"
            )
        self._busy_until = self.sim.now + self.cycles_per_flit
        self.flits_sent += 1
        delay = self.cycles_per_flit + self.latency
        self.sim.schedule(delay, self.sink.receive_flit, flit, self.sink_port)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Channel {self.name!r} cpf={self.cycles_per_flit} lat={self.latency}>"


class ClockedChannel(Channel):
    """A channel drained by the cycle driver instead of per-flit events.

    Serialization and busy semantics are identical to :class:`Channel`;
    only the delivery mechanism differs — :meth:`send` appends to a shared
    :class:`~repro.sim.cycle.DueQueue` that the owning engine's tick
    drains when the delivery time comes due, so a flit in flight costs a
    deque append instead of a kernel heap event.
    """

    __slots__ = ("ring",)

    def __init__(
        self,
        sim: "Simulator",
        ring: DueQueue[Delivery],
        sink: Optional[FlitSink] = None,
        sink_port: int = 0,
        latency: int = 1,
        cycles_per_flit: int = 4,
        name: str = "",
    ) -> None:
        super().__init__(
            sim, sink=sink, sink_port=sink_port, latency=latency,
            cycles_per_flit=cycles_per_flit, name=name,
        )
        self.ring = ring

    def send(self, flit: Flit) -> None:
        """Serialize ``flit``; its delivery joins the shared due-queue."""
        if self.sink is None:
            raise SimulationError(f"channel {self.name!r} has no sink")
        if self.busy:
            raise SimulationError(
                f"channel {self.name!r} busy until {self._busy_until}; "
                "router ST stage must check Channel.busy"
            )
        now = self.sim.now
        self._busy_until = now + self.cycles_per_flit
        self.flits_sent += 1
        self.ring.push(
            now + self.cycles_per_flit + self.latency,
            (self.sink, self.sink_port, flit),
        )
