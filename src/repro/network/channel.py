"""Electrical channels between router ports.

Table 1: 16-bit channels at 400 MHz (6.4 Gbps unidirectional).  A 64-bit
flit therefore occupies the wire for 4 cycles (``cycles_per_flit``); the
channel enforces that serialization and delivers flits to the sink after
``latency`` additional cycles of wire delay.
"""

from __future__ import annotations

from typing import Optional, Protocol, TYPE_CHECKING

from repro.errors import SimulationError
from repro.network.packet import Flit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

__all__ = ["FlitSink", "Channel"]


class FlitSink(Protocol):
    """Anything that can receive flits from a channel."""

    def receive_flit(self, flit: Flit, port: int) -> None:  # pragma: no cover
        ...


class Channel:
    """Unidirectional flit channel with serialization and wire latency."""

    def __init__(
        self,
        sim: "Simulator",
        sink: Optional[FlitSink] = None,
        sink_port: int = 0,
        latency: int = 1,
        cycles_per_flit: int = 4,
        name: str = "",
    ) -> None:
        if latency < 0:
            raise SimulationError(f"negative channel latency {latency}")
        if cycles_per_flit < 1:
            raise SimulationError(f"cycles_per_flit must be >= 1, got {cycles_per_flit}")
        self.sim = sim
        self.sink = sink
        self.sink_port = sink_port
        self.latency = latency
        self.cycles_per_flit = cycles_per_flit
        self.name = name
        self._busy_until = 0.0
        self.flits_sent = 0

    def connect(self, sink: FlitSink, sink_port: int = 0) -> None:
        """Attach (or re-attach) the downstream sink."""
        self.sink = sink
        self.sink_port = sink_port

    @property
    def busy(self) -> bool:
        """Whether the wire is still serializing a previous flit."""
        return self.sim.now < self._busy_until

    def send(self, flit: Flit) -> None:
        """Serialize ``flit`` onto the wire; delivery after ser + latency."""
        if self.sink is None:
            raise SimulationError(f"channel {self.name!r} has no sink")
        if self.busy:
            raise SimulationError(
                f"channel {self.name!r} busy until {self._busy_until}; "
                "router ST stage must check Channel.busy"
            )
        self._busy_until = self.sim.now + self.cycles_per_flit
        self.flits_sent += 1
        delay = self.cycles_per_flit + self.latency
        self.sim.schedule(delay, self.sink.receive_flit, flit, self.sink_port)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Channel {self.name!r} cpf={self.cycles_per_flit} lat={self.latency}>"
