"""Cycle-accurate virtual-channel router.

Implements the SGI-Spider-style pipeline from Table 1 of the paper
(per-packet: route computation RC, VC allocation VA; per-flit: switch
allocation SA, switch traversal ST — one cycle each), with credit-based
flow control and round-robin separable allocation.

The router can be driven two ways.  The substrate tests use the classic
per-cycle process (:meth:`VCRouter.start`); the cycle-synchronous detailed
engine instead calls :meth:`VCRouter.tick` from its clock loop, skipping
routers whose input VCs are all idle (``busy_vcs == 0`` — an idle cycle is
a provable no-op: every stage scans for non-IDLE VC state, and an
all-``False`` request mask never advances an arbiter pointer).  Pipeline
stages execute in *reverse* order (ST, SA, VA, RC) within a cycle so a
flit advances at most one stage per cycle, giving the 4-cycle zero-load
pipeline latency the paper's router model has.

This detailed model backs the E-RAPID *detailed engine* and the substrate
tests; the full evaluation sweeps use the event-driven fast engine, which is
cross-validated against this router (see ``tests/test_cross_validation.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError, SimulationError
from repro.network.arbiters import RoundRobinArbiter
from repro.network.channel import Channel
from repro.network.packet import Flit
from repro.network.vc import InputVC, OutputVC, VCStatus
from repro.sim.cycle import DueQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

__all__ = ["VCRouter"]

#: Routing function: (router, destination node id) -> output port index.
RoutingFn = Callable[["VCRouter", int], int]


class VCRouter:
    """An input-queued virtual-channel router.

    Parameters
    ----------
    n_ports:
        Number of (input, output) port pairs.
    n_vcs:
        Virtual channels per input port.
    buf_depth:
        Flit buffer depth per VC (Table 1 uses single-flit buffers).
    routing_fn:
        Maps a destination node id to an output port of this router.
    credit_latency:
        Cycles for a credit to return upstream (Table 1: one cycle).
    """

    __slots__ = (
        "sim", "n_ports", "n_vcs", "buf_depth", "routing_fn",
        "credit_latency", "name", "inputs", "outputs", "channels",
        "credit_returns", "credit_ring", "_va_arbiters", "_sa_input",
        "_sa_output", "flits_routed", "packets_routed", "busy_vcs", "_proc",
    )

    def __init__(
        self,
        sim: "Simulator",
        n_ports: int,
        routing_fn: RoutingFn,
        n_vcs: int = 2,
        buf_depth: int = 1,
        credit_latency: int = 1,
        name: str = "router",
    ) -> None:
        if n_ports < 1 or n_vcs < 1:
            raise ConfigurationError("router needs >= 1 port and >= 1 VC")
        self.sim = sim
        self.n_ports = n_ports
        self.n_vcs = n_vcs
        self.buf_depth = buf_depth
        self.routing_fn = routing_fn
        self.credit_latency = credit_latency
        self.name = name

        self.inputs: List[List[InputVC]] = [
            [InputVC(sim, buf_depth, name=f"{name}.in{p}.vc{v}") for v in range(n_vcs)]
            for p in range(n_ports)
        ]
        self.outputs: List[List[OutputVC]] = [
            [OutputVC(buf_depth) for _ in range(n_vcs)] for _ in range(n_ports)
        ]
        self.channels: List[Optional[Channel]] = [None] * n_ports
        #: Per input port: callback(vc) that restores one upstream credit.
        self.credit_returns: List[Optional[Callable[[int], None]]] = [None] * n_ports
        #: When set (clocked mode), delayed credit returns join this
        #: due-queue instead of becoming kernel events; the owning
        #: engine's tick applies them when they come due.
        self.credit_ring: Optional[DueQueue[tuple[Callable[[int], None], int]]] = None

        self._va_arbiters = [
            [RoundRobinArbiter(n_ports * n_vcs) for _ in range(n_vcs)]
            for _ in range(n_ports)
        ]
        self._sa_input = [RoundRobinArbiter(n_vcs) for _ in range(n_ports)]
        self._sa_output = [RoundRobinArbiter(n_ports) for _ in range(n_ports)]

        self.flits_routed = 0
        self.packets_routed = 0
        #: Input VCs currently carrying a packet; 0 means a tick is a no-op.
        self.busy_vcs = 0
        self._proc = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_output(self, port: int, channel: Channel) -> None:
        """Connect ``channel`` downstream of output ``port``."""
        self.channels[port] = channel

    def set_credit_return(self, port: int, fn: Callable[[int], None]) -> None:
        """Install the upstream credit-restore callback for input ``port``."""
        self.credit_returns[port] = fn

    def start(self) -> None:
        """Begin the per-cycle pipeline process."""
        if self._proc is not None:
            raise SimulationError(f"router {self.name!r} already started")
        self._proc = self.sim.process(self._run(), name=f"{self.name}.pipeline")

    # ------------------------------------------------------------------
    # Flit/credit ingress
    # ------------------------------------------------------------------
    def receive_flit(self, flit: Flit, port: int) -> None:
        """Channel delivery callback: buffer an incoming flit."""
        if flit.vc is None:
            raise SimulationError(f"flit {flit!r} arrived without a VC assignment")
        ivc = self.inputs[port][flit.vc]
        ivc.buffer.push(flit)
        # Start the packet only when the VC is idle; a head that queues
        # behind an in-flight packet is started when that packet's tail
        # departs (see _traverse).
        if flit.is_head and ivc.status is VCStatus.IDLE:
            ivc.start_packet()
            self.busy_vcs += 1

    def restore_credit(self, port: int, vc: int) -> None:
        """Downstream freed a slot on output ``port``/``vc``."""
        self.outputs[port][vc].credits.restore()

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def _run(self):
        while True:
            self.tick()
            yield self.sim.timeout(1)

    def tick(self) -> None:
        """Advance the pipeline one cycle (ST/SA, then VA, then RC).

        In clocked mode the engine calls this directly, skipping routers
        with ``busy_vcs == 0``; the process driver calls it every cycle.
        """
        self._stage_st_sa()
        self._stage_va()
        self._stage_rc()

    def _stage_rc(self) -> None:
        """Route computation for VCs holding a fresh head flit."""
        for port in range(self.n_ports):
            for ivc in self.inputs[port]:
                if ivc.status is VCStatus.ROUTING:
                    head = ivc.buffer.front()
                    if head is None:  # pragma: no cover - defensive
                        continue
                    out = self.routing_fn(self, head.dst)
                    if not 0 <= out < self.n_ports:
                        raise ConfigurationError(
                            f"routing_fn returned invalid port {out} "
                            f"for dst {head.dst} at {self.name!r}"
                        )
                    ivc.routed(out)

    def _stage_va(self) -> None:
        """VC allocation: WAITING_VC inputs compete for free output VCs.

        Request-driven: one scan over the input VCs collects the waiting
        requesters per output port, then only contested ports arbitrate.
        The arbitration sequence (port order, VC order, request masks) is
        exactly the dense scan's, so arbiter pointer state — and therefore
        every grant — is unchanged.
        """
        n_vcs = self.n_vcs
        requests: Dict[int, List[int]] = {}
        for in_port in range(self.n_ports):
            ivcs = self.inputs[in_port]
            for in_vc_idx in range(n_vcs):
                if ivcs[in_vc_idx].status is VCStatus.WAITING_VC:
                    out = ivcs[in_vc_idx].out_port
                    assert out is not None
                    requests.setdefault(out, []).append(
                        in_port * n_vcs + in_vc_idx
                    )
        if not requests:
            return
        for out_port in range(self.n_ports):
            flat_ids = requests.get(out_port)
            if flat_ids is None:
                continue
            for out_vc in range(n_vcs):
                ovc = self.outputs[out_port][out_vc]
                if not ovc.is_free:
                    continue
                mask = [False] * (self.n_ports * n_vcs)
                any_req = False
                for flat in flat_ids:
                    # A requester granted a lower-numbered output VC this
                    # cycle is no longer WAITING_VC; re-check.
                    if self.inputs[flat // n_vcs][flat % n_vcs].status is VCStatus.WAITING_VC:
                        mask[flat] = True
                        any_req = True
                if not any_req:
                    break
                winner = self._va_arbiters[out_port][out_vc].arbitrate(mask)
                if winner is None:
                    continue
                w_port, w_vc = divmod(winner, n_vcs)
                ivc = self.inputs[w_port][w_vc]
                ovc.allocate(w_port, w_vc)
                ivc.vc_granted(out_vc)

    def _stage_st_sa(self) -> None:
        """Switch allocation + traversal for ACTIVE VCs with flits/credits."""
        # Stage 1: each input port nominates one of its ready VCs.
        nominees: Dict[int, tuple[int, int]] = {}  # out_port -> (in_port, in_vc)
        requests_per_out: Dict[int, List[bool]] = {}
        chosen_vc: Dict[int, int] = {}
        for in_port in range(self.n_ports):
            mask: Optional[List[bool]] = None
            for vc_idx in range(self.n_vcs):
                ivc = self.inputs[in_port][vc_idx]
                if ivc.status is not VCStatus.ACTIVE or ivc.buffer.is_empty:
                    continue
                assert ivc.out_port is not None and ivc.out_vc is not None
                ovc = self.outputs[ivc.out_port][ivc.out_vc]
                channel = self.channels[ivc.out_port]
                if not ovc.credits.has_credit:
                    continue
                if channel is None or channel.busy:
                    continue
                if mask is None:
                    mask = [False] * self.n_vcs
                mask[vc_idx] = True
            if mask is None:
                # An all-False arbitration grants nothing and leaves the
                # pointer untouched; skip it entirely.
                continue
            pick = self._sa_input[in_port].arbitrate(mask)
            if pick is not None:
                chosen_vc[in_port] = pick
                out_port = self.inputs[in_port][pick].out_port
                assert out_port is not None
                requests_per_out.setdefault(
                    out_port, [False] * self.n_ports
                )[in_port] = True
        # Stage 2: each output port grants one input; traverse.
        for out_port, mask in requests_per_out.items():
            winner = self._sa_output[out_port].arbitrate(mask)
            if winner is None:
                continue
            self._traverse(winner, chosen_vc[winner])

    def _traverse(self, in_port: int, in_vc_idx: int) -> None:
        ivc = self.inputs[in_port][in_vc_idx]
        assert ivc.out_port is not None and ivc.out_vc is not None
        out_port, out_vc = ivc.out_port, ivc.out_vc
        flit = ivc.buffer.pop()
        flit.vc = out_vc
        self.outputs[out_port][out_vc].credits.consume()
        channel = self.channels[out_port]
        assert channel is not None
        channel.send(flit)
        self.flits_routed += 1
        # Return a credit upstream for the freed input slot.
        ret = self.credit_returns[in_port]
        if ret is not None:
            if self.credit_latency == 0:
                ret(in_vc_idx)
            elif self.credit_ring is not None:
                self.credit_ring.push(
                    self.sim.now + self.credit_latency, (ret, in_vc_idx)
                )
            else:
                self.sim.schedule(self.credit_latency, ret, in_vc_idx)
        if flit.is_tail:
            self.packets_routed += 1
            self.outputs[out_port][out_vc].free()
            ivc.finish_packet()
            # A queued head from the next packet may already be buffered.
            nxt = ivc.buffer.front()
            if nxt is not None and nxt.is_head:
                ivc.start_packet()
            else:
                self.busy_vcs -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VCRouter {self.name!r} {self.n_ports}p x {self.n_vcs}vc>"
