"""Packets and flits.

E-RAPID splits a packet into fixed-size *flits* (flow-control units) for the
electrical domain; the optical domain transmits whole packets (§2.1 of the
paper: "flits from different nodes are interleaved in the electrical domain
using virtual channels whereas packets from different boards are interleaved
in the optical domain").

The default sizing follows Table 1: 64-byte packets, 8 flits/packet, 16-bit
phits at 400 MHz (a flit is 4 phit-cycles on an electrical channel).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.errors import ConfigurationError

__all__ = ["FlitType", "Flit", "Packet", "PacketFactory"]

_packet_ids = itertools.count()


class FlitType(Enum):
    """Position of a flit within its packet."""

    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    #: Single-flit packet: simultaneously head and tail.
    HEAD_TAIL = "head_tail"


@dataclass(slots=True)
class Packet:
    """One network packet.

    Times are in router cycles; ``None`` until the corresponding event
    happens.  ``labeled`` marks packets injected during the measurement
    interval (the paper's methodology: only labeled packets contribute to
    latency/throughput statistics).
    """

    src: int
    dst: int
    size_flits: int = 8
    size_bytes: int = 64
    created_at: float = 0.0
    injected_at: Optional[float] = None
    delivered_at: Optional[float] = None
    labeled: bool = False
    #: Set by the optical plane: which wavelength carried the packet.
    wavelength: Optional[int] = None
    pid: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def size_bits(self) -> int:
        return self.size_bytes * 8

    @property
    def latency(self) -> float:
        """Creation-to-delivery latency (the paper's network latency)."""
        if self.delivered_at is None:
            raise ConfigurationError(f"packet {self.pid} not delivered yet")
        return self.delivered_at - self.created_at

    def flits(self) -> List["Flit"]:
        """Expand into the flit sequence for the electrical domain."""
        if self.size_flits == 1:
            return [Flit(self, 0, FlitType.HEAD_TAIL)]
        out = [Flit(self, 0, FlitType.HEAD)]
        out += [Flit(self, i, FlitType.BODY) for i in range(1, self.size_flits - 1)]
        out.append(Flit(self, self.size_flits - 1, FlitType.TAIL))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Packet #{self.pid} {self.src}->{self.dst} {self.size_flits}f>"


@dataclass(slots=True)
class Flit:
    """One flow-control unit of a packet."""

    packet: Packet
    index: int
    ftype: FlitType
    #: Assigned by VC allocation at each hop.
    vc: Optional[int] = None

    @property
    def is_head(self) -> bool:
        return self.ftype in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self.ftype in (FlitType.TAIL, FlitType.HEAD_TAIL)

    @property
    def dst(self) -> int:
        return self.packet.dst

    @property
    def src(self) -> int:
        return self.packet.src

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Flit {self.ftype.value} {self.index} of pkt#{self.packet.pid}>"


class PacketFactory:
    """Builds packets with consistent sizing (Table 1 defaults)."""

    __slots__ = ("size_bytes", "flit_bytes", "size_flits")

    def __init__(self, size_bytes: int = 64, flit_bytes: int = 8) -> None:
        if size_bytes <= 0 or flit_bytes <= 0:
            raise ConfigurationError("packet and flit sizes must be positive")
        if size_bytes % flit_bytes:
            raise ConfigurationError(
                f"packet size {size_bytes}B not a multiple of flit size {flit_bytes}B"
            )
        self.size_bytes = size_bytes
        self.flit_bytes = flit_bytes
        self.size_flits = size_bytes // flit_bytes

    def make(
        self,
        src: int,
        dst: int,
        now: float,
        labeled: bool = False,
    ) -> Packet:
        """A new packet created at ``now``."""
        return Packet(
            src=src,
            dst=dst,
            size_flits=self.size_flits,
            size_bytes=self.size_bytes,
            created_at=now,
            labeled=labeled,
        )
