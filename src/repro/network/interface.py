"""Network interfaces (send/receive ports at each node).

§2.1 of the paper: "The network interface at every node is composed of send
and receive ports."  :class:`SourceNI` serializes packets into flits and
injects them into a router input port under credit-based flow control;
:class:`SinkNI` reassembles flits into packets at the destination, returning
credits as flits are consumed.

Each comes in two drive styles: the classic process-based pair
(:class:`SourceNI` / :class:`SinkNI`, one generator per NI polling the
kernel every cycle) used by the substrate tests, and the clocked pair
(:class:`ClockedSourceNI` / :class:`ClockedSinkNI`) whose per-cycle work
is a ``tick`` method invoked by the cycle-synchronous detailed engine —
same state machine, no per-cycle heap events.
"""

from __future__ import annotations

from math import inf
from typing import Callable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.network.channel import Channel, ClockedChannel, Delivery
from repro.network.credit import CreditCounter
from repro.network.packet import Flit, Packet
from repro.sim.cycle import DueQueue
from repro.sim.queues import MonitoredStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator
    from repro.network.router import VCRouter

__all__ = ["SourceNI", "SinkNI", "ClockedSourceNI", "ClockedSinkNI"]

#: One pending credit restore: (restore_fn, vc).
CreditReturn = Tuple[Callable[[int], None], int]


class SourceNI:
    """Send port: packets in, credit-controlled flits out.

    The NI behaves like an upstream router output port: it mirrors the
    downstream input-VC buffer space in :class:`CreditCounter` instances and
    receives credit restores via ``router.set_credit_return``.
    """

    __slots__ = (
        "sim", "name", "queue", "channel", "_credits", "_vc_busy",
        "packets_injected",
    )

    def __init__(
        self,
        sim: "Simulator",
        router: "VCRouter",
        port: int,
        latency: int = 1,
        cycles_per_flit: int = 4,
        queue_capacity: Optional[int] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.name = name or f"src-ni.p{port}"
        self.queue: MonitoredStore = MonitoredStore(
            sim, capacity=queue_capacity, name=f"{self.name}.q"
        )
        self.channel = Channel(
            sim,
            sink=router,
            sink_port=port,
            latency=latency,
            cycles_per_flit=cycles_per_flit,
            name=f"{self.name}.ch",
        )
        self._credits: List[CreditCounter] = [
            CreditCounter(router.buf_depth) for _ in range(router.n_vcs)
        ]
        self._vc_busy: List[bool] = [False] * router.n_vcs
        router.set_credit_return(port, self._restore_credit)
        self.packets_injected = 0
        sim.process(self._run(), name=f"{self.name}.inject")

    # ------------------------------------------------------------------
    def send(self, packet: Packet):
        """Queue ``packet`` for injection; returns the put waitable."""
        return self.queue.put(packet)

    def _restore_credit(self, vc: int) -> None:
        self._credits[vc].restore()

    def _pick_vc(self) -> Optional[int]:
        for vc, busy in enumerate(self._vc_busy):
            if not busy:
                return vc
        return None

    def _run(self):
        while True:
            packet: Packet = yield self.queue.get()
            # Wait for a free VC (single outstanding packet per VC).
            while True:
                vc = self._pick_vc()
                if vc is not None:
                    break
                yield self.sim.timeout(1)
            self._vc_busy[vc] = True
            packet.injected_at = self.sim.now
            for flit in packet.flits():
                flit.vc = vc
                # Wait for a credit and for the wire to be free.
                while not self._credits[vc].has_credit or self.channel.busy:
                    yield self.sim.timeout(1)
                self._credits[vc].consume()
                self.channel.send(flit)
                if flit.is_tail:
                    self._vc_busy[vc] = False
            self.packets_injected += 1


class SinkNI:
    """Receive port: reassembles flits into packets and records delivery."""

    __slots__ = (
        "sim", "name", "on_packet", "packets_received", "flits_received",
        "_credit_restore",
    )

    def __init__(
        self,
        sim: "Simulator",
        on_packet: Optional[Callable[[Packet], None]] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.name = name or "sink-ni"
        self.on_packet = on_packet
        self.packets_received = 0
        self.flits_received = 0
        #: Installed when attached downstream of a router output port.
        self._credit_restore: Optional[Callable[[int], None]] = None

    def attach(self, router: "VCRouter", out_port: int, latency: int = 1,
               cycles_per_flit: int = 4) -> Channel:
        """Create the channel from ``router``'s output port to this sink."""
        channel = Channel(
            self.sim,
            sink=self,
            sink_port=out_port,
            latency=latency,
            cycles_per_flit=cycles_per_flit,
            name=f"{self.name}.ch",
        )
        router.attach_output(out_port, channel)
        self._credit_restore = lambda vc: router.restore_credit(out_port, vc)
        return channel

    def receive_flit(self, flit: Flit, port: int) -> None:
        self.flits_received += 1
        # Ejection consumes the flit immediately; return the credit.
        if self._credit_restore is not None:
            if flit.vc is None:
                raise ConfigurationError("flit arrived at sink without a VC")
            self.sim.schedule(1, self._credit_restore, flit.vc)
        if flit.is_tail:
            packet = flit.packet
            packet.delivered_at = self.sim.now
            self.packets_received += 1
            if self.on_packet is not None:
                self.on_packet(packet)


class ClockedSourceNI:
    """Tick-driven send port — :class:`SourceNI` without the process.

    The coroutine pump's suspension points become an explicit state
    machine: parked on an empty queue (``next_due == inf``), waiting for a
    free VC, or mid-packet waiting on credit/wire — the latter two poll on
    the NI's own one-cycle grid (``next_due = now + 1``), which for
    receiver-side NIs woken by fractional-time fiber relays is a
    *fractional* grid anchored at the wake time, exactly like the
    coroutine's ``timeout(1)`` chain.  External producers call
    :meth:`send`; when that wakes a parked pump, ``on_wake`` tells the
    owning engine to arm a tick at the current time, so injection starts
    on the same cycle the process version would have resumed.
    """

    __slots__ = (
        "sim", "name", "queue", "channel", "_credits", "_vc_busy",
        "packets_injected", "next_due", "on_wake", "_packet", "_flits",
        "_flit_idx", "_vc",
    )

    def __init__(
        self,
        sim: "Simulator",
        router: "VCRouter",
        port: int,
        delivery_ring: DueQueue[Delivery],
        latency: int = 1,
        cycles_per_flit: int = 4,
        queue_capacity: Optional[int] = None,
        name: str = "",
        on_wake: Optional[Callable[["ClockedSourceNI"], None]] = None,
    ) -> None:
        self.sim = sim
        self.name = name or f"src-ni.p{port}"
        self.queue: MonitoredStore = MonitoredStore(
            sim, capacity=queue_capacity, name=f"{self.name}.q"
        )
        self.channel: Channel = ClockedChannel(
            sim,
            delivery_ring,
            sink=router,
            sink_port=port,
            latency=latency,
            cycles_per_flit=cycles_per_flit,
            name=f"{self.name}.ch",
        )
        self._credits: List[CreditCounter] = [
            CreditCounter(router.buf_depth) for _ in range(router.n_vcs)
        ]
        self._vc_busy: List[bool] = [False] * router.n_vcs
        router.set_credit_return(port, self._restore_credit)
        self.packets_injected = 0
        #: Next simulation time this pump needs a tick; ``inf`` when parked.
        self.next_due = inf
        self.on_wake = on_wake
        self._packet: Optional[Packet] = None
        self._flits: Sequence[Flit] = ()
        self._flit_idx = 0
        self._vc = -1

    # ------------------------------------------------------------------
    def send(self, packet: Packet):
        """Queue ``packet`` for injection; returns the put waitable.

        Producers run as priority-0 kernel events, so a wake here always
        lands before the cycle driver's tick at the same time.
        """
        req = self.queue.put(packet)
        if self._packet is None:
            # Parked on an empty queue: resume this very cycle.
            self.next_due = self.sim.now
            if self.on_wake is not None:
                self.on_wake(self)
        return req

    def _restore_credit(self, vc: int) -> None:
        self._credits[vc].restore()

    def _pick_vc(self) -> Optional[int]:
        for vc, busy in enumerate(self._vc_busy):
            if not busy:
                return vc
        return None

    # ------------------------------------------------------------------
    def tick(self, now: float) -> None:
        """One pump cycle: mirror of the coroutine ``_run`` suspensions."""
        credits = self._credits
        channel = self.channel
        while True:
            pkt = self._packet
            if pkt is None:
                ok, pkt = self.queue.try_get()
                if not ok:
                    self.next_due = inf
                    return
                self._packet = pkt
            vc = self._vc
            if vc < 0:
                picked = self._pick_vc()
                if picked is None:
                    # All VCs carry an in-flight packet; retry next cycle.
                    self.next_due = now + 1.0
                    return
                vc = picked
                self._vc = vc
                self._vc_busy[vc] = True
                pkt.injected_at = now
                self._flits = pkt.flits()
                self._flit_idx = 0
            flit = self._flits[self._flit_idx]
            flit.vc = vc
            # Wait for a credit and for the wire to be free.
            if not credits[vc].has_credit or channel.busy:
                self.next_due = now + 1.0
                return
            credits[vc].consume()
            channel.send(flit)
            if flit.is_tail:
                self._vc_busy[vc] = False
                self._vc = -1
                self._packet = None
                self._flits = ()
                self.packets_injected += 1
                # The next queued packet may start this same cycle (its
                # head flit then finds the wire busy, as in the process
                # version), so loop rather than wait for the next tick.
                continue
            self._flit_idx += 1
            self.next_due = now + 1.0
            return


class ClockedSinkNI(SinkNI):
    """Tick-era receive port: credits join a due-queue, not the heap."""

    __slots__ = ("delivery_ring", "credit_ring")

    def __init__(
        self,
        sim: "Simulator",
        delivery_ring: DueQueue[Delivery],
        credit_ring: DueQueue[CreditReturn],
        on_packet: Optional[Callable[[Packet], None]] = None,
        name: str = "",
    ) -> None:
        super().__init__(sim, on_packet=on_packet, name=name)
        self.delivery_ring = delivery_ring
        self.credit_ring = credit_ring

    def attach(self, router: "VCRouter", out_port: int, latency: int = 1,
               cycles_per_flit: int = 4) -> Channel:
        """Create the clocked channel from ``router`` to this sink."""
        channel = ClockedChannel(
            self.sim,
            self.delivery_ring,
            sink=self,
            sink_port=out_port,
            latency=latency,
            cycles_per_flit=cycles_per_flit,
            name=f"{self.name}.ch",
        )
        router.attach_output(out_port, channel)
        self._credit_restore = lambda vc: router.restore_credit(out_port, vc)
        return channel

    def receive_flit(self, flit: Flit, port: int) -> None:
        self.flits_received += 1
        if self._credit_restore is not None:
            if flit.vc is None:
                raise ConfigurationError("flit arrived at sink without a VC")
            # Same one-cycle ejection-credit delay as the event version.
            self.credit_ring.push(
                self.sim.now + 1.0, (self._credit_restore, flit.vc)
            )
        if flit.is_tail:
            packet = flit.packet
            packet.delivered_at = self.sim.now
            self.packets_received += 1
            if self.on_packet is not None:
                self.on_packet(packet)
