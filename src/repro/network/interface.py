"""Network interfaces (send/receive ports at each node).

§2.1 of the paper: "The network interface at every node is composed of send
and receive ports."  :class:`SourceNI` serializes packets into flits and
injects them into a router input port under credit-based flow control;
:class:`SinkNI` reassembles flits into packets at the destination, returning
credits as flits are consumed.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.network.channel import Channel
from repro.network.credit import CreditCounter
from repro.network.packet import Flit, Packet
from repro.sim.queues import MonitoredStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator
    from repro.network.router import VCRouter

__all__ = ["SourceNI", "SinkNI"]


class SourceNI:
    """Send port: packets in, credit-controlled flits out.

    The NI behaves like an upstream router output port: it mirrors the
    downstream input-VC buffer space in :class:`CreditCounter` instances and
    receives credit restores via ``router.set_credit_return``.
    """

    def __init__(
        self,
        sim: "Simulator",
        router: "VCRouter",
        port: int,
        latency: int = 1,
        cycles_per_flit: int = 4,
        queue_capacity: Optional[int] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.name = name or f"src-ni.p{port}"
        self.queue: MonitoredStore = MonitoredStore(
            sim, capacity=queue_capacity, name=f"{self.name}.q"
        )
        self.channel = Channel(
            sim,
            sink=router,
            sink_port=port,
            latency=latency,
            cycles_per_flit=cycles_per_flit,
            name=f"{self.name}.ch",
        )
        self._credits: List[CreditCounter] = [
            CreditCounter(router.buf_depth) for _ in range(router.n_vcs)
        ]
        self._vc_busy: List[bool] = [False] * router.n_vcs
        router.set_credit_return(port, self._restore_credit)
        self.packets_injected = 0
        sim.process(self._run(), name=f"{self.name}.inject")

    # ------------------------------------------------------------------
    def send(self, packet: Packet):
        """Queue ``packet`` for injection; returns the put waitable."""
        return self.queue.put(packet)

    def _restore_credit(self, vc: int) -> None:
        self._credits[vc].restore()

    def _pick_vc(self) -> Optional[int]:
        for vc, busy in enumerate(self._vc_busy):
            if not busy:
                return vc
        return None

    def _run(self):
        while True:
            packet: Packet = yield self.queue.get()
            # Wait for a free VC (single outstanding packet per VC).
            while True:
                vc = self._pick_vc()
                if vc is not None:
                    break
                yield self.sim.timeout(1)
            self._vc_busy[vc] = True
            packet.injected_at = self.sim.now
            for flit in packet.flits():
                flit.vc = vc
                # Wait for a credit and for the wire to be free.
                while not self._credits[vc].has_credit or self.channel.busy:
                    yield self.sim.timeout(1)
                self._credits[vc].consume()
                self.channel.send(flit)
                if flit.is_tail:
                    self._vc_busy[vc] = False
            self.packets_injected += 1


class SinkNI:
    """Receive port: reassembles flits into packets and records delivery."""

    def __init__(
        self,
        sim: "Simulator",
        on_packet: Optional[Callable[[Packet], None]] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.name = name or "sink-ni"
        self.on_packet = on_packet
        self.packets_received = 0
        self.flits_received = 0
        #: Installed when attached downstream of a router output port.
        self._credit_restore: Optional[Callable[[int], None]] = None

    def attach(self, router: "VCRouter", out_port: int, latency: int = 1,
               cycles_per_flit: int = 4) -> Channel:
        """Create the channel from ``router``'s output port to this sink."""
        channel = Channel(
            self.sim,
            sink=self,
            sink_port=out_port,
            latency=latency,
            cycles_per_flit=cycles_per_flit,
            name=f"{self.name}.ch",
        )
        router.attach_output(out_port, channel)
        self._credit_restore = lambda vc: router.restore_credit(out_port, vc)
        return channel

    def receive_flit(self, flit: Flit, port: int) -> None:
        self.flits_received += 1
        # Ejection consumes the flit immediately; return the credit.
        if self._credit_restore is not None:
            if flit.vc is None:
                raise ConfigurationError("flit arrived at sink without a VC")
            self.sim.schedule(1, self._credit_restore, flit.vc)
        if flit.is_tail:
            packet = flit.packet
            packet.delivered_at = self.sim.now
            self.packets_received += 1
            if self.on_packet is not None:
                self.on_packet(packet)
