"""Flit buffers.

Each router input port has one :class:`FlitBuffer` per virtual channel.
Buffers are strict FIFOs with a hard capacity (credit-based flow control
guarantees no overflow; overflowing is therefore a protocol bug and raises).
Occupancy is tracked time-weighted so the link controllers can compute the
paper's ``Buffer_util`` counter.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.network.packet import Flit
from repro.sim.stats import TimeWeighted

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

__all__ = ["FlitBuffer"]


class FlitBuffer:
    """A fixed-capacity FIFO of flits with time-weighted occupancy stats."""

    __slots__ = ("sim", "capacity", "name", "_flits", "occupancy")

    def __init__(self, sim: "Simulator", capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"flit buffer capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._flits: Deque[Flit] = deque()
        self.occupancy = TimeWeighted(sim.now, 0.0)

    def __len__(self) -> int:
        return len(self._flits)

    @property
    def is_empty(self) -> bool:
        return not self._flits

    @property
    def is_full(self) -> bool:
        return len(self._flits) >= self.capacity

    @property
    def space(self) -> int:
        return self.capacity - len(self._flits)

    def push(self, flit: Flit) -> None:
        """Append a flit; raises on overflow (a flow-control violation)."""
        if self.is_full:
            raise SimulationError(
                f"flit buffer {self.name!r} overflow (capacity {self.capacity}); "
                "credit-based flow control was violated"
            )
        self._flits.append(flit)
        self.occupancy.add(self.sim.now, +1.0)

    def front(self) -> Optional[Flit]:
        """Peek at the oldest flit without removing it."""
        return self._flits[0] if self._flits else None

    def pop(self) -> Flit:
        """Remove and return the oldest flit."""
        if not self._flits:
            raise SimulationError(f"pop from empty flit buffer {self.name!r}")
        flit = self._flits.popleft()
        self.occupancy.add(self.sim.now, -1.0)
        return flit

    def buffer_util(self, now: Optional[float] = None) -> float:
        """Windowed occupancy / capacity in [0, 1]."""
        now = self.sim.now if now is None else now
        return min(1.0, self.occupancy.window(now) / self.capacity)

    def reset_window(self) -> None:
        self.occupancy.reset_window(self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlitBuffer {self.name!r} {len(self._flits)}/{self.capacity}>"
