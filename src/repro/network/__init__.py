"""Electrical interconnection-network substrate.

Flit-level building blocks (packets, buffers, credits, arbiters, channels)
and the cycle-accurate virtual-channel router used for the intra-board
interconnect (IBI) in E-RAPID's detailed engine.
"""

from repro.network.arbiters import MatrixArbiter, RoundRobinArbiter, SeparableAllocator
from repro.network.buffers import FlitBuffer
from repro.network.channel import Channel, ClockedChannel
from repro.network.credit import CreditChannel, CreditCounter
from repro.network.interface import ClockedSinkNI, ClockedSourceNI, SinkNI, SourceNI
from repro.network.packet import Flit, FlitType, Packet, PacketFactory
from repro.network.router import VCRouter
from repro.network.routing import ibi_routing, table_routing
from repro.network.topology import ERapidTopology, Ring
from repro.network.vc import InputVC, OutputVC, VCStatus

__all__ = [
    "Channel",
    "ClockedChannel",
    "ClockedSinkNI",
    "ClockedSourceNI",
    "CreditChannel",
    "CreditCounter",
    "ERapidTopology",
    "Flit",
    "FlitBuffer",
    "FlitType",
    "InputVC",
    "MatrixArbiter",
    "OutputVC",
    "Packet",
    "PacketFactory",
    "Ring",
    "RoundRobinArbiter",
    "SeparableAllocator",
    "SinkNI",
    "SourceNI",
    "VCRouter",
    "VCStatus",
    "ibi_routing",
    "table_routing",
]
