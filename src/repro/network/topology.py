"""Topology and addressing helpers.

E-RAPID is defined by the 3-tuple (C, B, D): C clusters × B boards × D
nodes/board (§2 of the paper).  The evaluation uses a single cluster, so
node ids are ``board * D + local``.  This module centralizes the address
arithmetic plus the unidirectional control ring the reconfiguration
controllers (RCs) sit on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import TopologyError

__all__ = ["ERapidTopology", "Ring"]


@dataclass(frozen=True, slots=True)
class ERapidTopology:
    """Address arithmetic for an R(C, B, D) system (C = 1 in the paper's runs)."""

    clusters: int = 1
    boards: int = 4
    nodes_per_board: int = 4

    def __post_init__(self) -> None:
        if self.clusters != 1:
            raise TopologyError(
                "multi-cluster systems are not evaluated in the paper; C must be 1"
            )
        if self.boards < 2:
            raise TopologyError(f"need >= 2 boards, got {self.boards}")
        if self.nodes_per_board < 1:
            raise TopologyError(f"need >= 1 node/board, got {self.nodes_per_board}")

    # ------------------------------------------------------------------
    @property
    def total_nodes(self) -> int:
        return self.clusters * self.boards * self.nodes_per_board

    @property
    def wavelengths(self) -> int:
        """W = B: one wavelength per board in the static RWA (§3.2)."""
        return self.boards

    def board_of(self, node: int) -> int:
        self._check_node(node)
        return node // self.nodes_per_board

    def local_of(self, node: int) -> int:
        self._check_node(node)
        return node % self.nodes_per_board

    def node_id(self, board: int, local: int) -> int:
        if not 0 <= board < self.boards:
            raise TopologyError(f"board {board} out of range [0,{self.boards})")
        if not 0 <= local < self.nodes_per_board:
            raise TopologyError(
                f"local index {local} out of range [0,{self.nodes_per_board})"
            )
        return board * self.nodes_per_board + local

    def nodes_on_board(self, board: int) -> List[int]:
        return [self.node_id(board, l) for l in range(self.nodes_per_board)]

    def board_pairs(self) -> Iterator[Tuple[int, int]]:
        """All ordered (source, destination) board pairs, s != d."""
        for s in range(self.boards):
            for d in range(self.boards):
                if s != d:
                    yield s, d

    def is_local(self, src: int, dst: int) -> bool:
        """Whether src -> dst stays on one board (IBI-only traffic)."""
        return self.board_of(src) == self.board_of(dst)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.total_nodes:
            raise TopologyError(
                f"node {node} out of range [0,{self.total_nodes})"
            )

    def describe(self) -> str:
        return (
            f"R({self.clusters},{self.boards},{self.nodes_per_board}) — "
            f"{self.total_nodes} nodes, {self.wavelengths} wavelengths"
        )


class Ring:
    """A unidirectional ring of ``n`` members (the RC-RC control topology).

    §3.2: "Each RC_i is connected to RC_{i+1} in a simple electrical ring
    topology separated from the optical SRS."
    """

    __slots__ = ("n",)

    def __init__(self, n: int) -> None:
        if n < 2:
            raise TopologyError(f"ring needs >= 2 members, got {n}")
        self.n = n

    def next_of(self, i: int) -> int:
        self._check(i)
        return (i + 1) % self.n

    def prev_of(self, i: int) -> int:
        self._check(i)
        return (i - 1) % self.n

    def distance(self, src: int, dst: int) -> int:
        """Hops travelling in the ring direction from src to dst."""
        self._check(src)
        self._check(dst)
        return (dst - src) % self.n

    def walk(self, start: int) -> Iterator[int]:
        """Visit every member once, starting after ``start`` and ending on it."""
        self._check(start)
        for step in range(1, self.n + 1):
            yield (start + step) % self.n

    def _check(self, i: int) -> None:
        if not 0 <= i < self.n:
            raise TopologyError(f"ring index {i} out of range [0,{self.n})")
