"""Arbiters — the allocation primitives inside the router.

Two classic designs (Dally & Towles ch. 18–19):

* :class:`RoundRobinArbiter` — rotating-priority, starvation-free.
* :class:`MatrixArbiter` — least-recently-served, strong fairness.

Both pick one winner from a request bit-set per invocation.  A
:class:`SeparableAllocator` composes per-output and per-input arbiters into
the input-first separable allocator used for VC and switch allocation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["RoundRobinArbiter", "MatrixArbiter", "SeparableAllocator"]


class RoundRobinArbiter:
    """Rotating-priority arbiter over ``n`` requesters."""

    __slots__ = ("n", "_pointer")

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"arbiter needs n >= 1, got {n}")
        self.n = n
        self._pointer = 0

    def arbitrate(self, requests: Sequence[bool]) -> Optional[int]:
        """Grant one of the asserted ``requests``; ``None`` if all idle.

        The granted requester becomes lowest priority for the next round.
        """
        if len(requests) != self.n:
            raise ConfigurationError(
                f"expected {self.n} request lines, got {len(requests)}"
            )
        for offset in range(self.n):
            idx = (self._pointer + offset) % self.n
            if requests[idx]:
                self._pointer = (idx + 1) % self.n
                return idx
        return None


class MatrixArbiter:
    """Least-recently-served arbiter using a priority matrix.

    ``_prio[i][j]`` means *i beats j*.  After a grant, the winner loses to
    everyone (its row is cleared, its column set).
    """

    __slots__ = ("n", "_prio")

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"arbiter needs n >= 1, got {n}")
        self.n = n
        # Upper-triangular start: lower index initially wins.
        self._prio = [[i < j for j in range(n)] for i in range(n)]

    def arbitrate(self, requests: Sequence[bool]) -> Optional[int]:
        if len(requests) != self.n:
            raise ConfigurationError(
                f"expected {self.n} request lines, got {len(requests)}"
            )
        winner = None
        for i in range(self.n):
            if not requests[i]:
                continue
            beaten = any(
                requests[j] and self._prio[j][i] for j in range(self.n) if j != i
            )
            if not beaten:
                winner = i
                break
        if winner is not None:
            for j in range(self.n):
                if j != winner:
                    self._prio[winner][j] = False
                    self._prio[j][winner] = True
        return winner


class SeparableAllocator:
    """Input-first separable allocator for ``n_in`` × ``n_out`` requests.

    Stage 1: each input picks one of its requested outputs (round-robin).
    Stage 2: each output picks one of the surviving inputs (round-robin).
    Returns the granted ``(input, output)`` pairs — a matching (each input
    and each output appears at most once).
    """

    __slots__ = ("n_in", "n_out", "_input_stage", "_output_stage")

    def __init__(self, n_in: int, n_out: int) -> None:
        if n_in < 1 or n_out < 1:
            raise ConfigurationError("allocator dims must be >= 1")
        self.n_in = n_in
        self.n_out = n_out
        self._input_stage = [RoundRobinArbiter(n_out) for _ in range(n_in)]
        self._output_stage = [RoundRobinArbiter(n_in) for _ in range(n_out)]

    def allocate(self, requests: Dict[int, List[int]]) -> List[Tuple[int, int]]:
        """``requests[input] = [outputs it wants]`` → granted pairs."""
        # Stage 1 — input arbitration.
        survivors: Dict[int, List[bool]] = {
            out: [False] * self.n_in for out in range(self.n_out)
        }
        for inp, outs in requests.items():
            if not outs:
                continue
            if inp >= self.n_in:
                raise ConfigurationError(f"input {inp} out of range (n_in={self.n_in})")
            mask = [False] * self.n_out
            for out in outs:
                if out >= self.n_out:
                    raise ConfigurationError(
                        f"output {out} out of range (n_out={self.n_out})"
                    )
                mask[out] = True
            chosen = self._input_stage[inp].arbitrate(mask)
            if chosen is not None:
                survivors[chosen][inp] = True
        # Stage 2 — output arbitration.
        grants: List[Tuple[int, int]] = []
        for out in range(self.n_out):
            winner = self._output_stage[out].arbitrate(survivors[out])
            if winner is not None:
                grants.append((winner, out))
        return grants
