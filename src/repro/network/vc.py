"""Virtual-channel state machines.

Per-packet router state follows Dally & Towles: an input VC cycles through

    IDLE -> ROUTING -> WAITING_VC -> ACTIVE -> (tail departs) -> IDLE

Route computation (RC) moves ROUTING -> WAITING_VC; VC allocation (VA) moves
WAITING_VC -> ACTIVE; switch allocation/traversal (SA/ST) drain flits while
ACTIVE.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.network.buffers import FlitBuffer
from repro.network.credit import CreditCounter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

__all__ = ["VCStatus", "InputVC", "OutputVC"]


class VCStatus(Enum):
    IDLE = "idle"
    ROUTING = "routing"
    WAITING_VC = "waiting_vc"
    ACTIVE = "active"


class InputVC:
    """State for one virtual channel at a router input port."""

    __slots__ = ("buffer", "status", "out_port", "out_vc")

    def __init__(self, sim: "Simulator", depth: int, name: str = "") -> None:
        self.buffer = FlitBuffer(sim, depth, name=name)
        self.status = VCStatus.IDLE
        self.out_port: Optional[int] = None
        self.out_vc: Optional[int] = None

    def start_packet(self) -> None:
        if self.status is not VCStatus.IDLE:
            raise SimulationError(f"start_packet in state {self.status}")
        self.status = VCStatus.ROUTING

    def routed(self, out_port: int) -> None:
        if self.status is not VCStatus.ROUTING:
            raise SimulationError(f"routed() in state {self.status}")
        self.out_port = out_port
        self.status = VCStatus.WAITING_VC

    def vc_granted(self, out_vc: int) -> None:
        if self.status is not VCStatus.WAITING_VC:
            raise SimulationError(f"vc_granted() in state {self.status}")
        self.out_vc = out_vc
        self.status = VCStatus.ACTIVE

    def finish_packet(self) -> None:
        if self.status is not VCStatus.ACTIVE:
            raise SimulationError(f"finish_packet() in state {self.status}")
        self.status = VCStatus.IDLE
        self.out_port = None
        self.out_vc = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InputVC {self.status.value} buf={len(self.buffer)}>"


class OutputVC:
    """State for one virtual channel at a router output port."""

    __slots__ = ("credits", "allocated_to")

    def __init__(self, downstream_depth: int) -> None:
        self.credits = CreditCounter(downstream_depth)
        #: (in_port, in_vc) currently holding this output VC, or None.
        self.allocated_to: Optional[tuple[int, int]] = None

    @property
    def is_free(self) -> bool:
        return self.allocated_to is None

    def allocate(self, in_port: int, in_vc: int) -> None:
        if self.allocated_to is not None:
            raise SimulationError(f"output VC double allocation {self.allocated_to}")
        self.allocated_to = (in_port, in_vc)

    def free(self) -> None:
        if self.allocated_to is None:
            raise SimulationError("freeing an unallocated output VC")
        self.allocated_to = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OutputVC to={self.allocated_to} credits={self.credits.credits}>"
