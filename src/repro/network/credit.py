"""Credit-based flow control.

Table 1 of the paper: credit-based flow control, single-flit buffers, and a
one-cycle channel delay for credits.  A :class:`CreditCounter` lives at each
router *output* VC and mirrors the free space of the downstream input VC
buffer; credits return over a :class:`CreditChannel` with configurable
latency.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

__all__ = ["CreditCounter", "CreditChannel"]


class CreditCounter:
    """Tracks credits (free downstream buffer slots) for one output VC."""

    __slots__ = ("initial", "_credits")

    def __init__(self, initial: int) -> None:
        if initial < 0:
            raise SimulationError(f"negative initial credits {initial}")
        self.initial = initial
        self._credits = initial

    @property
    def credits(self) -> int:
        return self._credits

    @property
    def has_credit(self) -> bool:
        return self._credits > 0

    def consume(self) -> None:
        """Spend one credit (a flit departed downstream)."""
        if self._credits <= 0:
            raise SimulationError("consumed a credit while at zero")
        self._credits -= 1

    def restore(self) -> None:
        """Return one credit (the downstream buffer freed a slot)."""
        if self._credits >= self.initial:
            raise SimulationError(
                f"credit overflow: restore past initial count {self.initial}"
            )
        self._credits += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CreditCounter {self._credits}/{self.initial}>"


class CreditChannel:
    """Delivers credit-restore signals upstream after a fixed latency."""

    __slots__ = ("sim", "latency", "name", "sent")

    def __init__(
        self,
        sim: "Simulator",
        latency: int = 1,
        name: str = "",
    ) -> None:
        if latency < 0:
            raise SimulationError(f"negative credit latency {latency}")
        self.sim = sim
        self.latency = latency
        self.name = name
        self.sent = 0

    def send(self, restore: Callable[[], None]) -> None:
        """Schedule ``restore()`` to run ``latency`` cycles from now."""
        self.sent += 1
        if self.latency == 0:
            restore()
        else:
            self.sim.schedule(self.latency, restore)
