"""Single-job execution: cache dedup, worker-shard fan-out, run records.

:func:`execute_job` is the service's unit of work.  It expands a
:class:`~repro.service.spec.JobSpec` into run descriptions in the exact
task order of :func:`repro.experiments.sweep.run_sweep`, answers every
run it can from the content-addressed :class:`~repro.perf.cache.RunCache`,
fans the remainder out to the bounded process-pool shard
(:func:`repro.perf.executor.execute_tasks`), and stores every fresh
result back.  Because the task list, seeding, and reassembly are
identical to the direct sweep path, a job's results — and therefore its
:func:`~repro.analysis.determinism.sweep_fingerprint` — are bit-identical
to ``run_sweep`` on the same spec, at any ``jobs`` width and any cache
hit pattern.

Every run produces a :class:`RunRecord` (cache key + hit/miss) in
deterministic spec order; the artifact manifest persists them so a past
job is auditable run by run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, cast

from repro.analysis.determinism import sweep_fingerprint
from repro.metrics.collector import RunResult
from repro.perf.cache import RunCache
from repro.perf.executor import RunTask, execute_tasks
from repro.perf.shards import ShardReport
from repro.service.spec import JobSpec

__all__ = ["RunRecord", "JobExecution", "execute_job", "EventHook", "ExecuteFn"]

#: Fresh results buffered per :meth:`~repro.perf.cache.RunCache.put_many`
#: flush.  Bounds how many completed runs a crash could lose from the
#: cache (they are never lost from the job itself) while still batching
#: the fsync traffic.
PUT_CHUNK = 32

#: ``on_event(kind, policy, load, result)`` with kind in
#: {"run_cached", "run_done"} — invoked per run (deterministic spec order
#: for cache hits, completion order for live runs).
EventHook = Callable[[str, str, float, RunResult], None]

#: Signature of :func:`repro.perf.executor.execute_tasks` — injectable so
#: tests can gate/instrument execution without touching the real pool.
ExecuteFn = Callable[..., List[RunResult]]


@dataclass(frozen=True)
class RunRecord:
    """One run's cache outcome inside a job."""

    policy: str
    load: float
    cache_key: Optional[str]
    hit: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "load": self.load,
            "cache_key": self.cache_key,
            "hit": self.hit,
        }


@dataclass(frozen=True)
class JobExecution:
    """Outcome of one executed job."""

    results: Dict[str, List[RunResult]]
    records: List[RunRecord]
    hits: int
    executed: int
    fingerprint: str
    execute_seconds: float
    #: Per-shard layout and timings when the job ran on the sharded batch
    #: path (empty for scalar jobs and injected executors).
    shards: Tuple[ShardReport, ...] = field(default=())

    @property
    def total(self) -> int:
        return len(self.records)


def execute_job(
    spec: JobSpec,
    cache: Optional[RunCache],
    jobs: int = 1,
    execute: Optional[ExecuteFn] = None,
    on_event: Optional[EventHook] = None,
    slab_shard: Optional[int] = None,
) -> JobExecution:
    """Execute one job: cache lookups, pool fan-out, result storage.

    ``spec.engine == "batch"`` routes execution through the sharded
    :func:`repro.perf.executor.run_sweep_batched` path (unless
    ``execute`` is injected): covered runs are split into per-worker
    sub-slabs scheduled next to scalar-fallback tasks on one pool, the
    resulting shard layout and per-shard timings land in
    :attr:`JobExecution.shards`, and ``slab_shard`` overrides the shard
    size.  Cache keys are engine-aware per run — batch keyspace for
    points the vectorized model covers, scalar keyspace for fallback
    points.

    Cache I/O is slab-granular: one :meth:`~repro.perf.cache.RunCache.
    get_many` answers every lookup up front (an all-hit replay costs one
    counter flush, not one per run), and fresh results are stored through
    :meth:`~repro.perf.cache.RunCache.put_many` in chunks of
    :data:`PUT_CHUNK`.
    """
    batch_covers: Optional[Callable[..., Optional[str]]] = None
    shard_reports: List[ShardReport] = []
    if spec.engine == "batch":
        from repro.core.batch import coverage_gap
        from repro.perf.executor import run_sweep_batched

        batch_covers = coverage_gap
        run_execute = run_sweep_batched if execute is None else execute
    else:
        run_execute = execute_tasks if execute is None else execute
    plan = spec.plan()
    descriptions = spec.run_descriptions()
    results: Dict[str, List[Optional[RunResult]]] = {
        p: [None] * len(spec.loads) for p in spec.policies
    }
    records: List[Optional[RunRecord]] = [None] * len(descriptions)
    tasks: List[RunTask] = []
    #: Parallel to ``tasks``: (description index, policy, load slot, key,
    #: engine keyspace of the point).
    meta: List[tuple] = []
    start = time.perf_counter()

    # One batched lookup for the whole job, in deterministic spec order.
    point_engines: List[str] = []
    keys: List[Optional[str]] = []
    for desc in descriptions:
        point_engine = "fast"
        if batch_covers is not None and (
            batch_covers(desc.config, desc.workload, plan) is None
        ):
            point_engine = "batch"
        point_engines.append(point_engine)
        keys.append(
            cache.key_for(desc.config, desc.workload, plan, engine=point_engine)
            if cache is not None
            else None
        )
    cached: List[Optional[RunResult]] = (
        cache.get_many(cast(List[str], keys))
        if cache is not None
        else [None] * len(descriptions)
    )

    load_index = {load: li for li, load in enumerate(spec.loads)}
    for di, desc in enumerate(descriptions):
        key = keys[di]
        hit = cached[di]
        if hit is not None:
            records[di] = RunRecord(desc.policy, desc.load, key, hit=True)
            results[desc.policy][load_index[desc.load]] = hit
            if on_event is not None:
                on_event("run_cached", desc.policy, desc.load, hit)
            continue
        records[di] = RunRecord(desc.policy, desc.load, key, hit=False)
        tasks.append(RunTask(desc.config, desc.workload, plan))
        meta.append(
            (di, desc.policy, load_index[desc.load], key, point_engines[di])
        )

    put_buffer: List[tuple] = []

    def flush_puts() -> None:
        if cache is not None and put_buffer:
            cache.put_many(put_buffer)
            put_buffer.clear()

    def on_result(index: int, result: RunResult) -> None:
        _, policy, li, key, point_engine = meta[index]
        results[policy][li] = result
        if cache is not None and key is not None:
            put_buffer.append((key, result, point_engine))
            if len(put_buffer) >= PUT_CHUNK:
                flush_puts()
        if on_event is not None:
            on_event("run_done", policy, spec.loads[li], result)

    if execute is None and spec.engine == "batch":
        run_execute(
            tasks,
            jobs=jobs,
            on_result=on_result,
            slab_shard=slab_shard,
            on_shard=shard_reports.append,
        )
    else:
        run_execute(tasks, jobs=jobs, on_result=on_result)
    flush_puts()
    if cache is not None:
        cache.flush_counters()

    full = {p: cast(List[RunResult], list(rs)) for p, rs in results.items()}
    done_records = cast(List[RunRecord], records)
    hits = sum(1 for r in done_records if r.hit)
    return JobExecution(
        results=full,
        records=done_records,
        hits=hits,
        executed=len(tasks),
        fingerprint=sweep_fingerprint(full),
        execute_seconds=time.perf_counter() - start,
        shards=tuple(shard_reports),
    )
