"""Typed job specifications for the sweep service.

A :class:`JobSpec` is the *complete* declarative description of one unit
of service work — a load sweep (``kind="sweep"``) or a single interactive
run (``kind="run"``).  It is the service's wire format: the spool front
end serializes it to JSON (:meth:`JobSpec.to_dict` /
:meth:`JobSpec.from_dict`), the scheduler expands it into per-run
``(config, workload, plan)`` descriptions, and the artifact manifest
embeds it so any past job is replayable from its manifest alone.

Identity
--------
:meth:`JobSpec.job_key` is a SHA-256 over the canonical work-defining
fields plus :data:`~repro.sim.kernel.KERNEL_VERSION` — the same
invalidation discipline as the run cache.  ``priority`` is *excluded*:
two clients asking for the same work at different priorities must dedupe
onto one execution.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Mapping, Tuple

from repro.core.config import ERapidConfig
from repro.core.policies import POLICIES
from repro.errors import JobSpecError
from repro.metrics.collector import MeasurementPlan
from repro.traffic.patterns import PATTERNS
from repro.traffic.workload import WorkloadSpec

__all__ = [
    "JobSpec",
    "RunDescription",
    "JOB_KINDS",
    "PRIORITIES",
    "SERVICE_FORMAT",
]

#: Bump when the job-spec wire format or key derivation changes.
SERVICE_FORMAT = 1

JOB_KINDS = ("sweep", "run")

#: Priority name -> queue rank (lower runs first).  Interactive jobs
#: (single ``run`` submissions, profile-style probes) overtake bulk
#: sweeps that are still queued.
PRIORITIES: Dict[str, int] = {"interactive": 0, "bulk": 1}

#: Default priority per job kind.
_DEFAULT_PRIORITY = {"sweep": "bulk", "run": "interactive"}


@dataclass(frozen=True)
class RunDescription:
    """One concrete run a job expands to, in deterministic spec order."""

    policy: str
    load: float
    config: ERapidConfig
    workload: WorkloadSpec


@dataclass(frozen=True)
class JobSpec:
    """Declarative description of one service job (picklable, JSON-able)."""

    kind: str = "sweep"
    pattern: str = "uniform"
    loads: Tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)
    policies: Tuple[str, ...] = ("NP-NB", "P-NB", "NP-B", "P-B")
    boards: int = 8
    nodes_per_board: int = 8
    seed: int = 1
    warmup: float = 8000.0
    measure: float = 12000.0
    drain_limit: float = 24000.0
    #: "interactive" | "bulk"; empty selects the kind's default.
    priority: str = ""
    #: "fast" (scalar) or "batch" (vectorized slabs with scalar fallback).
    engine: str = "fast"

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise JobSpecError(f"unknown job kind {self.kind!r}")
        if self.pattern not in PATTERNS:
            raise JobSpecError(f"unknown traffic pattern {self.pattern!r}")
        if not self.loads:
            raise JobSpecError("a job needs at least one load point")
        if not self.policies:
            raise JobSpecError("a job needs at least one policy")
        for p in self.policies:
            if p not in POLICIES:
                raise JobSpecError(f"unknown policy {p!r}")
        for load in self.loads:
            if not 0.0 < float(load) <= 1.0:
                raise JobSpecError(f"load {load!r} outside (0, 1]")
        if len(set(self.loads)) != len(self.loads):
            raise JobSpecError("duplicate load points")
        if len(set(self.policies)) != len(self.policies):
            raise JobSpecError("duplicate policies")
        if self.kind == "run" and (len(self.loads), len(self.policies)) != (1, 1):
            raise JobSpecError(
                "kind='run' is a single simulation: exactly one load and "
                "one policy"
            )
        object.__setattr__(
            self, "loads", tuple(float(x) for x in self.loads)
        )
        object.__setattr__(self, "policies", tuple(self.policies))
        if not self.priority:
            object.__setattr__(
                self, "priority", _DEFAULT_PRIORITY[self.kind]
            )
        if self.priority not in PRIORITIES:
            raise JobSpecError(f"unknown priority {self.priority!r}")
        if self.engine not in ("fast", "batch"):
            raise JobSpecError(f"unknown engine {self.engine!r}")
        # Plan validation happens eagerly so a bad spec is rejected at
        # submission, not mid-execution.
        self.plan()

    # ------------------------------------------------------------------
    # Derived run descriptions
    # ------------------------------------------------------------------
    def plan(self) -> MeasurementPlan:
        try:
            return MeasurementPlan(
                warmup=self.warmup,
                measure=self.measure,
                drain_limit=self.drain_limit,
            )
        except Exception as exc:
            raise JobSpecError(f"bad measurement plan: {exc}") from exc

    def base_config(self) -> ERapidConfig:
        from repro.network.topology import ERapidTopology

        return ERapidConfig(
            topology=ERapidTopology(
                boards=self.boards, nodes_per_board=self.nodes_per_board
            )
        )

    def run_descriptions(self) -> List[RunDescription]:
        """Every run of this job, policy-major then load order — exactly
        the task order of :func:`repro.experiments.sweep.run_sweep`, so a
        job's results are positionally comparable to a direct sweep."""
        base = self.base_config()
        out: List[RunDescription] = []
        for policy in self.policies:
            config = base.with_policy(POLICIES[policy])
            for load in self.loads:
                out.append(
                    RunDescription(
                        policy=policy,
                        load=load,
                        config=config,
                        workload=WorkloadSpec(
                            pattern=self.pattern, load=load, seed=self.seed
                        ),
                    )
                )
        return out

    @property
    def total_runs(self) -> int:
        return len(self.loads) * len(self.policies)

    def priority_rank(self) -> int:
        return PRIORITIES[self.priority]

    # ------------------------------------------------------------------
    # Identity and wire format
    # ------------------------------------------------------------------
    def work_payload(self) -> Dict[str, Any]:
        """Canonical work-defining payload (priority excluded)."""
        from repro.sim.kernel import KERNEL_VERSION

        payload: Dict[str, Any] = {
            "service_format": SERVICE_FORMAT,
            "kernel_version": KERNEL_VERSION,
            "kind": self.kind,
            "pattern": self.pattern,
            "loads": list(self.loads),
            "policies": list(self.policies),
            "boards": self.boards,
            "nodes_per_board": self.nodes_per_board,
            "seed": self.seed,
            "warmup": self.warmup,
            "measure": self.measure,
            "drain_limit": self.drain_limit,
        }
        # Only non-default engines enter the payload so every historical
        # fast-engine job key stays byte-stable.
        if self.engine != "fast":
            payload["engine"] = self.engine
        return payload

    def job_key(self) -> str:
        """SHA-256 content address of the job's *work* (not its priority)."""
        payload = json.dumps(
            self.work_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "pattern": self.pattern,
            "loads": list(self.loads),
            "policies": list(self.policies),
            "boards": self.boards,
            "nodes_per_board": self.nodes_per_board,
            "seed": self.seed,
            "warmup": self.warmup,
            "measure": self.measure,
            "drain_limit": self.drain_limit,
            "priority": self.priority,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        """Parse a spec dict; raises :class:`JobSpecError` on anything bad."""
        if not isinstance(data, Mapping):
            raise JobSpecError(f"job spec must be an object, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise JobSpecError(f"unknown job spec fields: {', '.join(unknown)}")
        kwargs: Dict[str, Any] = dict(data)
        for seq_field in ("loads", "policies"):
            if seq_field in kwargs:
                value = kwargs[seq_field]
                if not isinstance(value, (list, tuple)):
                    raise JobSpecError(f"{seq_field} must be a list")
                kwargs[seq_field] = tuple(value)
        try:
            return cls(**kwargs)
        except JobSpecError:
            raise
        except (TypeError, ValueError) as exc:
            raise JobSpecError(f"bad job spec: {exc}") from exc
