"""The sweep service: async job orchestration over the run cache.

:class:`SweepService` is the long-running heart of ``erapid serve``.
Submission is non-blocking: :meth:`SweepService.submit` validates the
spec, dedupes it, and returns a :class:`JobHandle` immediately; a
dedicated scheduler thread drains the bounded priority queue and executes
one job at a time on the process-pool worker shard
(:mod:`repro.service.runner`).  Subscribers stream per-run progress
events (:meth:`JobHandle.stream_events`) or block for the final result
(:meth:`JobHandle.wait`).

Dedup happens at two levels:

* **in-flight** — a submission whose :meth:`~repro.service.spec.JobSpec.job_key`
  matches a queued or running job attaches to that job as an extra
  subscriber: one execution, N identical results;
* **on-disk** — a fresh job answers every run it can from the
  content-addressed :class:`~repro.perf.cache.RunCache`, so resubmitting
  completed work executes zero runs and its manifest records 100% hits.

Backpressure is explicit: a full queue raises
:class:`~repro.errors.QueueFullError` at submission (audited as
``rejected``).  Priorities are two-level — ``interactive`` overtakes
queued ``bulk`` work — and fixed at first submission (a duplicate's
priority does not reorder an already-queued job).

Every lifecycle transition lands in the append-only audit log, and every
completed job writes a manifest into the artifact store, so past work is
replayable (resubmit the manifest's ``spec``) and attributable.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.errors import JobFailedError, QueueFullError, ServiceError
from repro.metrics.collector import RunResult
from repro.perf.cache import RunCache
from repro.service.artifacts import ArtifactStore
from repro.service.audit import AuditLog
from repro.service.queue import BoundedJobQueue
from repro.service.runner import ExecuteFn, JobExecution, execute_job
from repro.service.spec import JobSpec

__all__ = ["SweepService", "Job", "JobHandle", "JOB_TERMINAL_STATES"]

#: States a job can never leave.
JOB_TERMINAL_STATES = frozenset({"completed", "failed"})

#: ``on_update(job)`` — invoked (outside the service lock) after every
#: state transition and progress event; the spool front end mirrors job
#: status to disk from here.
UpdateHook = Callable[["Job"], None]

_job_counter = itertools.count(1)


class Job:
    """Mutable state of one deduplicated unit of service work."""

    def __init__(self, spec: JobSpec, key: str, job_id: str) -> None:
        self.spec = spec
        self.key = key
        self.job_id = job_id
        self.state = "queued"
        self.subscribers = 1
        self.events: List[Dict[str, Any]] = []
        self.execution: Optional[JobExecution] = None
        self.error: Optional[str] = None
        self.manifest_path: Optional[str] = None
        self.submitted_ts = time.time()
        self.started_ts: Optional[float] = None
        self.finished_ts: Optional[float] = None

    @property
    def runs_done(self) -> int:
        return sum(
            1 for e in self.events if e["kind"] in ("run_cached", "run_done")
        )

    def status(self) -> Dict[str, Any]:
        """Plain-data snapshot (callers must hold the service lock)."""
        status: Dict[str, Any] = {
            "job_id": self.job_id,
            "job_key": self.key,
            "kind": self.spec.kind,
            "priority": self.spec.priority,
            "state": self.state,
            "subscribers": self.subscribers,
            "runs_total": self.spec.total_runs,
            "runs_done": self.runs_done,
            "events": len(self.events),
            "manifest": self.manifest_path,
            "error": self.error,
        }
        if self.execution is not None:
            status["counts"] = {
                "total": self.execution.total,
                "hits": self.execution.hits,
                "executed": self.execution.executed,
            }
            status["sweep_fingerprint"] = self.execution.fingerprint
            if self.execution.shards:
                shards = self.execution.shards
                batch = [s for s in shards if s.kind == "batch"]
                status["shards"] = {
                    "total": len(shards),
                    "batch": len(batch),
                    "batch_runs": sum(s.runs for s in batch),
                    "max_shard_seconds": max(s.seconds for s in shards),
                }
        return status


class JobHandle:
    """A subscriber's view of a job (shared across deduped submissions)."""

    def __init__(
        self, service: "SweepService", job: Job, deduped: bool
    ) -> None:
        self._service = service
        self._job = job
        #: Whether this submission attached to an already-pending job.
        self.deduped = deduped

    @property
    def job_id(self) -> str:
        return self._job.job_id

    @property
    def key(self) -> str:
        return self._job.key

    @property
    def state(self) -> str:
        with self._service._cond:
            return self._job.state

    def status(self) -> Dict[str, Any]:
        with self._service._cond:
            return self._job.status()

    def events(self) -> List[Dict[str, Any]]:
        """Snapshot of the progress events emitted so far."""
        with self._service._cond:
            return list(self._job.events)

    def stream_events(
        self, timeout: Optional[float] = None
    ) -> Iterator[Dict[str, Any]]:
        """Yield progress events as they arrive until the job finishes.

        ``timeout`` bounds each *wait between events*; expiry raises
        :class:`TimeoutError` (a stuck stream is a bug, not an idle one).
        """
        cond = self._service._cond
        next_index = 0
        while True:
            with cond:
                if not cond.wait_for(
                    lambda: len(self._job.events) > next_index
                    or self._job.state in JOB_TERMINAL_STATES,
                    timeout=timeout,
                ):
                    raise TimeoutError(
                        f"no event from job {self._job.job_id} within "
                        f"{timeout}s"
                    )
                batch = list(self._job.events[next_index:])
                next_index += len(batch)
                done = (
                    self._job.state in JOB_TERMINAL_STATES
                    and next_index == len(self._job.events)
                )
            yield from batch
            if done:
                return

    def wait(self, timeout: Optional[float] = None) -> JobExecution:
        """Block until the job finishes; returns its execution.

        Raises :class:`JobFailedError` if the job failed and
        :class:`TimeoutError` on expiry.
        """
        with self._service._cond:
            if not self._service._cond.wait_for(
                lambda: self._job.state in JOB_TERMINAL_STATES,
                timeout=timeout,
            ):
                raise TimeoutError(
                    f"job {self._job.job_id} still {self._job.state} after "
                    f"{timeout}s"
                )
            if self._job.state == "failed":
                raise JobFailedError(
                    f"job {self._job.job_id} failed: {self._job.error}"
                )
            assert self._job.execution is not None
            return self._job.execution


class SweepService:
    """Job orchestrator: bounded queue, dedup, one-at-a-time scheduler."""

    def __init__(
        self,
        cache: RunCache,
        store: ArtifactStore,
        jobs: int = 1,
        queue_depth: int = 16,
        execute: Optional[ExecuteFn] = None,
        on_update: Optional[UpdateHook] = None,
    ) -> None:
        self.cache = cache
        self.store = store
        self.jobs = jobs
        self.audit = AuditLog(store.audit_path)
        self.on_update = on_update
        self._execute = execute
        self._queue: BoundedJobQueue[Job] = BoundedJobQueue(queue_depth)
        self._cond = threading.Condition()
        #: job_key -> queued/running job (dedup targets).
        self._pending: Dict[str, Job] = {}
        #: job_id -> job, every job this service has seen.
        self._history: Dict[str, Job] = {}
        self._thread: Optional[threading.Thread] = None
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SweepService":
        if self._thread is not None:
            raise ServiceError("service already started")
        self._thread = threading.Thread(
            target=self._scheduler_loop, name="erapid-scheduler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, wait: bool = True) -> None:
        """Finish the running job (if any), then stop the scheduler."""
        with self._cond:
            self._stopping = True
        self._queue.close()
        if wait and self._thread is not None:
            self._thread.join()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is queued or running; False on timeout."""
        with self._cond:
            return self._cond.wait_for(
                lambda: not self._pending, timeout=timeout
            )

    # ------------------------------------------------------------------
    # Submission (any thread)
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobHandle:
        """Enqueue ``spec`` (or attach to its in-flight duplicate).

        Raises :class:`QueueFullError` under backpressure and
        :class:`ServiceError` after :meth:`stop`.
        """
        key = spec.job_key()
        rejection: Optional[QueueFullError] = None
        with self._cond:
            if self._stopping:
                raise ServiceError("service is stopping; submission refused")
            pending = self._pending.get(key)
            if pending is not None:
                pending.subscribers += 1
                job = pending
                self.audit.append(
                    "deduped",
                    job_id=job.job_id,
                    job_key=key,
                    priority=spec.priority,
                    subscribers=job.subscribers,
                )
            else:
                job = Job(
                    spec, key, f"j{time.time_ns():x}-{next(_job_counter)}"
                )
                try:
                    # Nested queue lock: push never waits on the service
                    # condition, so the ordering is deadlock-free.  Held
                    # together so a racing duplicate submission cannot
                    # double-enqueue the same key.
                    self._queue.push(spec.priority_rank(), job)
                except QueueFullError as exc:
                    rejection = exc
                else:
                    self._pending[key] = job
                    self._history[job.job_id] = job
                    # Audited while the job is still lock-protected so the
                    # log's "submitted" always precedes its "started".
                    self.audit.append(
                        "submitted",
                        job_id=job.job_id,
                        job_key=key,
                        kind=spec.kind,
                        priority=spec.priority,
                        runs=spec.total_runs,
                    )
        if rejection is not None:
            self.audit.append(
                "rejected", job_key=key, priority=spec.priority,
                reason="queue full",
            )
            raise rejection
        self._notify(job)
        return JobHandle(self, job, deduped=pending is not None)

    def job(self, job_id: str) -> Optional[JobHandle]:
        """Handle for a job this service has seen (by id), if any."""
        with self._cond:
            found = self._history.get(job_id)
        return None if found is None else JobHandle(self, found, deduped=False)

    def snapshot(self, job: Job) -> Dict[str, Any]:
        """Thread-safe plain-data status snapshot of ``job``."""
        with self._cond:
            return job.status()

    # ------------------------------------------------------------------
    # Scheduler (dedicated thread)
    # ------------------------------------------------------------------
    def _scheduler_loop(self) -> None:
        while True:
            with self._cond:
                if self._stopping and not self._pending:
                    return
            job = self._queue.pop(timeout=0.1)
            if job is None:
                continue
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        with self._cond:
            job.state = "running"
            job.started_ts = time.time()
        self.audit.append(
            "started", job_id=job.job_id, job_key=job.key,
            priority=job.spec.priority,
        )
        self._notify(job)

        def on_event(
            kind: str, policy: str, load: float, result: RunResult
        ) -> None:
            with self._cond:
                job.events.append(
                    {
                        "seq": len(job.events),
                        "kind": kind,
                        "policy": policy,
                        "load": load,
                        "throughput": result.throughput,
                        "power_mw": result.power_mw,
                    }
                )
                self._cond.notify_all()
            self._notify(job)

        # Terminal bookkeeping (audit record, mirrored status) happens
        # *before* the job leaves ``_pending``: ``drain()`` returning and
        # ``wait()`` waking are the service's "done" signals, so the
        # persistent record must already be on disk by then.
        try:
            execution = execute_job(
                job.spec,
                self.cache,
                jobs=self.jobs,
                execute=self._execute,
                on_event=on_event,
            )
            manifest = self.store.write_manifest(
                self._manifest(job, execution)
            )
            with self._cond:
                job.execution = execution
                job.manifest_path = str(manifest)
                job.state = "completed"
                job.finished_ts = time.time()
            self.audit.append(
                "completed",
                job_id=job.job_id,
                job_key=job.key,
                hits=execution.hits,
                executed=execution.executed,
                total=execution.total,
                subscribers=job.subscribers,
                fingerprint=execution.fingerprint,
            )
        except Exception as exc:  # noqa: BLE001 - jobs must never kill the loop
            with self._cond:
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "failed"
                job.finished_ts = time.time()
            self.audit.append(
                "failed", job_id=job.job_id, job_key=job.key, error=job.error
            )
        self._notify(job)
        with self._cond:
            del self._pending[job.key]
            self._cond.notify_all()

    def _manifest(self, job: Job, execution: JobExecution) -> Dict[str, Any]:
        from repro.sim.kernel import KERNEL_VERSION

        manifest = {
            "job_id": job.job_id,
            "job_key": job.key,
            "kind": job.spec.kind,
            "priority": job.spec.priority,
            "spec": job.spec.to_dict(),
            "kernel_version": KERNEL_VERSION,
            "sweep_fingerprint": execution.fingerprint,
            "runs": [r.to_dict() for r in execution.records],
            "counts": {
                "total": execution.total,
                "hits": execution.hits,
                "misses": execution.total - execution.hits,
                "executed": execution.executed,
            },
            "timings": {
                "submitted_at": job.submitted_ts,
                "started_at": job.started_ts,
                "finished_at": time.time(),
                "execute_seconds": execution.execute_seconds,
            },
            "subscribers": job.subscribers,
        }
        if execution.shards:
            # Shard layout + per-shard timings of the sharded batch path
            # (absent for scalar jobs), so a job's parallel execution is
            # auditable shard by shard.
            manifest["shard_layout"] = {
                "jobs": self.jobs,
                "shards": [s.to_dict() for s in execution.shards],
            }
        return manifest

    def _notify(self, job: Job) -> None:
        """Run the update hook outside the lock (it does file I/O)."""
        hook = self.on_update
        if hook is not None:
            hook(job)
