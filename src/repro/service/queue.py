"""Bounded priority queue with explicit backpressure.

The service's admission control lives here: the queue holds at most
``depth`` jobs, and a push beyond that raises
:class:`~repro.errors.QueueFullError` — an explicit reject the front end
turns into a ``rejected`` status, never silent unbounded buffering.

Ordering is ``(priority rank, arrival sequence)``: interactive jobs
(rank 0) overtake queued bulk sweeps (rank 1), and jobs of equal rank
run strictly FIFO.  The queue is thread-safe; ``pop`` blocks with an
optional timeout and wakes immediately on :meth:`BoundedJobQueue.close`.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Generic, List, Optional, Tuple, TypeVar

from repro.errors import QueueFullError, ServiceError

__all__ = ["BoundedJobQueue"]

T = TypeVar("T")


class BoundedJobQueue(Generic[T]):
    """Thread-safe bounded two-level priority queue."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ServiceError(f"queue depth must be >= 1, got {depth}")
        self.depth = depth
        self._heap: List[Tuple[int, int, T]] = []
        self._seq = itertools.count()
        self._cond = threading.Condition()
        self._closed = False

    def push(self, priority: int, item: T) -> None:
        """Enqueue ``item``; raises :class:`QueueFullError` at capacity."""
        with self._cond:
            if self._closed:
                raise ServiceError("queue is closed")
            if len(self._heap) >= self.depth:
                raise QueueFullError(
                    f"job queue full ({self.depth} pending); retry later"
                )
            heapq.heappush(self._heap, (priority, next(self._seq), item))
            self._cond.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[T]:
        """Highest-priority item, blocking up to ``timeout`` seconds.

        Returns ``None`` on timeout or when the queue is closed and
        drained — the scheduler loop treats both as "check for shutdown".
        """
        with self._cond:
            self._cond.wait_for(
                lambda: self._heap or self._closed, timeout=timeout
            )
            if not self._heap:
                return None
            _, _, item = heapq.heappop(self._heap)
            return item

    def close(self) -> None:
        """Refuse new pushes and wake every blocked ``pop``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)
