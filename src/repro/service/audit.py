"""Append-only audit log: one JSON line per job lifecycle transition.

Every submission, dedup, rejection, start, completion and failure lands
here with a wall-clock timestamp, so service activity is attributable
after the fact — which job ran when, who piggybacked on it, what was
rejected under backpressure.

Each record is serialized to a single line and written with one
``os.write`` on an ``O_APPEND`` descriptor: POSIX appends of one small
write are atomic, so concurrent appenders interleave whole records and a
crash can lose at most the final line — the log never corrupts earlier
history.  Records carry a monotonically increasing per-process ``seq``
for stable ordering among same-timestamp entries.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Union

__all__ = ["AuditLog"]


class AuditLog:
    """Append-only JSONL audit trail."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._seq = itertools.count()

    def append(self, action: str, **details: Any) -> Dict[str, Any]:
        """Append one record; returns it (with ts/seq stamped)."""
        record: Dict[str, Any] = {
            "ts": time.time(),
            "seq": next(self._seq),
            "action": action,
        }
        record.update(details)
        line = json.dumps(record, sort_keys=True) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        return record

    def read_all(self) -> List[Dict[str, Any]]:
        """Every parseable record, in file order (a torn final line —
        possible only after a crash mid-append — is skipped)."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        records: List[Dict[str, Any]] = []
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except ValueError:
                continue
            if isinstance(data, dict):
                records.append(data)
        return records
