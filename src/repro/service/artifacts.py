"""Persistent per-job artifact store: manifests under a stable layout.

Every completed job writes one manifest —
``<root>/artifacts/<job_id>/manifest.json`` — recording everything needed
to replay and attribute the job:

* the full :class:`~repro.service.spec.JobSpec` (``spec``) — resubmitting
  it reproduces the work bit-identically;
* ``kernel_version`` and the job's content address (``job_key``);
* per-run :class:`~repro.service.runner.RunRecord` rows (``runs``): the
  run-cache key and whether it was answered from disk;
* ``counts`` (total / hits / executed), ``sweep_fingerprint`` of the
  results, wall-clock ``timings``, and the subscriber count.

Manifests are written atomically (temp file + ``os.replace``) so a
concurrent reader never sees a torn manifest.  The store root defaults to
``$ERAPID_ARTIFACT_DIR`` or ``~/.local/share/erapid``; the append-only
audit log (:mod:`repro.service.audit`) lives beside the manifests.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ServiceError

__all__ = ["ArtifactStore", "default_artifact_root", "MANIFEST_FORMAT"]

#: Bump when the manifest schema changes.
MANIFEST_FORMAT = 1

_ENV_VAR = "ERAPID_ARTIFACT_DIR"


def default_artifact_root() -> Path:
    """``$ERAPID_ARTIFACT_DIR`` when set, else ``~/.local/share/erapid``."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".local" / "share" / "erapid"


class ArtifactStore:
    """Manifest store rooted at a directory (created lazily)."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else default_artifact_root()

    @property
    def artifacts_dir(self) -> Path:
        return self.root / "artifacts"

    @property
    def audit_path(self) -> Path:
        return self.root / "audits.jsonl"

    def manifest_path(self, job_id: str) -> Path:
        return self.artifacts_dir / job_id / "manifest.json"

    # ------------------------------------------------------------------
    def write_manifest(self, manifest: Dict[str, Any]) -> Path:
        """Atomically persist one job manifest; returns its path."""
        job_id = manifest.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise ServiceError("manifest needs a non-empty job_id")
        path = self.manifest_path(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"manifest_format": MANIFEST_FORMAT, **manifest},
            sort_keys=True,
            indent=2,
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".manifest-", suffix=".tmp"
        )
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
        os.replace(tmp_name, path)
        return path

    def read_manifest(self, job_id: str) -> Dict[str, Any]:
        path = self.manifest_path(job_id)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise ServiceError(f"no manifest for job {job_id!r}: {exc}") from exc
        except ValueError as exc:
            raise ServiceError(
                f"corrupt manifest for job {job_id!r}: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ServiceError(f"corrupt manifest for job {job_id!r}")
        return data

    def list_job_ids(self) -> List[str]:
        """Job ids with a manifest on disk, sorted (ids embed submit time)."""
        if not self.artifacts_dir.is_dir():
            return []
        return sorted(
            d.name
            for d in self.artifacts_dir.iterdir()
            if d.is_dir() and (d / "manifest.json").is_file()
        )
