"""Sweep service: async job orchestration over the run cache.

This package turns the one-shot experiment harness
(:func:`repro.experiments.sweep.run_sweep` + the content-addressed
:class:`repro.perf.cache.RunCache`) into a long-running, many-client
service — the "millions of users" path: most submissions answered from
cache, identical in-flight work deduplicated onto one execution, the
remainder scheduled onto a bounded process-pool worker shard.

``repro.service.spec``
    Typed job specifications (JSON wire format, SHA-256 job keys keyed on
    the same ``KERNEL_VERSION`` discipline as the run cache).

``repro.service.queue``
    Bounded two-level priority queue: interactive jobs overtake queued
    bulk sweeps; a full queue is an explicit
    :class:`~repro.errors.QueueFullError` reject (backpressure).

``repro.service.runner``
    Executes one job: per-run cache dedup, process-pool fan-out, run
    records.  Results are bit-identical to a direct ``run_sweep``.

``repro.service.orchestrator``
    :class:`SweepService` — non-blocking submission, in-flight dedup with
    subscriber fan-in, a scheduler thread, streamed progress events.

``repro.service.artifacts`` / ``repro.service.audit``
    The persistent record: one manifest per completed job (spec, cache
    keys, hit/miss per run, timings, fingerprint) and an append-only
    JSONL audit log of every lifecycle transition.

``repro.service.spool``
    The dependency-free front end: a spool directory of JSON submissions
    and mirrored status files, driven by ``erapid serve`` /
    ``erapid submit`` / ``erapid jobs``.
"""

from repro.service.artifacts import ArtifactStore, default_artifact_root
from repro.service.audit import AuditLog
from repro.service.orchestrator import Job, JobHandle, SweepService
from repro.service.queue import BoundedJobQueue
from repro.service.runner import JobExecution, RunRecord, execute_job
from repro.service.spec import JobSpec, PRIORITIES
from repro.service.spool import (
    SpoolServer,
    list_statuses,
    read_status,
    submit_to_spool,
)

__all__ = [
    "ArtifactStore",
    "AuditLog",
    "BoundedJobQueue",
    "Job",
    "JobExecution",
    "JobHandle",
    "JobSpec",
    "PRIORITIES",
    "RunRecord",
    "SpoolServer",
    "SweepService",
    "default_artifact_root",
    "execute_job",
    "list_statuses",
    "read_status",
    "submit_to_spool",
]
