"""File-spool front end: dependency-free job submission and status.

The service's wire protocol is a directory, which keeps the front end
free of network dependencies and trivially testable:

* ``<spool>/incoming/`` — clients drop one JSON job spec per file
  (atomic temp-file + rename, so the server never reads a half-written
  spec).  ``erapid submit`` writes here.
* ``<spool>/status/<job_key>.json`` — the server mirrors each job's
  status here on every transition and progress event (atomic replace).
  ``erapid jobs`` reads here.  The file name is the job's content
  address, so a client can compute it locally (the spec is a pure
  function) and poll without ever talking to the server process.

:class:`SpoolServer` owns the loop: scan incoming submissions into the
:class:`~repro.service.orchestrator.SweepService`, mirror status, repeat.
Unparseable specs become ``invalid`` status entries; a full queue becomes
a ``rejected`` status — explicit backpressure, never a silently dropped
file.
"""

from __future__ import annotations

import itertools
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import JobSpecError, QueueFullError
from repro.service.orchestrator import Job, SweepService
from repro.service.spec import JobSpec

__all__ = [
    "SpoolServer",
    "ensure_spool",
    "submit_to_spool",
    "read_status",
    "list_statuses",
    "status_path",
]

_INCOMING = "incoming"
_STATUS = "status"

_submission_counter = itertools.count(1)


def ensure_spool(spool: Union[str, Path]) -> Path:
    root = Path(spool)
    (root / _INCOMING).mkdir(parents=True, exist_ok=True)
    (root / _STATUS).mkdir(parents=True, exist_ok=True)
    return root


def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.stem[:24]}-", suffix=".tmp"
    )
    with os.fdopen(fd, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    os.replace(tmp_name, path)


def submit_to_spool(spool: Union[str, Path], spec: JobSpec) -> str:
    """Drop ``spec`` into the spool; returns its job key (= status name)."""
    root = ensure_spool(spool)
    key = spec.job_key()
    name = f"{time.time_ns():x}-{os.getpid()}-{next(_submission_counter)}"
    _atomic_write_json(root / _INCOMING / f"{name}.json", spec.to_dict())
    return key


def status_path(spool: Union[str, Path], key: str) -> Path:
    return Path(spool) / _STATUS / f"{key}.json"


def read_status(spool: Union[str, Path], key: str) -> Optional[Dict[str, Any]]:
    """The mirrored status for ``key``, or None if the server has not
    seen (or not yet acknowledged) such a job."""
    try:
        data = json.loads(status_path(spool, key).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def list_statuses(spool: Union[str, Path]) -> List[Dict[str, Any]]:
    """Every mirrored status, sorted by status name (job key)."""
    status_dir = Path(spool) / _STATUS
    if not status_dir.is_dir():
        return []
    out: List[Dict[str, Any]] = []
    for f in sorted(status_dir.glob("*.json")):
        try:
            data = json.loads(f.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if isinstance(data, dict):
            data.setdefault("job_key", f.stem)
            out.append(data)
    return out


class SpoolServer:
    """Scan loop binding a spool directory to a :class:`SweepService`."""

    def __init__(
        self,
        spool: Union[str, Path],
        service: SweepService,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.spool = ensure_spool(spool)
        self.service = service
        self.log = log
        # Mirror every job transition/progress event into status files.
        service.on_update = self._write_status

    # ------------------------------------------------------------------
    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log(message)

    def _write_status(self, job: Job) -> None:
        status = self.service.snapshot(job)
        _atomic_write_json(status_path(self.spool, job.key), status)
        if status["state"] in ("completed", "failed"):
            counts = status.get("counts")
            detail = (
                f" ({counts['hits']}/{counts['total']} cache hits, "
                f"{counts['executed']} executed)"
                if counts
                else f" ({status.get('error')})"
            )
            self._say(f"job {job.job_id} {status['state']}{detail}")

    def _reject_status(self, name: str, state: str, error: str) -> None:
        _atomic_write_json(
            status_path(self.spool, name),
            {"state": state, "error": error, "job_key": name},
        )
        self._say(f"submission {name} {state}: {error}")

    # ------------------------------------------------------------------
    def scan_once(self) -> int:
        """Ingest every spec currently in ``incoming/``; returns count."""
        incoming = self.spool / _INCOMING
        processed = 0
        for path in sorted(incoming.glob("*.json")):
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                spec = JobSpec.from_dict(data)
            except (ValueError, JobSpecError) as exc:
                self._reject_status(path.stem, "invalid", str(exc))
                path.unlink(missing_ok=True)
                processed += 1
                continue
            try:
                handle = self.service.submit(spec)
            except QueueFullError as exc:
                self._reject_status(spec.job_key(), "rejected", str(exc))
                path.unlink(missing_ok=True)
                processed += 1
                continue
            path.unlink(missing_ok=True)
            processed += 1
            verb = "deduped onto" if handle.deduped else "accepted as"
            self._say(
                f"submission {path.stem} {verb} job {handle.job_id} "
                f"[{spec.kind}/{spec.priority}, {spec.total_runs} runs]"
            )
        return processed

    def serve_once(self, timeout: Optional[float] = None) -> None:
        """Ingest the current spool contents and drain the service."""
        deadline_left = timeout
        started = time.monotonic()
        while True:
            self.scan_once()
            if timeout is not None:
                deadline_left = timeout - (time.monotonic() - started)
                if deadline_left <= 0:
                    raise TimeoutError("serve_once timed out")
            if self.service.drain(timeout=deadline_left):
                # Drained — but a submission may have landed while the
                # last job ran; exit only once incoming is empty too.
                if not list((self.spool / _INCOMING).glob("*.json")):
                    return

    def serve_forever(
        self,
        poll: float = 0.2,
        idle_exit: Optional[float] = None,
    ) -> None:
        """Scan/execute until interrupted (or idle for ``idle_exit`` s)."""
        idle_since = time.monotonic()
        while True:
            processed = self.scan_once()
            busy = processed > 0 or not self.service.drain(timeout=0.0)
            if busy:
                idle_since = time.monotonic()
            elif (
                idle_exit is not None
                and time.monotonic() - idle_since >= idle_exit
            ):
                self._say(f"idle for {idle_exit:.0f}s; exiting")
                return
            time.sleep(poll)
