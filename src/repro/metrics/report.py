"""Plain-text table rendering for experiment outputs.

The harness prints the same rows the paper's figures plot; these helpers
keep the formatting consistent across benches, examples and the CLI.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import MeasurementError

__all__ = ["format_table", "format_kv", "ratio"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    floatfmt: str = ".4g",
) -> str:
    """Render an aligned text table.

    Floats are formatted with ``floatfmt``; everything else with ``str``.
    """
    if not headers:
        raise MeasurementError("table needs at least one column")
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise MeasurementError(
                f"row width {len(row)} != header width {len(headers)}: {row!r}"
            )
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(format(value, floatfmt))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(r[c]) for r in rendered) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for i, r in enumerate(rendered):
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(r, widths)))
        if i == 0:
            lines.append(sep)
    return "\n".join(lines)


def format_kv(pairs: Dict[str, object], title: Optional[str] = None) -> str:
    """Aligned ``key: value`` block."""
    if not pairs:
        return title or ""
    width = max(len(k) for k in pairs)
    lines = [title] if title else []
    for k, v in pairs.items():
        if isinstance(v, float):
            v = format(v, ".4g")
        lines.append(f"  {k.ljust(width)} : {v}")
    return "\n".join(lines)


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio for headline comparisons (0 when the base is 0)."""
    return numerator / denominator if denominator else 0.0
