"""Steady-state output analysis.

§4: "The simulator was warmed up under load without taking measurements
until steady state was reached."  This module supplies the statistical
tooling to make that rigorous:

* :func:`batch_means` — split a within-run sample stream into batches and
  form a confidence interval that respects autocorrelation (the classic
  batch-means method);
* :func:`mser_truncation` — the MSER-5 warm-up truncation heuristic, for
  choosing how much of a run to discard;
* :class:`ReplicationSummary` — across-run (independent seeds) mean ± CI
  for every :class:`~repro.metrics.collector.RunResult` metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from scipy import stats as sps

from repro.errors import MeasurementError
from repro.metrics.collector import RunResult

__all__ = ["batch_means", "mser_truncation", "ReplicationSummary", "replicate"]


def batch_means(
    samples: Sequence[float], n_batches: int = 10, confidence: float = 0.95
) -> Tuple[float, float]:
    """(mean, CI half-width) via non-overlapping batch means.

    Consecutive within-run observations (e.g. per-window power readings)
    are autocorrelated; batching restores approximate independence so the
    Student-t interval is honest.
    """
    if n_batches < 2:
        raise MeasurementError(f"need >= 2 batches, got {n_batches}")
    if len(samples) < 2 * n_batches:
        raise MeasurementError(
            f"need >= {2 * n_batches} samples for {n_batches} batches, "
            f"got {len(samples)}"
        )
    if not 0.0 < confidence < 1.0:
        raise MeasurementError(f"confidence must be in (0,1), got {confidence}")
    batch_size = len(samples) // n_batches
    means = [
        sum(samples[i * batch_size : (i + 1) * batch_size]) / batch_size
        for i in range(n_batches)
    ]
    grand = sum(means) / n_batches
    var = sum((m - grand) ** 2 for m in means) / (n_batches - 1)
    t = float(sps.t.ppf(0.5 + confidence / 2.0, df=n_batches - 1))
    half = t * math.sqrt(var / n_batches)
    return grand, half


def mser_truncation(samples: Sequence[float], stride: int = 5) -> int:
    """MSER warm-up truncation: the prefix length to discard.

    Returns the truncation index (a multiple of ``stride``) that minimizes
    the marginal standard error of the remaining observations.  Standard
    caveat applied: never truncate more than half the run.
    """
    n = len(samples)
    if n < 2 * stride:
        raise MeasurementError(f"need >= {2 * stride} samples, got {n}")
    best_d, best_score = 0, math.inf
    for d in range(0, n // 2, stride):
        rest = samples[d:]
        m = len(rest)
        mean = sum(rest) / m
        sse = sum((x - mean) ** 2 for x in rest)
        score = sse / (m * m)
        if score < best_score:
            best_score = score
            best_d = d
    return best_d


@dataclass(frozen=True)
class MetricSummary:
    """Across-replication mean ± CI half-width for one metric."""

    mean: float
    half_width: float
    n: int

    @property
    def relative_error(self) -> float:
        return self.half_width / abs(self.mean) if self.mean else math.inf

    def __str__(self) -> str:
        return f"{self.mean:.5g} ± {self.half_width:.2g} (n={self.n})"


class ReplicationSummary:
    """Aggregates independent-seed :class:`RunResult` replications."""

    METRICS = ("throughput", "offered", "avg_latency", "power_mw")

    def __init__(self, results: Sequence[RunResult], confidence: float = 0.95) -> None:
        if len(results) < 2:
            raise MeasurementError(
                f"need >= 2 replications for a CI, got {len(results)}"
            )
        if not 0.0 < confidence < 1.0:
            raise MeasurementError(f"confidence must be in (0,1), got {confidence}")
        self.results = list(results)
        self.confidence = confidence

    def metric(self, name: str) -> MetricSummary:
        values = [float(getattr(r, name)) for r in self.results]
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        t = float(sps.t.ppf(0.5 + self.confidence / 2.0, df=n - 1))
        return MetricSummary(mean, t * math.sqrt(var / n), n)

    def summary(self) -> Dict[str, MetricSummary]:
        return {name: self.metric(name) for name in self.METRICS}

    def format(self) -> str:
        return "\n".join(f"{k:12s}: {v}" for k, v in self.summary().items())


def replicate(
    run_fn: Callable[[int], RunResult],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> ReplicationSummary:
    """Run ``run_fn(seed)`` for every seed and summarize."""
    if len(seeds) < 2:
        raise MeasurementError("need >= 2 seeds")
    results: List[RunResult] = [run_fn(seed) for seed in seeds]
    return ReplicationSummary(results, confidence)
