"""Measurement methodology (§4): warm-up / labeled-measure / drain phases,
run metrics, table rendering and time-series probes."""

from repro.metrics.collector import Collector, MeasurementPlan, RunResult
from repro.metrics.report import format_kv, format_table, ratio
from repro.metrics.steady_state import (
    MetricSummary,
    ReplicationSummary,
    batch_means,
    mser_truncation,
    replicate,
)
from repro.metrics.timeseries import ChannelProbe, ProbeSample, SystemProbe

__all__ = [
    "ChannelProbe",
    "Collector",
    "MeasurementPlan",
    "MetricSummary",
    "ProbeSample",
    "ReplicationSummary",
    "RunResult",
    "SystemProbe",
    "batch_means",
    "format_kv",
    "format_table",
    "mser_truncation",
    "ratio",
    "replicate",
]
