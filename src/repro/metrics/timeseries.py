"""Time-series probes.

Figure 3 plots power level and link utilization *versus time* for the four
design-space corners.  A :class:`ChannelProbe` samples one optical
channel's (power level index, instantaneous power, windowed utilization,
active channel count) on a fixed period so the bench can print the same
series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, TYPE_CHECKING

from repro.errors import MeasurementError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import FastEngine

__all__ = ["ProbeSample", "ChannelProbe", "SystemProbe"]


@dataclass(frozen=True)
class ProbeSample:
    """One sample of a channel's operating point."""

    time: float
    level_index: int
    level_name: str
    power_mw: float
    utilization: float
    enabled: bool


@dataclass
class ChannelProbe:
    """Periodic sampler of one (wavelength, dest) channel."""

    engine: "FastEngine"
    wavelength: int
    dest: int
    period: float = 250.0
    samples: List[ProbeSample] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise MeasurementError(f"probe period must be positive, got {self.period}")

    def start(self) -> None:
        self.engine.sim.process(self._run(), name=f"probe{self.wavelength}.{self.dest}")

    def _run(self):
        sim = self.engine.sim
        ch = self.engine.channels[(self.wavelength, self.dest)]
        table = self.engine.config.power_levels
        window = self.period
        last_busy_area = 0.0
        while True:
            yield sim.timeout(self.period)
            now = sim.now
            area = (
                ch.busy_signal.average(now) * (now - 0.0)
            )  # cumulative busy time
            util = (area - last_busy_area) / window
            last_busy_area = area
            self.samples.append(
                ProbeSample(
                    time=now,
                    level_index=table.index_of(ch.level),
                    level_name=ch.level.name,
                    power_mw=self.engine.accountant.channel_power(ch.key),
                    utilization=max(0.0, min(1.0, util)),
                    enabled=ch.enabled,
                )
            )


@dataclass
class SystemProbe:
    """Periodic sampler of system totals (power, lit lasers)."""

    engine: "FastEngine"
    period: float = 500.0
    times: List[float] = field(default_factory=list)
    power_mw: List[float] = field(default_factory=list)
    lasers_on: List[int] = field(default_factory=list)

    def start(self) -> None:
        self.engine.sim.process(self._run(), name="system-probe")

    def _run(self):
        sim = self.engine.sim
        while True:
            yield sim.timeout(self.period)
            self.times.append(sim.now)
            self.power_mw.append(self.engine.accountant.total_now_mw())
            self.lasers_on.append(self.engine.srs.lasers_on())
