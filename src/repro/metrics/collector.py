"""Measurement methodology (§4).

"The simulator was warmed up under load without taking measurements until
steady state was reached.  Then a sample of injected packets were labelled
during a measurement interval.  The simulation was allowed to run until all
the labelled packets reached their destinations."

:class:`MeasurementPlan` fixes the phase boundaries; :class:`Collector`
tallies injections/deliveries per phase and owns the labeled-packet latency
statistics.  Throughput is *accepted traffic*: packets delivered during the
measurement interval / (interval x nodes) — at saturation this is the
sustainable rate, while labeled latency is measured over delivered labeled
packets (censored at saturation, as in the paper's methodology).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import MeasurementError
from repro.network.packet import Packet
from repro.sim.stats import Histogram, Tally

__all__ = ["MeasurementPlan", "Collector", "RunResult"]


@dataclass(frozen=True)
class MeasurementPlan:
    """Warm-up / measure / drain phase boundaries, in cycles."""

    warmup: float = 4000.0
    measure: float = 10000.0
    #: Hard cap on the drain phase (labeled packets still in flight at the
    #: cap are abandoned — standard practice past saturation).
    drain_limit: float = 30000.0

    def __post_init__(self) -> None:
        if self.warmup < 0 or self.measure <= 0 or self.drain_limit < 0:
            raise MeasurementError(f"bad measurement plan {self}")

    @property
    def measure_end(self) -> float:
        return self.warmup + self.measure

    @property
    def hard_end(self) -> float:
        return self.measure_end + self.drain_limit


class Collector:
    """Phase-aware injection/delivery bookkeeping for one run."""

    def __init__(self, plan: MeasurementPlan, n_nodes: int) -> None:
        if n_nodes < 1:
            raise MeasurementError("n_nodes must be >= 1")
        self.plan = plan
        self.n_nodes = n_nodes
        self.injected_total = 0
        self.injected_measure = 0
        self.delivered_total = 0
        self.delivered_measure = 0
        self.labeled_injected = 0
        self.labeled_delivered = 0
        self.latency = Tally()
        self.latency_hist = Histogram(0.0, 20000.0, 200)
        #: Captured by the engine exactly when the measure phase ends.
        self.power_avg_mw: Optional[float] = None

    # ------------------------------------------------------------------
    def labeling(self, now: float) -> bool:
        """Whether packets created at ``now`` should be labeled."""
        return self.plan.warmup <= now < self.plan.measure_end

    def in_measure(self, now: float) -> bool:
        return self.plan.warmup <= now < self.plan.measure_end

    def on_injected(self, pkt: Packet, now: float) -> None:
        self.injected_total += 1
        if self.in_measure(now):
            self.injected_measure += 1
        if pkt.labeled:
            self.labeled_injected += 1

    def on_delivered(self, pkt: Packet, now: float) -> None:
        self.delivered_total += 1
        if self.in_measure(now):
            self.delivered_measure += 1
        if pkt.labeled:
            self.labeled_delivered += 1
            self.latency.add(pkt.latency)
            self.latency_hist.add(pkt.latency)

    # ------------------------------------------------------------------
    @property
    def labeled_outstanding(self) -> int:
        return self.labeled_injected - self.labeled_delivered

    def drained(self) -> bool:
        return self.labeled_outstanding == 0

    def result(self, **extra: object) -> "RunResult":
        """Finalize into a :class:`RunResult`."""
        m = self.plan.measure
        return RunResult(
            throughput=self.delivered_measure / (m * self.n_nodes),
            offered=self.injected_measure / (m * self.n_nodes),
            avg_latency=self.latency.mean,
            p99_latency=self.latency_hist.percentile(99),
            max_latency=self.latency.max if self.latency.count else 0.0,
            power_mw=self.power_avg_mw if self.power_avg_mw is not None else 0.0,
            labeled_injected=self.labeled_injected,
            labeled_delivered=self.labeled_delivered,
            delivered_measure=self.delivered_measure,
            extra=dict(extra),
        )


@dataclass
class RunResult:
    """Per-run metrics: the three y-axes of Figures 5 and 6."""

    #: Accepted traffic, packets/node/cycle.
    throughput: float
    #: Offered traffic actually injected, packets/node/cycle.
    offered: float
    #: Mean labeled-packet latency, cycles.
    avg_latency: float
    p99_latency: float
    max_latency: float
    #: Average optical-plane power over the measurement window, mW.
    power_mw: float
    labeled_injected: int = 0
    labeled_delivered: int = 0
    delivered_measure: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def acceptance(self) -> float:
        """Delivered / offered during the measurement window."""
        return self.throughput / self.offered if self.offered > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict; exact float round trip (Python repr shortest-
        float guarantees), so serialize → deserialize is bit-identical.
        Used by the on-disk run cache and the sweep fingerprints."""
        return {
            "throughput": self.throughput,
            "offered": self.offered,
            "avg_latency": self.avg_latency,
            "p99_latency": self.p99_latency,
            "max_latency": self.max_latency,
            "power_mw": self.power_mw,
            "labeled_injected": self.labeled_injected,
            "labeled_delivered": self.labeled_delivered,
            "delivered_measure": self.delivered_measure,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        """Inverse of :meth:`to_dict`."""
        fields = dict(data)
        extra = fields.pop("extra", {})
        return cls(extra=dict(extra), **fields)  # type: ignore[arg-type]

    def summary(self) -> str:
        return (
            f"thr={self.throughput:.5f} pkt/node/cyc  "
            f"lat={self.avg_latency:.1f} cyc  power={self.power_mw:.1f} mW"
        )
