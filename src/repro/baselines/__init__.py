"""Baseline comparators (electrical-only inter-board plane)."""

from repro.baselines.electrical import (
    ELECTRICAL_LINK,
    electrical_config,
    run_electrical_baseline,
)

__all__ = ["ELECTRICAL_LINK", "electrical_config", "run_electrical_baseline"]
