"""Electrical-only baseline network.

§4 compares E-RAPID "to other electrical networks".  The closed comparator
is unavailable, so we build the closest synthetic equivalent: the same
topology and engine, but the inter-board plane is fixed point-to-point
electrical links —

* one 6.4 Gbps link per board pair (the Table-1 per-port rate), no
  wavelength pool to re-allocate and no bit-rate scaling;
* link power from published electrical-SerDes-era figures rather than the
  optical component stack.  We charge ~13.4 pJ/bit (86 mW at 6.4 Gbps) vs
  the optical plane's 8.6 pJ/bit at 5 Gbps — the relative gap the paper's
  motivation cites for opto-electronic interconnects.

Implemented as a configuration of the fast engine: a single-level power
ladder at 6.4 Gbps with the NP-NB policy, so every mechanism under test is
disabled and only the physical plane differs.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import ERapidConfig
from repro.core.engine import FastEngine
from repro.core.policies import NP_NB
from repro.metrics.collector import MeasurementPlan, RunResult
from repro.network.topology import ERapidTopology
from repro.power.levels import PowerLevel, PowerLevelTable
from repro.traffic.workload import WorkloadSpec

__all__ = ["ELECTRICAL_LINK", "electrical_config", "run_electrical_baseline"]

#: One inter-board electrical link: 6.4 Gbps at 1.2 V, ~86 mW (13.4 pJ/bit).
ELECTRICAL_LINK = PowerLevel("E-link", 6.4, 1.2, 86.0)


def electrical_config(
    boards: int = 8, nodes_per_board: int = 8, **overrides
) -> ERapidConfig:
    """An all-electrical configuration of the same system."""
    return ERapidConfig(
        topology=ERapidTopology(boards=boards, nodes_per_board=nodes_per_board),
        policy=NP_NB,
        power_levels=PowerLevelTable([ELECTRICAL_LINK]),
        **overrides,
    )


def run_electrical_baseline(
    workload: WorkloadSpec,
    plan: Optional[MeasurementPlan] = None,
    boards: int = 8,
    nodes_per_board: int = 8,
) -> RunResult:
    """One run of the electrical baseline under ``workload``."""
    config = electrical_config(boards, nodes_per_board)
    engine = FastEngine(config, workload, plan or MeasurementPlan())
    return engine.run()
