"""Bench: Figure 5 (left) — uniform traffic, 64 nodes, all four configs.

Paper shapes asserted:
* NP-NB ≈ NP-B throughput/latency (no under-utilized links to move, no
  reconfiguration penalty);
* P-NB throughput within ~3 % of NP-NB, P-B within ~8 %;
* P-NB and P-B consume less power than NP-NB; P-B saves the most
  (25–50 % across the sweep).
"""

from panel_common import run_panel, save_panel, shapes


def test_fig5_uniform(benchmark, save_result, results_dir):
    panel = benchmark.pedantic(
        lambda: run_panel("uniform"), rounds=1, iterations=1
    )
    s = shapes(panel)

    # NP-B == NP-NB: below saturation no grants fire and the curves match.
    # (At 0.9 N_c stochastic queue bursts can cross B_max and trigger a few
    # benign transient grants; the parity assertions below still hold.)
    for run, load in zip(panel.results["NP-B"], panel.spec.loads):
        if load <= 0.7:
            assert run.extra["grants"] == 0, load
    assert s["NP-B"]["peak"] >= 0.98 * s["NP-NB"]["peak"]
    assert abs(s["NP-B"]["power"] - s["NP-NB"]["power"]) < 0.02 * s["NP-NB"]["power"]

    # Power-aware corners: small throughput cost ...
    assert s["P-NB"]["peak"] >= 0.97 * s["NP-NB"]["peak"]
    assert s["P-B"]["peak"] >= 0.92 * s["NP-NB"]["peak"]
    # ... and real power savings, P-B the strongest.
    assert s["P-NB"]["power"] < 0.97 * s["NP-NB"]["power"]
    assert s["P-B"]["power"] < 0.80 * s["NP-NB"]["power"]
    assert s["P-B"]["power"] < s["P-NB"]["power"]

    save_panel(panel, "fig5_uniform", save_result, results_dir)
