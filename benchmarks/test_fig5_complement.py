"""Bench: Figure 5 (right) — complement traffic, 64 nodes, all four configs.

The paper's worst case: all of a board's traffic shares one static
wavelength.  Shapes asserted:
* NP-NB and P-NB saturate at the single-channel rate (≈ 0.125 N_c) with
  ~equal power;
* NP-B and P-B deliver a multiple (paper: ~4x) of the static throughput,
  at a multiple (paper: ~4x for NP-B) of the static power;
* P-B consumes less than NP-B at similar throughput (paper: ~25 % less).
"""

from panel_common import run_panel, save_panel, shapes


def test_fig5_complement(benchmark, save_result, results_dir):
    panel = benchmark.pedantic(
        lambda: run_panel("complement"), rounds=1, iterations=1
    )
    s = shapes(panel)

    # Static corners saturate at the one-channel bound.
    one_channel = 1 / 40.96 / 8  # mu_opt / nodes-per-board
    assert s["NP-NB"]["peak"] < 1.15 * one_channel
    assert s["P-NB"]["peak"] < 1.15 * one_channel
    # NP-NB ≈ P-NB power (the saturated link runs at P_high either way).
    assert abs(s["P-NB"]["power"] - s["NP-NB"]["power"]) < 0.2 * s["NP-NB"]["power"]

    # Reconfigured corners: several-fold throughput at several-fold power.
    assert s["NP-B"]["peak"] > 3.0 * s["NP-NB"]["peak"]
    assert s["P-B"]["peak"] > 3.0 * s["NP-NB"]["peak"]
    assert s["NP-B"]["power"] > 2.0 * s["NP-NB"]["power"]

    # P-B cheaper than NP-B at comparable delivered traffic.  Compare at
    # the mid loads where both deliver the full offered rate (the sweep
    # mean is polluted at >= 0.7 N_c, where the two policies drain
    # different warm-up backlogs through the measurement window).
    loads = list(panel.spec.loads)
    for load in (0.3, 0.5):
        i = loads.index(load)
        np_b = panel.results["NP-B"][i]
        p_b = panel.results["P-B"][i]
        assert p_b.throughput > 0.95 * np_b.throughput, load
        assert p_b.power_mw < 0.95 * np_b.power_mw, load
    # At 0.3 N_c the paper's ~25 % saving is fully visible.
    i = loads.index(0.3)
    assert (
        panel.results["P-B"][i].power_mw
        < 0.8 * panel.results["NP-B"][i].power_mw
    )
    assert s["P-B"]["peak"] > 0.9 * s["NP-B"]["peak"]

    # Reconfiguration actually fired.
    assert any(r.extra["grants"] > 0 for r in panel.results["NP-B"])
    save_panel(panel, "fig5_complement", save_result, results_dir)
