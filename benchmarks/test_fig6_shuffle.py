"""Bench: Figure 6 (right) — perfect-shuffle traffic, 64 nodes, all four
configs.

Perfect shuffle also spreads each board over two destinations.  Paper
shapes: ~1.7x throughput for NP-B/P-B, power +70 % (NP-B) vs +25 % (P-B).
"""

from panel_common import run_panel, save_panel, shapes


def test_fig6_shuffle(benchmark, save_result, results_dir):
    panel = benchmark.pedantic(
        lambda: run_panel("perfect_shuffle"), rounds=1, iterations=1
    )
    s = shapes(panel)

    # ~1.7x class improvement: between butterfly's and complement's.
    assert s["NP-B"]["peak"] > 1.3 * s["NP-NB"]["peak"]
    assert s["P-B"]["peak"] > 1.3 * s["NP-NB"]["peak"]
    assert s["NP-B"]["peak"] < 4.0 * s["NP-NB"]["peak"]
    # Power ordering: NP-B most expensive, P-B cheaper, both above NP-NB.
    assert s["NP-B"]["power"] > 1.2 * s["NP-NB"]["power"]
    assert s["P-B"]["power"] < s["NP-B"]["power"]
    assert any(r.extra["grants"] > 0 for r in panel.results["P-B"])

    save_panel(panel, "fig6_shuffle", save_result, results_dir)
