"""Shared fixtures for the reproduction benches.

Every bench regenerates one of the paper's tables/figures, saves the
rendered output under ``benchmarks/results/`` and asserts the paper's
qualitative shape (who wins, by roughly what factor).  Run with::

    pytest benchmarks/ --benchmark-only
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_result(results_dir):
    """Callable: save_result(name, text) -> Path; also echoes to stdout."""

    def _save(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save
