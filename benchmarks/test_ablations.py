"""Benches: the design-choice ablations DESIGN.md calls out.

* R_w window sweep (§3.1 fixes R_w = 2000 by simulation);
* DPM/DBR threshold sensitivity;
* number of power levels (§5 future work);
* limited reconfigurability (§5 cost-reduced design).
"""

from repro.experiments import (
    ablate_limited_dbr,
    ablate_power_levels,
    ablate_thresholds,
    ablate_window,
)


def test_ablation_window(benchmark, save_result):
    rows, table = benchmark.pedantic(
        lambda: ablate_window(windows=(500, 2000, 8000)),
        rounds=1, iterations=1,
    )
    save_result("ablation_window", table)
    by_rw = {r[0]: r for r in rows}
    # Tiny windows re-clock constantly: more transitions than R_w = 2000.
    assert by_rw[500][4] >= by_rw[2000][4]
    # Huge windows adapt too slowly to save as much power as R_w = 2000
    # would, or at best match it; throughput stays in a tight band.
    thr = [r[1] for r in rows]
    assert max(thr) - min(thr) < 0.15 * max(thr)


def test_ablation_thresholds(benchmark, save_result):
    rows, table = benchmark.pedantic(
        lambda: ablate_thresholds(
            bands=((0.3, 0.5, 0.3), (0.7, 0.9, 0.3), (0.7, 0.9, 0.0))
        ),
        rounds=1, iterations=1,
    )
    save_result("ablation_thresholds", table)
    # The aggressive paper band (0.7/0.9) saves more power than the timid
    # one (0.3/0.5) — links ride lower levels at higher utilization.
    timid = rows[0]
    aggressive = rows[1]
    assert aggressive[5] < timid[5]


def test_ablation_power_levels(benchmark, save_result):
    rows, table = benchmark.pedantic(
        lambda: ablate_power_levels(level_counts=(2, 3, 5)),
        rounds=1, iterations=1,
    )
    save_result("ablation_power_levels", table)
    # All configurations keep delivering; transition counts rise with the
    # ladder size (finer tracking = more re-clocking).
    thr = [r[1] for r in rows]
    assert min(thr) > 0.8 * max(thr)


def test_ablation_limited_dbr(benchmark, save_result):
    rows, table = benchmark.pedantic(
        lambda: ablate_limited_dbr(caps=(0, 1, None)),
        rounds=1, iterations=1,
    )
    save_result("ablation_limited_dbr", table)
    by_cap = {str(r[0]): r for r in rows}
    # No grants = static saturation; capped grants converge slower (their
    # backlog drains during the measurement window, so raw throughput is
    # not monotone) — latency is the clean cost/performance dial.
    assert by_cap["unlimited"][2] < by_cap["1"][2] < by_cap["0"][2]
    assert by_cap["0"][4] == 0
    assert by_cap["unlimited"][1] > 2.0 * by_cap["0"][1]
