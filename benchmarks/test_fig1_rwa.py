"""Bench: Figure 1 — the static routing and wavelength assignment.

Regenerates the R(1,4,4) wavelength map from the paper (both worked
examples asserted) and the 8-board map the 64-node evaluation uses, and
times the full-system RWA validation.
"""

from repro.optics import StaticRWA, SuperHighway
from repro.network.topology import ERapidTopology


def test_fig1_static_rwa(benchmark, save_result):
    def regenerate():
        rwa4 = StaticRWA(4)
        rwa4.validate()
        rwa8 = StaticRWA(8)
        rwa8.validate()
        return rwa4, rwa8

    rwa4, rwa8 = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    # §2.1's worked examples.
    assert rwa4.wavelength_for(1, 0) == 1
    assert rwa4.wavelength_for(0, 1) == 3
    text = (
        "Figure 1 — static RWA for R(1,4,4):\n"
        + rwa4.render_table()
        + "\n\nStatic RWA for the 64-node R(1,8,8) evaluation platform:\n"
        + rwa8.render_table()
    )
    save_result("fig1_rwa", text)


def test_fig2_laser_plane_bringup(benchmark):
    """Figure 2(b) structure: bring up the full SRS and validate couplers."""

    def bringup():
        srs = SuperHighway(ERapidTopology(boards=8, nodes_per_board=8))
        return srs.validate()

    channels = benchmark(bringup)
    assert len(channels) == 8 * 7
