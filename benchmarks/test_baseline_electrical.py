"""Bench: the electrical-only comparator (§4 "compared to other electrical
networks") and a kernel microbench.

The electrical plane runs each board pair at a fixed 6.4 Gbps / ~86 mW
link (~13.4 pJ/bit) with no reconfiguration; E-RAPID's optical plane moves
the same traffic at 8.6 pJ/bit and can re-shape bandwidth.
"""

from repro import ERapidSystem, MeasurementPlan, WorkloadSpec
from repro.baselines import run_electrical_baseline
from repro.metrics import format_table
from repro.sim import Simulator

PLAN = MeasurementPlan(warmup=8000, measure=10000, drain_limit=16000)


def test_baseline_electrical_vs_optical(benchmark, save_result):
    def compare():
        rows = []
        for pattern in ("uniform", "complement"):
            wl = WorkloadSpec(pattern=pattern, load=0.5, seed=1)
            elec = run_electrical_baseline(wl, plan=PLAN)
            opt = ERapidSystem.build(policy="NP-NB").run(wl, PLAN)
            pb = ERapidSystem.build(policy="P-B").run(wl, PLAN)
            for name, r in (("electrical", elec), ("E-RAPID NP-NB", opt),
                            ("E-RAPID P-B", pb)):
                rows.append(
                    [pattern, name, r.throughput, r.power_mw,
                     r.power_mw / r.throughput if r.throughput else 0.0]
                )
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    table = format_table(
        ["pattern", "network", "throughput", "power_mW", "mW per unit thr"],
        rows,
        title="== electrical baseline vs E-RAPID ==",
    )
    save_result("baseline_electrical", table)
    # Optical static beats electrical on power-per-throughput for uniform.
    uniform = {r[1]: r for r in rows if r[0] == "uniform"}
    assert uniform["E-RAPID NP-NB"][4] < uniform["electrical"][4]
    # And P-B beats both.
    assert uniform["E-RAPID P-B"][4] < uniform["E-RAPID NP-NB"][4]
    # On complement, P-B's reconfiguration out-delivers the static planes.
    comp = {r[1]: r for r in rows if r[0] == "complement"}
    assert comp["E-RAPID P-B"][2] > 2.0 * comp["electrical"][2]


def test_kernel_event_throughput(benchmark):
    """Microbench: DES kernel event dispatch rate (the simulator's floor)."""

    def run_events():
        sim = Simulator()
        count = 20_000

        def chain(n):
            if n > 0:
                sim.schedule(1.0, chain, n - 1)

        sim.schedule(0.0, chain, count)
        sim.run()
        return sim.event_count

    events = benchmark(run_events)
    assert events >= 20_000
