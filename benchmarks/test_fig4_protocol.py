"""Bench: Figure 4 — the 5-stage Lock-Step reconfiguration protocol.

Runs P-B under complement traffic with protocol tracing and verifies the
stage sequence and timing against ControlParams (Link Request ->
Board Request -> Reconfigure -> Board Response -> Link Response), then
saves the trace — the textual equivalent of the paper's protocol figure.
"""

from repro import ERapidSystem, MeasurementPlan, WorkloadSpec
from repro.sim.trace import TraceLog


def _run_traced():
    trace = TraceLog(categories={"protocol"})
    system = ERapidSystem.build(boards=4, nodes_per_board=4, policy="P-B")
    plan = MeasurementPlan(warmup=6000, measure=4000, drain_limit=4000)
    system.run(WorkloadSpec(pattern="complement", load=0.6, seed=1), plan, trace=trace)
    return system, trace


def test_fig4_protocol_stages(benchmark, save_result):
    system, trace = benchmark.pedantic(_run_traced, rounds=1, iterations=1)
    engine = system.last_engine
    control = engine.config.control
    topo = engine.topology
    stages = control.dbr_stage_latencies(topo.boards, topo.nodes_per_board)

    # The first bandwidth window for P-B is window 2 (even), at t = 4000.
    t0 = 2 * control.window_cycles
    recs = [r for r in trace.filter(category="protocol", entity="RC0")]
    by_msg = {}
    for r in recs:
        by_msg.setdefault(r.message.split(";")[0], []).append(r.time)

    assert any(abs(t - t0) < 1 for t in by_msg["Link_Request sent"])
    t_link = t0 + stages["link_request"]
    assert any(abs(t - t_link) < 1 for t in by_msg["outgoing link statistics updated"])
    t_board = t_link + stages["board_request"]
    assert any(abs(t - t_board) < 1 for t in by_msg["Board_Request completed"])
    t_reconf = t_board + stages["reconfigure"]
    assert any(abs(t - t_reconf) < 1 for t in by_msg["Reconfigure stage"])
    t_resp = t_reconf + stages["board_response"]
    assert any(abs(t - t_resp) < 1 for t in by_msg["Board_Response completed"])
    # Grants actuate at the Link Response stage.
    grant_times = [r.time for r in recs if r.message.startswith("grant")]
    t_apply = t_resp + stages["link_response"]
    assert grant_times and all(
        any(abs(t - (t_apply + 2 * k * control.window_cycles)) < 1
            for k in range(6))
        for t in grant_times
    )

    # Lock-step alternation: power cycles on odd windows only.
    power_times = [
        r.time for r in recs if r.message.startswith("Power_Request sent")
    ]
    for t in power_times:
        window_index = round(t / control.window_cycles)
        assert window_index % 2 == 1

    save_result("fig4_protocol", trace.format(category="protocol"))
