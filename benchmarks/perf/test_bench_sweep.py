"""Bench: end-to-end sweep wall time — serial vs process pool vs cache.

Wall-time numbers are informational (they depend on the runner); what is
asserted hard is the determinism contract that makes the parallel and
cached paths usable at all: every execution mode must fingerprint
bit-identical to the serial sweep, and a warm cache must serve every run
without executing anything.
"""

import json

from repro.perf.bench import bench_sweep, write_report


def test_bench_sweep_smoke(results_dir):
    report = bench_sweep(quick=True, jobs=2)

    det = report["determinism"]
    assert det["parallel_matches_serial"], det
    assert det["cached_matches_serial"], det

    # The warm pass must be 100% hits: one store per run on the cold pass,
    # one hit per run on the warm pass, zero stray misses afterwards.
    stats = report["cache_stats"]
    assert stats["puts"] == report["runs"]
    assert stats["hits"] == report["runs"]
    assert stats["misses"] == report["runs"]  # cold pass misses only

    assert report["serial_seconds"] > 0
    assert report["parallel_seconds"] > 0
    assert report["cache_warm_seconds"] > 0

    path = results_dir / "bench_sweep_quick.json"
    write_report(report, path)
    print(
        "sweep quick ({} runs): serial {:.2f}s, jobs=2 {:.2f}s, "
        "warm cache {:.2f}s [saved to {}]".format(
            report["runs"],
            report["serial_seconds"],
            report["parallel_seconds"],
            report["cache_warm_seconds"],
            path,
        )
    )
    assert json.loads(path.read_text())["benchmark"] == "sweep"
