"""Bench: event-kernel throughput, current kernel vs frozen legacy kernel.

This is the tracked form of the hot-path optimization claim: the current
tuple-keyed kernel must process events faster than the pre-optimization
object-heap kernel preserved in :mod:`repro.perf.legacy`.  The full
(non-``--quick``) numbers live in ``BENCH_kernel.json`` at the repo root,
regenerated with ``make bench``; this bench runs the reduced workload so
CI smoke stays cheap, and only sanity-checks the measurement itself —
timer noise on shared runners makes a hard speedup gate flaky, so the
ratio assertion here is deliberately loose.
"""

import json

from repro.perf.bench import bench_kernel, write_report


def test_bench_kernel_smoke(results_dir):
    report = bench_kernel(quick=True)

    # Structural validity: both kernels ran and produced positive rates.
    for family in ("storm", "audit16"):
        assert report[family]["current"]["events_per_sec"] > 0
        assert report[family]["legacy"]["events_per_sec"] > 0
        assert report[family]["speedup"] > 0

    # Both kernels must execute the *same* deterministic workload.
    assert report["storm"]["current"]["events"] == report["storm"]["legacy"]["events"]
    assert (
        report["audit16"]["current"]["events"]
        == report["audit16"]["legacy"]["events"]
    )

    path = results_dir / "bench_kernel_quick.json"
    write_report(report, path)
    print(
        "kernel quick: storm {:.2f}x, audit16 {:.2f}x vs legacy "
        "[saved to {}]".format(
            report["storm"]["speedup"], report["audit16"]["speedup"], path
        )
    )
    assert json.loads(path.read_text())["benchmark"] == "kernel"
