"""Bench: flit-level flits/sec — clocked engine vs frozen process engine.

Wall-time ratios from shared runners are informational (the full
best-of-3 numbers live in ``BENCH_detailed.json`` at the repo root), but
the bit-identity contract is asserted hard: the cycle-synchronous
detailed engine must fingerprint identically to the frozen process-based
engine on every ``RunResult`` field except the executed-event count.
"""

import json

from repro.perf.bench import bench_detailed, write_report


def test_bench_detailed_smoke(results_dir):
    report = bench_detailed(quick=True)

    bit = report["bit_identity"]
    assert bit["clocked_matches_legacy"], bit

    for family in ("audit16", "storm"):
        cur = report[family]["current"]
        old = report[family]["legacy"]
        assert cur["flits_per_sec"] > 0
        assert old["flits_per_sec"] > 0
        # Identical simulated history: same flit count, far fewer events.
        assert cur["flits"] == old["flits"]
        assert cur["events"] < old["events"]

    path = results_dir / "bench_detailed_quick.json"
    write_report(report, path)
    print(
        "detailed quick: audit16 {:.2f}x, storm {:.2f}x vs process engine; "
        "bit-identity over {} runs OK [saved to {}]".format(
            report["audit16"]["speedup"], report["storm"]["speedup"],
            bit["runs"], path
        )
    )
    assert json.loads(path.read_text())["benchmark"] == "detailed"
