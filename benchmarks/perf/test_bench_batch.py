"""Bench: batch-engine runs/sec vs the scalar process-pool sweep.

Wall-time numbers are informational in quick mode (the ≥5x bar applies
only to the full 144-point grid in CI's bench-smoke job); what is
asserted hard at every size is the fidelity contract that makes the
batch tier shippable: the statistical-equivalence harness passes its
declared tolerances, the stream-identical permutation subset is
bit-identical to the scalar engine, every sharded (jobs, slab_shard)
layout fingerprints identical to single-process batch, the
struct-of-arrays transport payload pickles smaller than the RunResult
list it decodes into, and the event-horizon time-skipping loop is
bit-identical to the unskipped loop while visibly engaging (cycles
skipped, telemetry present) on the load-0.1 slabs.
"""

import json

from repro.perf.bench import bench_batch, write_report


def test_bench_batch_smoke(results_dir):
    report = bench_batch(quick=True, jobs=2)

    assert report["benchmark"] == "batch"
    assert report["quick"] is True
    assert report["runs"] > 0
    assert 0 < report["covered_runs"] <= report["runs"]
    assert report["batch_kernel_version"] >= 1

    equiv = report["equivalence"]
    assert equiv["ok"], equiv["failures"]
    assert equiv["total"] == report["runs"]

    bit = report["bit_identity"]
    assert bit["matches"], bit
    assert bit["runs"] > 0
    assert bit["scalar_fingerprint"] == bit["batch_fingerprint"]

    assert report["batch_seconds"] > 0
    assert report["scalar_seconds"] > 0
    assert report["speedup"] > 0
    assert report["cpu_count"] >= 1

    # Sharded jobs-scaling dimension: every (jobs, slab_shard) layout
    # variant must fingerprint-identical to single-process batch — shard
    # layout is pure scheduling, never results.
    sharded = report["sharded"]
    assert sharded["jobs_identity"] is True
    assert len(sharded["variants"]) >= 3  # jobs=1, jobs=2, shard override
    assert sharded["variants"][0]["jobs"] == 1
    assert any(v["slab_shard"] is not None for v in sharded["variants"])
    for variant in sharded["variants"]:
        assert variant["fingerprint_matches_jobs1"] is True, variant
        assert variant["seconds"] > 0
        assert variant["plan"].startswith("shard plan:")
    assert sharded["top_jobs"] == 2
    assert sharded["sharded_speedup"] > 0

    # Compact result transport: the struct-of-arrays payload must pickle
    # smaller than the decoded RunResult list it reconstructs.
    transport = report["transport"]
    assert transport["shard_runs"] > 0
    assert 0 < transport["payload_bytes"] < transport["results_bytes"]
    assert transport["bytes_ratio"] > 1

    # Event-horizon time-skipping: bit-identity between skip and no-skip
    # at every size, cycles_skipped telemetry present in quick mode, and
    # the skip machinery visibly engaged on the load-0.1 slabs
    # (cycles_executed < horizon — cost tracks events, not the horizon).
    skip = report["skip"]
    assert skip["grid_identity"] is True
    assert skip["identity"] is True
    assert skip["skip_engaged_low_load"] is True
    assert skip["grid_noskip_seconds"] > 0
    loads = {e["load"] for e in skip["by_load"]}
    assert 0.1 in loads
    for entry in skip["by_load"]:
        assert entry["identical_to_noskip"] is True, entry
        assert entry["matches_grid"] is True, entry
        tel = entry["telemetry"]
        assert tel["cycles_executed"] > 0
        assert tel["cycles_skipped"] >= 0
        assert 0.0 <= tel["skip_ratio"] <= 1.0
        assert (
            tel["cycles_executed"] + tel["cycles_skipped"] <= tel["horizon"]
        )
        if entry["load"] == 0.1:
            assert tel["cycles_executed"] < tel["horizon"]
            assert tel["cycles_skipped"] > 0
    lowload = skip["lowload"]
    assert lowload["runs"] > 0
    assert lowload["batch_runs_per_sec"] > 0
    assert lowload["speedup_vs_grid"] > 0
    # Load scaling — the gated claim (>=2x low-vs-high is full-mode
    # only; quick mode just requires both rates measured on same-width
    # single-load slabs so the ratio is well-defined).
    scaling = skip["load_scaling"]
    assert scaling["low_runs"] > 0
    assert scaling["high_runs"] > 0
    assert scaling["low_runs_per_sec"] > 0
    assert scaling["high_runs_per_sec"] > 0
    assert scaling["low_vs_high"] > 0
    assert set(scaling["low_loads"]) <= {e["load"] for e in skip["by_load"]}
    assert set(scaling["high_loads"]) <= {e["load"] for e in skip["by_load"]}

    path = results_dir / "bench_batch_quick.json"
    write_report(report, path)
    print(
        "batch quick ({} runs, {} batch-covered): batch {:.1f} runs/s vs "
        "scalar jobs=2 {:.1f} runs/s ({:.2f}x) [saved to {}]".format(
            report["runs"],
            report["covered_runs"],
            report["batch_runs_per_sec"],
            report["scalar_runs_per_sec"],
            report["speedup"],
            path,
        )
    )
    assert json.loads(path.read_text())["benchmark"] == "batch"
