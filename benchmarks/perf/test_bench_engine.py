"""Bench: whole-engine packets/sec — callback engine vs frozen coroutine.

Wall-time ratios from shared runners are informational (the full
best-of-3 numbers live in ``BENCH_engine.json`` at the repo root), but
the bit-identity contract is asserted hard: the callback-state-machine
engine must fingerprint identically to the coroutine engine on every
``RunResult`` field except the executed-event count, serially and
through the process pool.
"""

import json

from repro.perf.bench import bench_engine, write_report


def test_bench_engine_smoke(results_dir):
    report = bench_engine(quick=True, jobs=2)

    bit = report["bit_identity"]
    assert bit["serial_matches_legacy"], bit
    assert bit["parallel_matches_legacy"], bit

    for family in ("audit16", "storm"):
        cur = report[family]["current"]
        old = report[family]["legacy"]
        assert cur["packets_per_sec"] > 0
        assert old["packets_per_sec"] > 0
        # Identical simulated history: same packet count, fewer events.
        assert cur["packets"] == old["packets"]
        assert cur["events"] < old["events"]

    path = results_dir / "bench_engine_quick.json"
    write_report(report, path)
    print(
        "engine quick: audit16 {:.2f}x, storm {:.2f}x vs coroutine engine; "
        "bit-identity over {} runs OK [saved to {}]".format(
            report["audit16"]["speedup"], report["storm"]["speedup"],
            bit["runs"], path
        )
    )
    assert json.loads(path.read_text())["benchmark"] == "engine"
