"""Bench: regenerate Table 1 (simulation network parameters).

Asserts the exact published operating points, then times the power-model
evaluation (the hot path of the energy accounting).
"""

from repro.experiments import render_table1, table1_checks
from repro.power import ComponentPower, LinkPowerModel, TABLE1_LEVELS


def test_table1_regeneration(benchmark, save_result):
    table1_checks()

    def regenerate():
        return render_table1()

    text = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    assert "43.03" in text and "8.6" in text and "26" in text
    assert "400 MHz" in text and "6.4 Gbps" in text
    save_result("table1_parameters", text)


def test_power_model_hot_path(benchmark):
    """Microbench: instantaneous link power (called on every state change)."""
    model = LinkPowerModel()
    high = TABLE1_LEVELS[2]

    def evaluate():
        total = 0.0
        for util in (0.0, 0.25, 0.5, 0.75, 1.0):
            total += model.average_mw(True, high, util)
        return total

    total = benchmark(evaluate)
    assert total > 0


def test_component_breakdown_speed(benchmark):
    comp = ComponentPower()

    def breakdown():
        return comp.breakdown_mw(0.9, 5.0)

    b = benchmark(breakdown)
    assert abs(sum(b.values()) - 43.30) < 0.05
