"""Bench: Figure 3 — the power/bandwidth design space as time series.

Reproduces the conceptual figure with real simulation: a staged traffic
ramp on the hot board pair, probed per quarter-window for each of the four
configurations.  The shape assertions encode the paper's panels:
NP-NB flat at P_high; P-NB tracks the ramp; NP-B adds wavelengths at full
power; P-B adds wavelengths *and* scales.
"""

from repro.experiments import render_fig3, run_fig3


def test_fig3_design_space(benchmark, save_result):
    results = benchmark.pedantic(
        lambda: run_fig3(boards=4, nodes_per_board=4, horizon=26000,
                         sample_period=1000),
        rounds=1,
        iterations=1,
    )
    # Panel (a): non-power-aware corners never leave P_high.
    for corner in ("NP-NB", "NP-B"):
        assert all(s.level_name == "P_high" for s in results[corner].samples)
    # Panel (b): power-aware corners visit lower levels during low traffic.
    for corner in ("P-NB", "P-B"):
        assert any(s.level_name == "P_low" for s in results[corner].samples)
    # Panel (c)/(d): only the bandwidth-reconfigured corners add channels.
    assert max(results["NP-B"].pair_channels) > 1
    assert max(results["P-B"].pair_channels) > 1
    assert max(results["NP-NB"].pair_channels) == 1
    assert max(results["P-NB"].pair_channels) == 1
    # P-B's hot channel consumes less on average than NP-B's (same ramp).
    # (P-NB vs NP-NB is not asserted on sampled instantaneous power: both
    # pin the saturated hot channel at P_high during the high phase, so
    # their difference is within sampling noise — the level-occupancy
    # assertions above capture the real distinction.)
    avg = {
        k: sum(s.power_mw for s in v.samples) / len(v.samples)
        for k, v in results.items()
    }
    assert avg["P-B"] < avg["NP-B"]
    save_result("fig3_design_space", render_fig3(results))
