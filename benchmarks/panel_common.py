"""Shared machinery for the Figure 5/6 sweep benches.

Benches run the paper's 64-node platform over a 5-point load grid (the
full 9-point §4 grid works too — it just takes ~2x longer; pass
``loads=PAPER_LOADS``).
"""

from typing import Dict, List, Sequence

from repro.experiments import FigurePanel, SweepSpec, sweep_rows, write_csv
from repro.metrics.collector import MeasurementPlan, RunResult

BENCH_LOADS = (0.1, 0.3, 0.5, 0.7, 0.9)
BENCH_PLAN = MeasurementPlan(warmup=8000.0, measure=10000.0, drain_limit=16000.0)


def run_panel(pattern: str, loads: Sequence[float] = BENCH_LOADS) -> FigurePanel:
    spec = SweepSpec(
        pattern=pattern,
        loads=tuple(loads),
        boards=8,
        nodes_per_board=8,
        plan=BENCH_PLAN,
    )
    return FigurePanel.run(spec)


def save_panel(panel: FigurePanel, name: str, save_result, results_dir) -> None:
    save_result(name, panel.render())
    write_csv(results_dir / f"{name}.csv", sweep_rows(panel.results))


def mean_power(runs: List[RunResult]) -> float:
    return sum(r.power_mw for r in runs) / len(runs)


def peak_throughput(runs: List[RunResult]) -> float:
    return max(r.throughput for r in runs)


def shapes(panel: FigurePanel) -> Dict[str, Dict[str, float]]:
    """Headline numbers per policy: peak throughput and mean power."""
    return {
        policy: {
            "peak": peak_throughput(runs),
            "power": mean_power(runs),
        }
        for policy, runs in panel.results.items()
    }
