"""Bench: Figure 6 (left) — butterfly traffic, 64 nodes, all four configs.

Butterfly concentrates each board's remote traffic onto two destination
boards.  Paper shapes: NP-B/P-B improve throughput (~25 % in the paper's
runs) at roughly 2x (NP-B) vs 1.5x (P-B) the baseline power.
"""

from panel_common import run_panel, save_panel, shapes


def test_fig6_butterfly(benchmark, save_result, results_dir):
    panel = benchmark.pedantic(
        lambda: run_panel("butterfly"), rounds=1, iterations=1
    )
    s = shapes(panel)

    # Bandwidth reconfiguration helps (bounded: only 2 hot pairs/board).
    assert s["NP-B"]["peak"] > 1.1 * s["NP-NB"]["peak"]
    assert s["P-B"]["peak"] > 1.1 * s["NP-NB"]["peak"]
    # The gain is far below complement's ~4x.
    assert s["NP-B"]["peak"] < 3.0 * s["NP-NB"]["peak"]
    # Extra wavelengths cost power; P-B costs less than NP-B.
    assert s["NP-B"]["power"] > 1.1 * s["NP-NB"]["power"]
    assert s["P-B"]["power"] < s["NP-B"]["power"]
    assert any(r.extra["grants"] > 0 for r in panel.results["NP-B"])

    save_panel(panel, "fig6_butterfly", save_result, results_dir)
