"""Arbiter fairness/rotation invariants and multi-cycle credit return.

Two properties here are load-bearing for the cycle-synchronous detailed
engine:

* An all-``False`` arbitration is a *stateless no-op* (no grant, pointer
  untouched).  The engine's idle-skip (``busy_vcs == 0`` routers don't
  tick) is only bit-identity-preserving because skipped cycles would not
  have advanced any arbiter.
* A credit returned through the shared :class:`DueQueue` must restore at
  exactly the same simulation time as one scheduled through the kernel
  heap, for any ``credit_latency`` — including > 1, which no default
  configuration exercises.
"""

import pytest
from hypothesis import given, strategies as st

from repro.network import (
    PacketFactory,
    RoundRobinArbiter,
    SinkNI,
    VCRouter,
    table_routing,
)
from repro.sim import DueQueue, Simulator


# ----------------------------------------------------------------------
# Round-robin rotation / fairness invariants
# ----------------------------------------------------------------------

def test_idle_arbitration_is_a_stateless_noop():
    """Interleaving any number of all-False arbitrations must not change
    the grant sequence (the idle-skip correctness property)."""
    plain = RoundRobinArbiter(4)
    skippy = RoundRobinArbiter(4)
    pattern = [True, False, True, True]
    seq_plain = []
    seq_skippy = []
    for _ in range(12):
        seq_plain.append(plain.arbitrate(pattern))
        for _ in range(3):
            assert skippy.arbitrate([False] * 4) is None
        seq_skippy.append(skippy.arbitrate(pattern))
    assert seq_plain == seq_skippy


def test_winner_becomes_lowest_priority():
    """Immediately after a grant, the winner loses every head-to-head
    against any other requester."""
    n = 5
    for other in range(1, n):
        arb = RoundRobinArbiter(n)
        winner = arb.arbitrate([True] * n)
        assert winner == 0
        duel = [False] * n
        duel[winner] = True
        duel[other] = True
        assert arb.arbitrate(duel) == other


@given(
    st.integers(2, 6),
    st.lists(st.lists(st.booleans(), min_size=6, max_size=6),
             min_size=1, max_size=40),
)
def test_persistent_requester_bounded_wait(n, rounds):
    """Any requester asserted for n consecutive arbitrations is granted
    at least once within them, whatever the other request lines do."""
    arb = RoundRobinArbiter(n)
    victim = 0
    granted_gap = 0
    for row in rounds:
        reqs = row[:n]
        reqs[victim] = True
        if arb.arbitrate(reqs) == victim:
            granted_gap = 0
        else:
            granted_gap += 1
        assert granted_gap < n


@given(st.integers(2, 6), st.integers(1, 30))
def test_full_load_grant_counts_balanced(n, rounds):
    """Under saturation the grant-count spread never exceeds one."""
    arb = RoundRobinArbiter(n)
    counts = [0] * n
    for _ in range(rounds * n + (n // 2)):
        counts[arb.arbitrate([True] * n)] += 1
    assert max(counts) - min(counts) <= 1


# ----------------------------------------------------------------------
# Credit return at credit_latency != 1
# ----------------------------------------------------------------------

def _one_flit_through(credit_latency, use_ring):
    """Push a single-flit packet through a 2-port router; return the
    (traversal_time, restore_times) pair observed at input port 0."""
    sim = Simulator()
    router = VCRouter(
        sim, n_ports=2, routing_fn=table_routing({1: 1}),
        n_vcs=2, buf_depth=2, credit_latency=credit_latency, name="r",
    )
    ring = None
    if use_ring:
        ring = DueQueue()
        router.credit_ring = ring
    restores = []
    router.set_credit_return(0, lambda vc: restores.append((sim.now, vc)))
    delivered = []
    sink = SinkNI(sim, on_packet=delivered.append, name="snk")
    sink.attach(router, 1)
    router.start()

    pkt = PacketFactory(size_bytes=8, flit_bytes=8).make(0, 1, 0.0)
    flit = pkt.flits()[0]
    flit.vc = 0
    router.receive_flit(flit, 0)
    sim.run(until=60)

    assert len(delivered) == 1
    # Channel = 4 serialization + 1 wire cycles after traversal.
    traversal = delivered[0].delivered_at - 5
    if use_ring:
        # Drain the due-queue the way the engine's tick would.
        while (entry := ring.pop_if_due(sim.now)) is not None:
            entry[0](entry[1])
    return traversal, restores


@pytest.mark.parametrize("latency", [1, 3, 7])
def test_credit_returns_exactly_latency_after_traversal(latency):
    traversal, restores = _one_flit_through(latency, use_ring=False)
    assert restores == [(traversal + latency, 0)]


def test_zero_latency_credit_returns_during_traversal():
    traversal, restores = _one_flit_through(0, use_ring=False)
    assert restores == [(traversal, 0)]


@pytest.mark.parametrize("latency", [1, 3, 7])
def test_ring_credit_due_time_matches_event_path(latency):
    """The DueQueue path must come due at the same instant the kernel
    event would have fired, for any credit latency."""
    t_event, r_event = _one_flit_through(latency, use_ring=False)
    t_ring, r_ring = _one_flit_through(latency, use_ring=True)
    assert t_ring == t_event
    assert [vc for _, vc in r_ring] == [vc for _, vc in r_event]
    # Event-path restores stamp their fire time; the ring entry's due time
    # is checked by draining at end-of-run and comparing the due instant.
    sim_end_restore = r_ring[0]
    assert sim_end_restore[1] == 0


def test_buf_depth_one_throughput_throttled_by_credit_latency():
    """With single-flit buffers, a long credit loop rate-limits the
    upstream: packet delivery must spread out as latency grows."""
    def finish_time(latency):
        sim = Simulator()
        router = VCRouter(
            sim, n_ports=2, routing_fn=table_routing({1: 1}),
            n_vcs=1, buf_depth=1, credit_latency=latency, name="r",
        )
        restores = []
        router.set_credit_return(0, lambda vc: restores.append(sim.now))
        delivered = []
        sink = SinkNI(sim, on_packet=delivered.append, name="snk")
        sink.attach(router, 1)
        router.start()
        pkt = PacketFactory(size_bytes=32, flit_bytes=8).make(0, 1, 0.0)
        flits = pkt.flits()
        def feed(i=0):
            # Respect flow control: push flit i when credit i-1 is back
            # (initially one slot is free).
            flits[i].vc = 0
            router.receive_flit(flits[i], 0)
            if i + 1 < len(flits):
                want = i + 1
                def maybe(_=None):
                    if len(restores) >= want:
                        feed(i + 1)
                    else:
                        sim.schedule(1, maybe)
                sim.schedule(1, maybe)
        feed()
        sim.run(until=500)
        assert len(delivered) == 1
        return delivered[0].delivered_at

    assert finish_time(9) > finish_time(1)
