"""CLI tests (run through main() directly; output captured via capsys)."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["run", "--pattern", "complement", "--policy", "P-B"])
    assert args.command == "run"
    assert args.pattern == "complement"


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cli_rejects_unknown_pattern():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--pattern", "zipf"])


def test_cli_rwa(capsys):
    assert main(["rwa", "--boards", "4"]) == 0
    out = capsys.readouterr().out
    assert "λ3^(0)" in out and "λ1^(1)" in out


def test_cli_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "43.03" in out and "400 MHz" in out


def test_cli_run_small(capsys):
    rc = main([
        "run", "--pattern", "uniform", "--policy", "NP-NB",
        "--boards", "4", "--nodes", "4", "--load", "0.3",
        "--warmup", "2000", "--measure", "4000",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "throughput" in out and "power (mW)" in out


def test_cli_sweep_with_csv(tmp_path, capsys):
    csv_path = tmp_path / "out.csv"
    rc = main([
        "sweep", "--pattern", "uniform", "--loads", "0.3",
        "--boards", "4", "--nodes", "4", "--csv", str(csv_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "headline ratios" in out
    assert csv_path.exists()


def test_cli_profile_fast_engine(capsys):
    rc = main([
        "profile", "--engine", "fast", "--policy", "NP-NB",
        "--boards", "2", "--nodes", "2", "--load", "0.3",
        "--warmup", "500", "--measure", "1000", "--top", "5",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    # cProfile's cumulative-time table, then the throughput summary.
    assert "cumulative" in out and "ncalls" in out
    assert "== profile summary ==" in out
    assert "packets/sec" in out and "events/sec" in out
    assert "packets delivered" in out
    # The fast engine is packet-level: no flit accounting.
    assert "flits/sec" not in out


def test_cli_profile_detailed_engine(capsys):
    rc = main([
        "profile", "--engine", "detailed", "--policy", "NP-NB",
        "--boards", "2", "--nodes", "2", "--load", "0.3",
        "--warmup", "500", "--measure", "1000", "--top", "5",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "detailed engine" in out
    assert "packets/sec" in out and "events/sec" in out
    assert "flits routed" in out and "flits/sec" in out


def test_cli_profile_top_limits_table(capsys):
    rc = main([
        "profile", "--engine", "fast", "--policy", "NP-NB",
        "--boards", "2", "--nodes", "2", "--load", "0.2",
        "--warmup", "200", "--measure", "400", "--top", "1",
    ])
    assert rc == 0
    assert "List reduced" in capsys.readouterr().out


def test_cli_profile_rejects_unknown_engine(capsys):
    with pytest.raises(SystemExit) as exc:
        main([
            "profile", "--engine", "warp",
            "--boards", "2", "--nodes", "2",
        ])
    assert exc.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_cli_profile_detailed_rejects_dbr_policy(capsys):
    rc = main([
        "profile", "--engine", "detailed", "--policy", "P-B",
        "--boards", "2", "--nodes", "2",
        "--warmup", "200", "--measure", "400",
    ])
    assert rc == 2
    assert "cannot run DBR" in capsys.readouterr().err


def test_cli_profile_batch_engine(capsys):
    rc = main([
        "profile", "--engine", "batch", "--policy", "P-B",
        "--pattern", "complement",
        "--boards", "4", "--nodes", "4", "--load", "0.3",
        "--warmup", "500", "--measure", "1000", "--top", "5",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "batch engine" in out and "1-run slab" in out
    assert "== profile summary ==" in out
    # The batch tier is event-free by construction.
    import re

    assert re.search(r"events executed\s*: 0\b", out)


def test_cli_profile_batch_rejects_uncovered_point(capsys):
    rc = main([
        "profile", "--engine", "batch", "--policy", "P-B",
        "--pattern", "hotspot",
        "--boards", "4", "--nodes", "4", "--load", "0.3",
        "--warmup", "500", "--measure", "1000",
    ])
    assert rc == 2
    assert "does not cover" in capsys.readouterr().err


def test_cli_sweep_engine_batch(capsys):
    rc = main([
        "sweep", "--pattern", "complement", "--loads", "0.3",
        "--boards", "4", "--nodes", "4", "--engine", "batch",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "complement sweep" in out and "throughput" in out


def test_cli_sweep_verbose_prints_effective_shard_plan(capsys):
    rc = main([
        "sweep", "--pattern", "complement", "--loads", "0.3",
        "--boards", "4", "--nodes", "4", "--engine", "batch",
        "--jobs", "2", "--slab-shard", "1", "--verbose",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "shard plan:" in out
    assert "--slab-shard 1" in out and "jobs=2" in out
    # Without --verbose the plan stays out of the output.
    rc = main([
        "sweep", "--pattern", "complement", "--loads", "0.3",
        "--boards", "4", "--nodes", "4", "--engine", "batch",
    ])
    assert rc == 0
    assert "shard plan:" not in capsys.readouterr().out


def test_cli_sweep_shard_flags_parse():
    parser = build_parser()
    args = parser.parse_args(["sweep", "--slab-shard", "16", "-v"])
    assert args.slab_shard == 16
    assert args.verbose is True
    defaults = parser.parse_args(["sweep"])
    assert defaults.slab_shard is None
    assert defaults.verbose is False


def test_cli_cache_stats_by_engine(tmp_path, capsys):
    rc = main(["cache", "stats", "--by-engine", "--dir", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    for engine in ("fast", "detailed", "batch"):
        assert f"{engine} entries" in out
        assert f"{engine} bytes" in out
    # Without the flag the breakdown stays out of the table.
    assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
    assert "batch entries" not in capsys.readouterr().out


def test_cli_engine_flags_parse():
    parser = build_parser()
    assert parser.parse_args(["sweep"]).engine == "fast"
    assert parser.parse_args(["reproduce", "--engine", "batch"]).engine == "batch"
    assert parser.parse_args(
        ["submit", "--spool", "s", "--engine", "batch"]
    ).engine == "batch"
    with pytest.raises(SystemExit):
        parser.parse_args(["sweep", "--engine", "detailed"])
