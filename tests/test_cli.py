"""CLI tests (run through main() directly; output captured via capsys)."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["run", "--pattern", "complement", "--policy", "P-B"])
    assert args.command == "run"
    assert args.pattern == "complement"


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cli_rejects_unknown_pattern():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--pattern", "zipf"])


def test_cli_rwa(capsys):
    assert main(["rwa", "--boards", "4"]) == 0
    out = capsys.readouterr().out
    assert "λ3^(0)" in out and "λ1^(1)" in out


def test_cli_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "43.03" in out and "400 MHz" in out


def test_cli_run_small(capsys):
    rc = main([
        "run", "--pattern", "uniform", "--policy", "NP-NB",
        "--boards", "4", "--nodes", "4", "--load", "0.3",
        "--warmup", "2000", "--measure", "4000",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "throughput" in out and "power (mW)" in out


def test_cli_sweep_with_csv(tmp_path, capsys):
    csv_path = tmp_path / "out.csv"
    rc = main([
        "sweep", "--pattern", "uniform", "--loads", "0.3",
        "--boards", "4", "--nodes", "4", "--csv", str(csv_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "headline ratios" in out
    assert csv_path.exists()
