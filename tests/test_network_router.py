"""Integration tests for the cycle-accurate VC router + NIs."""

import pytest

from repro.network import (
    ERapidTopology,
    PacketFactory,
    Ring,
    SinkNI,
    SourceNI,
    VCRouter,
    ibi_routing,
    table_routing,
)
from repro.errors import ConfigurationError, TopologyError
from repro.sim import Simulator


def build_star(sim, n_nodes=4, n_vcs=2, buf_depth=2):
    """A single-router 'IBI' star: port i = node i (inject + eject)."""
    router = VCRouter(
        sim,
        n_ports=n_nodes,
        routing_fn=table_routing({d: d for d in range(n_nodes)}),
        n_vcs=n_vcs,
        buf_depth=buf_depth,
        name="star",
    )
    delivered = []
    sources = []
    sinks = []
    for p in range(n_nodes):
        sinks.append(SinkNI(sim, on_packet=delivered.append, name=f"sink{p}"))
        sinks[-1].attach(router, p)
        sources.append(SourceNI(sim, router, p, name=f"src{p}"))
    router.start()
    return router, sources, sinks, delivered


def test_single_packet_traverses_router():
    sim = Simulator()
    router, sources, sinks, delivered = build_star(sim)
    pkt = PacketFactory().make(src=0, dst=2, now=0.0)
    sources[0].send(pkt)
    sim.run(until=500)
    assert delivered == [pkt]
    assert pkt.delivered_at is not None
    assert pkt.latency > 0
    assert router.packets_routed == 1
    assert router.flits_routed == 8


def test_packet_to_every_destination():
    sim = Simulator()
    _, sources, _, delivered = build_star(sim, n_nodes=4)
    factory = PacketFactory()
    pkts = [factory.make(src=0, dst=d, now=0.0) for d in range(1, 4)]
    for p in pkts:
        sources[0].send(p)
    sim.run(until=2000)
    assert sorted(p.pid for p in delivered) == sorted(p.pid for p in pkts)


def test_all_to_one_contention_delivers_everything():
    """4 sources hammer one sink; all packets must still arrive (no loss)."""
    sim = Simulator()
    _, sources, sinks, delivered = build_star(sim, n_nodes=4)
    factory = PacketFactory()
    pkts = []
    for src in range(4):
        if src == 3:
            continue
        for _ in range(5):
            p = factory.make(src=src, dst=3, now=0.0)
            pkts.append(p)
            sources[src].send(p)
    sim.run(until=20_000)
    assert len(delivered) == len(pkts)
    assert sinks[3].packets_received == len(pkts)


def test_flits_of_a_packet_stay_in_order():
    sim = Simulator()
    _, sources, _, delivered = build_star(sim)
    order = []

    class OrderSink(SinkNI):
        def receive_flit(self, flit, port):
            order.append(flit.index)
            super().receive_flit(flit, port)

    # Rebuild node 1's sink with the recording subclass.
    sim2 = Simulator()
    router = VCRouter(
        sim2, n_ports=2, routing_fn=table_routing({0: 0, 1: 1}), n_vcs=2, buf_depth=2
    )
    sink = OrderSink(sim2, name="ordersink")
    sink.attach(router, 1)
    plain = SinkNI(sim2)
    plain.attach(router, 0)
    src = SourceNI(sim2, router, 0, name="src0")
    router.start()
    src.send(PacketFactory().make(src=0, dst=1, now=0.0))
    sim2.run(until=1000)
    assert order == list(range(8))


def test_zero_load_latency_components():
    """Zero-load latency = serialization + pipeline under wormhole overlap.

    8 flits x 4 cycles/flit = 32 cycles of serialization; wormhole
    pipelining overlaps the injection and ejection wires, so a lone packet
    arrives a small pipeline delay after its tail leaves the source — i.e.
    at least 32 cycles, well under 64.
    """
    sim = Simulator()
    _, sources, _, delivered = build_star(sim, buf_depth=8)
    pkt = PacketFactory().make(src=0, dst=1, now=0.0)
    sources[0].send(pkt)
    sim.run(until=500)
    assert delivered
    assert 32 <= pkt.latency <= 64


def test_deeper_buffers_do_not_lose_packets():
    sim = Simulator()
    _, sources, _, delivered = build_star(sim, buf_depth=8)
    factory = PacketFactory()
    for src in range(4):
        for dst in range(4):
            if src != dst:
                sources[src].send(factory.make(src=src, dst=dst, now=0.0))
    sim.run(until=20_000)
    assert len(delivered) == 12


def test_router_invalid_route_raises():
    sim = Simulator()
    router = VCRouter(
        sim, n_ports=2, routing_fn=lambda r, d: 99, n_vcs=1, buf_depth=2
    )
    sink = SinkNI(sim)
    sink.attach(router, 1)
    src = SourceNI(sim, router, 0)
    router.start()
    src.send(PacketFactory().make(src=0, dst=1, now=0.0))
    with pytest.raises(ConfigurationError):
        sim.run(until=100)


def test_router_validation():
    with pytest.raises(ConfigurationError):
        VCRouter(Simulator(), n_ports=0, routing_fn=lambda r, d: 0)


def test_table_routing_missing_dst():
    sim = Simulator()
    router = VCRouter(sim, n_ports=2, routing_fn=table_routing({}), n_vcs=1)
    with pytest.raises(ConfigurationError):
        router.routing_fn(router, 5)


# ----------------------------------------------------------------------
# Topology helpers
# ----------------------------------------------------------------------

def test_topology_r144_paper_example():
    topo = ERapidTopology(clusters=1, boards=4, nodes_per_board=4)
    assert topo.total_nodes == 16
    assert topo.wavelengths == 4
    assert topo.board_of(5) == 1 and topo.local_of(5) == 1
    assert topo.node_id(1, 1) == 5
    assert topo.nodes_on_board(3) == [12, 13, 14, 15]
    assert topo.is_local(0, 3) and not topo.is_local(0, 4)


def test_topology_64_node_eval_config():
    """§4: 64-node network = 8 boards x 8 nodes."""
    topo = ERapidTopology(boards=8, nodes_per_board=8)
    assert topo.total_nodes == 64
    assert len(list(topo.board_pairs())) == 8 * 7


def test_topology_validation():
    with pytest.raises(TopologyError):
        ERapidTopology(clusters=2)
    with pytest.raises(TopologyError):
        ERapidTopology(boards=1)
    with pytest.raises(TopologyError):
        ERapidTopology(nodes_per_board=0)
    topo = ERapidTopology()
    with pytest.raises(TopologyError):
        topo.board_of(16)
    with pytest.raises(TopologyError):
        topo.node_id(4, 0)
    with pytest.raises(TopologyError):
        topo.node_id(0, 4)


def test_ring_arithmetic():
    ring = Ring(4)
    assert ring.next_of(3) == 0
    assert ring.prev_of(0) == 3
    assert ring.distance(1, 3) == 2
    assert ring.distance(3, 1) == 2
    assert list(ring.walk(0)) == [1, 2, 3, 0]


def test_ring_validation():
    with pytest.raises(TopologyError):
        Ring(1)
    with pytest.raises(TopologyError):
        Ring(4).next_of(4)


def test_ibi_routing_local_and_remote():
    topo = ERapidTopology(boards=4, nodes_per_board=4)
    route = ibi_routing(topo, board=1, tx_port_of=lambda d: 4 + d)
    router = VCRouter(Simulator(), n_ports=8, routing_fn=route, n_vcs=1)
    # Local destination -> ejection port == local index.
    assert route(router, 5) == 1
    assert route(router, 7) == 3
    # Remote destination -> transmitter port.
    assert route(router, 0) == 4
    assert route(router, 14) == 7
