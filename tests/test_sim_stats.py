"""Unit + property tests for statistics accumulators and RNG streams."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MeasurementError
from repro.sim import Histogram, RngRegistry, Tally, TimeWeighted, geometric_gap
from repro.sim.stats import describe


# ----------------------------------------------------------------------
# Tally
# ----------------------------------------------------------------------

def test_tally_empty():
    t = Tally()
    assert t.count == 0 and t.mean == 0.0 and t.variance == 0.0


def test_tally_known_values():
    t = Tally()
    for x in [2.0, 4.0, 6.0]:
        t.add(x)
    assert t.mean == pytest.approx(4.0)
    assert t.variance == pytest.approx(4.0)
    assert t.min == 2.0 and t.max == 6.0 and t.total == 12.0


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
def test_tally_matches_numpy(xs):
    t = Tally()
    for x in xs:
        t.add(x)
    assert t.mean == pytest.approx(float(np.mean(xs)), rel=1e-9, abs=1e-6)
    if len(xs) > 1:
        assert t.variance == pytest.approx(float(np.var(xs, ddof=1)), rel=1e-6, abs=1e-4)


@given(
    st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50),
    st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50),
)
def test_tally_merge_equals_combined(xs, ys):
    a, b, c = Tally(), Tally(), Tally()
    for x in xs:
        a.add(x)
        c.add(x)
    for y in ys:
        b.add(y)
        c.add(y)
    a.merge(b)
    assert a.count == c.count
    assert a.mean == pytest.approx(c.mean, rel=1e-9, abs=1e-9)
    assert a.variance == pytest.approx(c.variance, rel=1e-6, abs=1e-6)


def test_tally_merge_empty_cases():
    a, b = Tally(), Tally()
    a.merge(b)
    assert a.count == 0
    b.add(5.0)
    a.merge(b)
    assert a.count == 1 and a.mean == 5.0


# ----------------------------------------------------------------------
# TimeWeighted
# ----------------------------------------------------------------------

def test_time_weighted_piecewise_constant():
    tw = TimeWeighted(0.0, 1.0)
    tw.update(10.0, 3.0)   # value 1 over [0,10)
    tw.update(20.0, 0.0)   # value 3 over [10,20)
    assert tw.average(20.0) == pytest.approx((1 * 10 + 3 * 10) / 20)


def test_time_weighted_window_reset():
    tw = TimeWeighted(0.0, 2.0)
    tw.update(10.0, 4.0)
    tw.reset_window(10.0)
    assert tw.window(20.0) == pytest.approx(4.0)
    assert tw.average(20.0) == pytest.approx((2 * 10 + 4 * 10) / 20)


def test_time_weighted_backwards_time_raises():
    tw = TimeWeighted(5.0, 0.0)
    with pytest.raises(MeasurementError):
        tw.update(4.0, 1.0)


def test_time_weighted_add_delta():
    tw = TimeWeighted(0.0, 0.0)
    tw.add(5.0, +2.0)
    tw.add(10.0, -1.0)
    assert tw.value == 1.0
    assert tw.average(10.0) == pytest.approx((0 * 5 + 2 * 5) / 10)


def test_time_weighted_zero_span_returns_value():
    tw = TimeWeighted(0.0, 7.0)
    assert tw.average(0.0) == 7.0
    assert tw.window(0.0) == 7.0


@given(
    st.lists(
        st.tuples(st.floats(0.001, 10.0), st.floats(0.0, 5.0)),
        min_size=1,
        max_size=40,
    )
)
def test_time_weighted_average_bounded_by_extremes(steps):
    """Property: the time-weighted average lies within [min, max] of values."""
    tw = TimeWeighted(0.0, steps[0][1])
    t = 0.0
    values = [steps[0][1]]
    for dt, v in steps:
        t += dt
        tw.update(t, v)
        values.append(v)
    avg = tw.average(t)
    assert min(values) - 1e-9 <= avg <= max(values) + 1e-9


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------

def test_histogram_bins_and_overflow():
    h = Histogram(0.0, 10.0, 5)
    for x in [0.5, 2.5, 2.6, 9.9, -1.0, 10.0]:
        h.add(x)
    assert h.counts == [1, 2, 0, 0, 1]
    assert h.underflow == 1 and h.overflow == 1
    assert h.n == 6


def test_histogram_percentile_monotone():
    h = Histogram(0.0, 100.0, 100)
    for x in range(100):
        h.add(x + 0.5)
    assert h.percentile(50) == pytest.approx(50.0, abs=1.5)
    assert h.percentile(10) <= h.percentile(90)


def test_histogram_percentile_bad_q():
    h = Histogram(0.0, 1.0, 2)
    with pytest.raises(MeasurementError):
        h.percentile(101)


def test_histogram_bad_spec():
    with pytest.raises(MeasurementError):
        Histogram(1.0, 0.0, 4)
    with pytest.raises(MeasurementError):
        Histogram(0.0, 1.0, 0)


def test_histogram_edges():
    h = Histogram(0.0, 1.0, 4)
    assert h.edges() == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])


def test_describe():
    d = describe([1.0, 2.0, 3.0])
    assert d["count"] == 3 and d["mean"] == pytest.approx(2.0)


# ----------------------------------------------------------------------
# RNG
# ----------------------------------------------------------------------

def test_rng_streams_reproducible():
    a = RngRegistry(seed=7).stream("node0")
    b = RngRegistry(seed=7).stream("node0")
    assert list(a.integers(0, 1000, 10)) == list(b.integers(0, 1000, 10))


def test_rng_streams_independent_by_name():
    reg = RngRegistry(seed=7)
    xs = list(reg.stream("node0").integers(0, 1_000_000, 8))
    ys = list(reg.stream("node1").integers(0, 1_000_000, 8))
    assert xs != ys


def test_rng_stream_cached():
    reg = RngRegistry(seed=1)
    assert reg.stream("x") is reg.stream("x")


def test_rng_spawn_differs_from_parent():
    reg = RngRegistry(seed=3)
    child = reg.spawn("trial0")
    xs = list(reg.stream("s").integers(0, 1_000_000, 8))
    ys = list(child.stream("s").integers(0, 1_000_000, 8))
    assert xs != ys


def test_rng_crc32_colliding_names_get_distinct_streams():
    """Regression: name keying must be injective, not hash-based.

    'l98cu' and 'pvdba' share a CRC32 (0x5304d385); under the old
    zlib.crc32-derived stream keys they would have drawn identical
    sequences.  SeedSequence spawn keys built from the name bytes keep
    them distinct.
    """
    import zlib

    a_name, b_name = "l98cu", "pvdba"
    assert zlib.crc32(a_name.encode()) == zlib.crc32(b_name.encode())
    reg = RngRegistry(seed=7)
    xs = list(reg.stream(a_name).integers(0, 1_000_000, 16))
    ys = list(reg.stream(b_name).integers(0, 1_000_000, 16))
    assert xs != ys


def test_rng_stream_and_spawn_domains_are_separated():
    """The same name used for stream() and spawn() must not alias state."""
    reg = RngRegistry(seed=7)
    stream_draws = list(reg.stream("trial0").integers(0, 1_000_000, 8))
    child = reg.spawn("trial0")
    child_draws = list(child.stream("trial0").integers(0, 1_000_000, 8))
    assert stream_draws != child_draws


def test_geometric_gap_edge_cases():
    rng = RngRegistry(seed=0).stream("g")
    assert geometric_gap(rng, 0.0) >= 1 << 29
    assert geometric_gap(rng, 1.0) == 1
    assert geometric_gap(rng, 1.5) == 1


@settings(max_examples=20)
@given(st.floats(0.01, 0.99))
def test_geometric_gap_mean_close_to_inverse_p(p):
    """Property: mean inter-arrival ~= 1/p (law of large numbers, loose)."""
    rng = np.random.Generator(np.random.PCG64(1234))
    n = 4000
    gaps = [geometric_gap(rng, p) for _ in range(n)]
    mean = sum(gaps) / n
    assert mean == pytest.approx(1.0 / p, rel=0.15)
    assert min(gaps) >= 1
