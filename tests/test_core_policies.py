"""Unit + property tests for policies, config, and the pure DPM/DBR logic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    ControlParams,
    DestDemand,
    DpmAction,
    ERapidConfig,
    LinkWindowStats,
    NP_B,
    NP_NB,
    P_B,
    P_NB,
    ReconfigPolicy,
    RouterParams,
    Thresholds,
    WavelengthState,
    classify,
    dbr_plan,
    dpm_decide,
    make_policy,
)
from repro.errors import ConfigurationError
from repro.network.topology import ERapidTopology
from repro.optics.rwa import StaticRWA


# ----------------------------------------------------------------------
# Policies / thresholds
# ----------------------------------------------------------------------

def test_four_paper_configurations():
    assert not NP_NB.dpm and not NP_NB.dbr
    assert P_NB.dpm and not P_NB.dbr
    assert not NP_B.dpm and NP_B.dbr
    assert P_B.dpm and P_B.dbr
    assert P_B.thresholds.l_min == 0.7 and P_B.thresholds.l_max == 0.9
    assert P_B.thresholds.b_max == 0.3
    assert P_NB.thresholds.b_max == 0.0 and P_NB.thresholds.l_max == 0.7


def test_make_policy():
    assert make_policy("P-B") is P_B
    with pytest.raises(ConfigurationError):
        make_policy("QP-B")


def test_threshold_validation():
    with pytest.raises(ConfigurationError):
        Thresholds(l_min=0.9, l_max=0.7)
    with pytest.raises(ConfigurationError):
        Thresholds(b_min=0.5, b_max=0.3)
    with pytest.raises(ConfigurationError):
        Thresholds(l_min=-0.1)
    with pytest.raises(ConfigurationError):
        ReconfigPolicy("x", dpm=True, dbr=True, max_grants_per_dest=-1)


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------

def test_router_params_table1():
    r = RouterParams()
    assert r.port_gbps == pytest.approx(6.4)
    assert r.flits_per_packet == 8
    assert r.packet_serialization_cycles == 32
    assert r.pipeline_cycles == 4


def test_control_params_latencies():
    c = ControlParams()
    assert c.window_cycles == 2000
    assert c.power_cycle_latency(8) == 9 * 4
    stages = c.dbr_stage_latencies(8, 8)
    assert stages["link_request"] == 36
    assert stages["board_request"] == 128
    assert c.dbr_cycle_latency(8, 8) == 36 + 128 + 1 + 128 + 36


def test_config_with_policy_and_describe():
    cfg = ERapidConfig()
    cfg2 = cfg.with_policy(P_B)
    assert cfg.policy is NP_NB and cfg2.policy is P_B
    assert "P-B" in cfg2.describe()


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ERapidConfig(tx_queue_capacity=0)
    with pytest.raises(ConfigurationError):
        ERapidConfig(wake_cycles=-1)
    with pytest.raises(ConfigurationError):
        RouterParams(channel_bits=0)
    with pytest.raises(ConfigurationError):
        ControlParams(window_cycles=0)


# ----------------------------------------------------------------------
# DPM decision rule (§3.1)
# ----------------------------------------------------------------------

TH = P_B.thresholds  # l_min=0.7 l_max=0.9 b_max=0.3


def _stats(link, buf, empty=False):
    return LinkWindowStats(link_util=link, buffer_util=buf, queue_empty=empty)


def test_dpm_sleep_on_fully_idle():
    assert dpm_decide(_stats(0.0, 0.0, empty=True), TH, False, False) is DpmAction.SLEEP


def test_dpm_no_sleep_with_queued_work():
    # Zero link util but packets queued (e.g. the link was stalled): keep it.
    assert dpm_decide(_stats(0.0, 0.2, empty=False), TH, False, False) is DpmAction.DOWN


def test_dpm_scale_down_below_lmin():
    assert dpm_decide(_stats(0.5, 0.0, True), TH, False, False) is DpmAction.DOWN


def test_dpm_hold_at_lowest():
    assert dpm_decide(_stats(0.5, 0.0, True), TH, True, False) is DpmAction.HOLD


def test_dpm_up_requires_buffer_when_bmax_positive():
    """§3.1: 'The bit rate is scaled up only if the link threshold exceeds
    both L_max and B_max.'"""
    assert dpm_decide(_stats(0.95, 0.1, False), TH, False, False) is DpmAction.HOLD
    assert dpm_decide(_stats(0.95, 0.5, False), TH, False, False) is DpmAction.UP


def test_dpm_up_on_link_alone_when_bmax_zero():
    """P-NB's conservative variant: B_max = 0 -> link threshold alone."""
    th = P_NB.thresholds
    assert dpm_decide(_stats(0.8, 0.0, False), th, False, False) is DpmAction.UP


def test_dpm_hold_at_highest():
    assert dpm_decide(_stats(0.95, 0.5, False), TH, False, True) is DpmAction.HOLD


def test_dpm_hold_in_band():
    assert dpm_decide(_stats(0.8, 0.5, False), TH, False, False) is DpmAction.HOLD


@given(
    st.floats(0.0, 1.0),
    st.floats(0.0, 1.0),
    st.booleans(),
    st.booleans(),
    st.booleans(),
)
def test_dpm_total_function(link, buf, empty, lo, hi):
    """Property: every stats combination yields exactly one legal action,
    and the ladder ends never step past themselves."""
    action = dpm_decide(_stats(link, buf, empty), TH, lo, hi)
    assert action in DpmAction
    if lo:
        assert action is not DpmAction.DOWN
    if hi:
        assert action is not DpmAction.UP


def test_link_stats_validation():
    with pytest.raises(ConfigurationError):
        LinkWindowStats(1.5, 0.0, True)
    with pytest.raises(ConfigurationError):
        LinkWindowStats(0.0, -0.1, True)


# ----------------------------------------------------------------------
# DBR plan (§3.2)
# ----------------------------------------------------------------------

RWA8 = StaticRWA(8)


def test_classify_three_way():
    th = Thresholds(b_min=0.0, b_max=0.3)
    assert classify(0.0, th) == "under"
    assert classify(0.2, th) == "normal"
    assert classify(0.5, th) == "over"


def _wavelengths_static(dest, boards=8, util_of=None, empty_of=None):
    """Static ownership toward ``dest`` with per-owner stats."""
    util_of = util_of or {}
    empty_of = empty_of or {}
    out = []
    rwa = StaticRWA(boards)
    for w in range(boards):
        owner = rwa.default_owner(dest, w)
        if owner == dest:  # λ0 self-loop: dark
            out.append(WavelengthState(w, None, 0.0, True))
        else:
            out.append(
                WavelengthState(
                    w, owner, util_of.get(owner, 0.0), empty_of.get(owner, True)
                )
            )
    return out


def _demands(dest, boards=8, util_of=None, empty_of=None, channels_of=None):
    util_of = util_of or {}
    empty_of = empty_of or {}
    channels_of = channels_of or {}
    return [
        DestDemand(
            s,
            util_of.get(s, 0.0),
            empty_of.get(s, True),
            channels_of.get(s, 1),
        )
        for s in range(boards)
        if s != dest
    ]


def test_dbr_no_plan_when_nobody_needy():
    plan = dbr_plan(0, _wavelengths_static(0), _demands(0), P_B.thresholds, RWA8)
    assert plan == []


def test_dbr_complement_grants_all_idle_channels():
    """Complement toward board 7: only board 0 sends; all other incoming
    wavelengths (and the dark λ0) go to board 0."""
    dest = 7
    util = {0: 0.9}
    empty = {0: False}
    wl = _wavelengths_static(dest, util_of=util, empty_of=empty)
    dm = _demands(dest, util_of=util, empty_of=empty)
    plan = dbr_plan(dest, wl, dm, P_B.thresholds, RWA8)
    # 8 wavelengths: board 0's own stays, the other 7 (6 donors + dark λ0)
    # are granted to board 0.
    assert len(plan) == 7
    assert all(owner == 0 for _, owner in plan)
    granted = {w for w, _ in plan}
    own_w = RWA8.wavelength_for(0, dest)
    assert own_w not in granted


def test_dbr_never_strips_needy_board():
    dest = 0
    util = {1: 0.9, 2: 0.8}
    empty = {1: False, 2: False}
    wl = _wavelengths_static(dest, util_of=util, empty_of=empty)
    dm = _demands(dest, util_of=util, empty_of=empty)
    plan = dbr_plan(dest, wl, dm, P_B.thresholds, RWA8)
    stripped = {RWA8.default_owner(dest, w) for w, _ in plan}
    assert 1 not in stripped and 2 not in stripped


def test_dbr_zero_channel_board_with_traffic_is_needy():
    """A board that donated its last channel but has packets queued gets a
    grant even though its Buffer_util is still low."""
    dest = 0
    wl = _wavelengths_static(dest)
    # Board 3 has queued traffic, zero channels, low util.
    dm = _demands(dest, util_of={3: 0.05}, empty_of={3: False},
                  channels_of={3: 0})
    plan = dbr_plan(dest, wl, dm, P_B.thresholds, RWA8)
    assert any(owner == 3 for _, owner in plan)


def test_dbr_prefers_returning_static_owner():
    """A donor wavelength whose static owner is needy goes back to it."""
    dest = 0
    w3 = RWA8.wavelength_for(3, dest)
    # Board 3's static wavelength currently owned by board 5 (idle);
    # board 3 is congested.
    wl = []
    for ws in _wavelengths_static(dest, util_of={3: 0.9}, empty_of={3: False}):
        if ws.wavelength == w3:
            wl.append(WavelengthState(w3, 5, 0.0, True))
        else:
            wl.append(ws)
    dm = _demands(dest, util_of={3: 0.9}, empty_of={3: False})
    plan = dbr_plan(dest, wl, dm, P_B.thresholds, RWA8)
    assert (w3, 3) in plan


def test_dbr_round_robin_across_needy():
    dest = 0
    util = {1: 0.9, 2: 0.9}
    empty = {1: False, 2: False}
    wl = _wavelengths_static(dest, util_of=util, empty_of=empty)
    dm = _demands(dest, util_of=util, empty_of=empty)
    plan = dbr_plan(dest, wl, dm, P_B.thresholds, RWA8)
    receivers = [owner for _, owner in plan]
    # Both needy boards receive something; donated set split between them.
    assert set(receivers) == {1, 2}
    assert abs(receivers.count(1) - receivers.count(2)) <= 1


def test_dbr_max_grants_cap():
    dest = 7
    util = {0: 0.9}
    empty = {0: False}
    wl = _wavelengths_static(dest, util_of=util, empty_of=empty)
    dm = _demands(dest, util_of=util, empty_of=empty)
    plan = dbr_plan(dest, wl, dm, P_B.thresholds, RWA8, max_grants=2)
    assert len(plan) == 2
    assert dbr_plan(dest, wl, dm, P_B.thresholds, RWA8, max_grants=0) == []


def test_dbr_self_demand_rejected():
    with pytest.raises(ConfigurationError):
        dbr_plan(
            0,
            _wavelengths_static(0),
            [DestDemand(0, 0.5, False, 1)],
            P_B.thresholds,
            RWA8,
        )


@given(st.integers(0, 7), st.data())
def test_dbr_plan_properties(dest, data):
    """Property: plans only grant to boards != dest, never grant a
    wavelength to its current owner, and never exceed W grants."""
    boards = 8
    util_of = {
        s: data.draw(st.sampled_from([0.0, 0.1, 0.5, 0.9]))
        for s in range(boards) if s != dest
    }
    empty_of = {s: util_of[s] == 0.0 for s in util_of}
    wl = _wavelengths_static(dest, util_of=util_of, empty_of=empty_of)
    dm = _demands(dest, util_of=util_of, empty_of=empty_of)
    plan = dbr_plan(dest, wl, dm, P_B.thresholds, RWA8)
    assert len(plan) <= boards
    owners_before = {ws.wavelength: ws.owner for ws in wl}
    seen = set()
    for w, new_owner in plan:
        assert new_owner != dest
        assert new_owner != owners_before[w]
        assert w not in seen  # each wavelength granted at most once
        seen.add(w)
