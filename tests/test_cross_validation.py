"""Cross-validation: detailed (flit-level) vs fast (event-driven) engine.

DESIGN.md commits to the two engines agreeing on throughput and latency for
the static NP-NB configuration on small systems — this is the evidence that
the fast engine's electrical-path abstractions (serialization, pipeline,
contention) are sound before it is trusted with the full sweeps.
"""

import pytest

from repro.core.config import ERapidConfig
from repro.core.detailed import DetailedEngine
from repro.core.engine import FastEngine
from repro.core.policies import P_B
from repro.errors import ConfigurationError
from repro.metrics.collector import MeasurementPlan
from repro.network.topology import ERapidTopology
from repro.traffic import WorkloadSpec

TOPO = ERapidTopology(boards=4, nodes_per_board=4)
CFG = ERapidConfig(topology=TOPO)
PLAN = MeasurementPlan(warmup=2000, measure=5000, drain_limit=10000)


def both(pattern, load, seed=5):
    wl = WorkloadSpec(pattern=pattern, load=load, seed=seed)
    detailed = DetailedEngine(CFG, wl, PLAN).run()
    fast = FastEngine(CFG, wl, PLAN).run()
    return detailed, fast


@pytest.mark.parametrize("load", [0.2, 0.4])
def test_uniform_throughput_agreement(load):
    detailed, fast = both("uniform", load)
    assert fast.throughput == pytest.approx(detailed.throughput, rel=0.05)


@pytest.mark.parametrize("load", [0.2, 0.4])
def test_uniform_latency_agreement(load):
    """Latency within 30 %: the fast engine aggregates flit-level
    contention into queue servers, so some divergence is expected."""
    detailed, fast = both("uniform", load)
    assert fast.avg_latency == pytest.approx(detailed.avg_latency, rel=0.3)


def test_complement_saturation_agrees():
    """Both engines must saturate static complement at the single-channel
    service rate (the headline failure mode DBR exists to fix)."""
    detailed, fast = both("complement", 0.8)
    assert fast.throughput == pytest.approx(detailed.throughput, rel=0.1)
    # Single 5 Gbps channel shared by 4 nodes.
    assert detailed.throughput == pytest.approx(1 / 40.96 / 4, rel=0.15)


def test_permutation_low_load_latency():
    detailed, fast = both("perfect_shuffle", 0.2)
    assert fast.avg_latency == pytest.approx(detailed.avg_latency, rel=0.3)
    assert fast.throughput == pytest.approx(detailed.throughput, rel=0.05)


def test_detailed_engine_rejects_reconfig_policies():
    with pytest.raises(ConfigurationError):
        DetailedEngine(CFG.with_policy(P_B), WorkloadSpec(), PLAN)


def test_detailed_engine_conserves_labeled_packets():
    detailed, _ = both("uniform", 0.3)
    assert detailed.labeled_delivered == detailed.labeled_injected
    assert detailed.labeled_injected > 0


def test_detailed_zero_load_latency_physics():
    """A lone packet cannot beat serialization floors in either engine."""
    detailed, fast = both("uniform", 0.05)
    for r in (detailed, fast):
        assert r.avg_latency > 80.0


# ----------------------------------------------------------------------
# DPM cross-validation (the detailed engine's flit-level link controllers)
# ----------------------------------------------------------------------

from repro.core.policies import P_NB  # noqa: E402


@pytest.mark.parametrize("load", [0.15, 0.4])
def test_dpm_agrees_across_engines(load):
    """P-NB on both engines: power within 5 %, transition counts within one
    (window boundaries and the decision rule are deterministic, but a
    window whose utilization sits exactly at a threshold may resolve
    differently under flit-level vs packet-level service timing)."""
    cfg = CFG.with_policy(P_NB)
    plan = MeasurementPlan(warmup=6000, measure=8000, drain_limit=10000)
    wl = WorkloadSpec(pattern="uniform", load=load, seed=5)
    detailed = DetailedEngine(cfg, wl, plan)
    rd = detailed.run()
    fast = FastEngine(cfg, wl, plan)
    rf = fast.run()
    assert rd.power_mw == pytest.approx(rf.power_mw, rel=0.05)
    assert abs(rd.extra["dpm_transitions"] - rf.extra["dpm_transitions"]) <= 1
    assert rd.throughput == pytest.approx(rf.throughput, rel=0.05)


@pytest.mark.parametrize("load", [0.3, 0.5])
def test_dpm_mid_threshold_band_agrees(load):
    """A widened (l_min, l_max) band that brackets the operating
    utilization: every window's decision lands in the HOLD region, so the
    two engines must converge on the *same* power level and transition
    count — the spot most sensitive to service-timing differences, since
    one window straddling a threshold would fork the level ladders."""
    from repro.core.policies import ReconfigPolicy, Thresholds

    mid = ReconfigPolicy(
        "P-NB-mid", dpm=True, dbr=False,
        thresholds=Thresholds(l_min=0.2, l_max=0.8, b_max=0.0),
    )
    cfg = CFG.with_policy(mid)
    plan = MeasurementPlan(warmup=6000, measure=8000, drain_limit=10000)
    wl = WorkloadSpec(pattern="uniform", load=load, seed=5)
    rd = DetailedEngine(cfg, wl, plan).run()
    rf = FastEngine(cfg, wl, plan).run()
    assert rd.power_mw == pytest.approx(rf.power_mw, rel=0.02)
    assert abs(rd.extra["dpm_transitions"] - rf.extra["dpm_transitions"]) <= 1
    assert rd.throughput == pytest.approx(rf.throughput, rel=0.05)


def test_dpm_saves_power_in_detailed_engine():
    """Flit-level P-NB vs NP-NB at low load: deep savings, same delivery."""
    plan = MeasurementPlan(warmup=6000, measure=8000, drain_limit=10000)
    wl = WorkloadSpec(pattern="uniform", load=0.15, seed=5)
    static = DetailedEngine(CFG, wl, plan).run()
    power = DetailedEngine(CFG.with_policy(P_NB), wl, plan).run()
    assert power.power_mw < 0.5 * static.power_mw
    assert power.throughput == pytest.approx(static.throughput, rel=0.03)


def test_detailed_engine_still_rejects_dbr():
    from repro.core.policies import NP_B

    with pytest.raises(ConfigurationError):
        DetailedEngine(CFG.with_policy(NP_B), WorkloadSpec(), PLAN)


# ----------------------------------------------------------------------
# Full 64-node platform: R(1, 8, 8), the paper's evaluation configuration
# ----------------------------------------------------------------------
# The cycle-synchronous detailed engine makes flit-level runs of the whole
# 64-node platform affordable in CI, so the cross-validation evidence now
# covers the same configuration the fast engine's sweeps report on.

TOPO64 = ERapidTopology(boards=8, nodes_per_board=8)
CFG64 = ERapidConfig(topology=TOPO64)
PLAN64 = MeasurementPlan(warmup=2000, measure=5000, drain_limit=10000)


def both64(pattern, load, cfg=CFG64, seed=5):
    wl = WorkloadSpec(pattern=pattern, load=load, seed=seed)
    detailed = DetailedEngine(cfg, wl, PLAN64).run()
    fast = FastEngine(cfg, wl, PLAN64).run()
    return detailed, fast


@pytest.mark.parametrize("load", [0.2, 0.4, 0.55])
def test_64node_throughput_and_power_agreement(load):
    detailed, fast = both64("uniform", load)
    assert fast.throughput == pytest.approx(detailed.throughput, rel=0.05)
    assert fast.power_mw == pytest.approx(detailed.power_mw, rel=0.05)


@pytest.mark.parametrize("load", [0.2, 0.4])
def test_64node_latency_agreement(load):
    """Same 30 % band as the 16-node suite: the fast engine folds 8-port
    switch contention into queue servers, which diverges most as load
    approaches saturation (hence no latency check at 0.55)."""
    detailed, fast = both64("uniform", load)
    assert fast.avg_latency == pytest.approx(detailed.avg_latency, rel=0.3)


def test_64node_dpm_agreement_low_load():
    """Lock-step P-NB windows at low load: every one of the 56 remote
    links must walk the same level ladder in both engines."""
    detailed, fast = both64("uniform", 0.15, cfg=CFG64.with_policy(P_NB))
    assert fast.power_mw == pytest.approx(detailed.power_mw, rel=0.05)
    assert abs(detailed.extra["dpm_transitions"]
               - fast.extra["dpm_transitions"]) <= 1
    assert fast.throughput == pytest.approx(detailed.throughput, rel=0.05)


def test_64node_dpm_agreement_mid_load():
    """At mid load some windows sit near the utilization thresholds, where
    flit-level vs packet-level service timing legitimately resolves a
    window differently, forking that link's ladder.  Power must still
    agree tightly; transitions may differ by at most half a transition per
    remote link on average."""
    detailed, fast = both64("uniform", 0.4, cfg=CFG64.with_policy(P_NB))
    assert fast.power_mw == pytest.approx(detailed.power_mw, rel=0.05)
    n_links = TOPO64.boards * (TOPO64.boards - 1)
    assert abs(detailed.extra["dpm_transitions"]
               - fast.extra["dpm_transitions"]) <= 0.5 * n_links
    assert fast.throughput == pytest.approx(detailed.throughput, rel=0.05)
