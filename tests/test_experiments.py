"""Integration tests for the experiment harness (small/fast configs)."""

import math

import pytest

from repro.baselines import run_electrical_baseline
from repro.errors import ConfigurationError, MeasurementError
from repro.experiments import (
    FigurePanel,
    SweepSpec,
    render_table1,
    run_fig3,
    render_fig3,
    sweep_rows,
    table1_checks,
    write_csv,
    read_csv,
)
from repro.metrics.collector import MeasurementPlan
from repro.traffic import WorkloadSpec

SMALL_PLAN = MeasurementPlan(warmup=6000, measure=6000, drain_limit=8000)


@pytest.fixture(scope="module")
def complement_panel():
    spec = SweepSpec(
        pattern="complement",
        loads=(0.2, 0.7),
        boards=4,
        nodes_per_board=4,
        plan=SMALL_PLAN,
    )
    return FigurePanel.run(spec)


# ----------------------------------------------------------------------
# Sweep / panel
# ----------------------------------------------------------------------

def test_sweep_covers_policy_load_matrix(complement_panel):
    assert set(complement_panel.results) == {"NP-NB", "P-NB", "NP-B", "P-B"}
    for runs in complement_panel.results.values():
        assert len(runs) == 2


def test_sweep_shape_matches_paper(complement_panel):
    """At high load the bandwidth-reconfigured corners must beat the
    static ones by a multiple (the Fig. 5 complement story)."""
    res = complement_panel.results
    hi = 1  # index of load 0.7
    assert res["NP-B"][hi].throughput > 1.8 * res["NP-NB"][hi].throughput
    assert res["P-B"][hi].throughput > 1.8 * res["NP-NB"][hi].throughput
    # And consume a multiple of the static power while doing it.
    assert res["NP-B"][hi].power_mw > 1.5 * res["NP-NB"][hi].power_mw


def test_panel_series_nan_for_saturated_latency(complement_panel):
    series = complement_panel.series("avg_latency")
    # Static complement at 0.7 load: saturated -> some labeled packets do
    # come back, so just verify the series is well-formed.
    for values in series.values():
        assert len(values) == 2


def test_panel_render_contains_charts_and_ratios(complement_panel):
    text = complement_panel.render()
    assert "throughput [pkt/node/cyc] vs load" in text
    assert "headline ratios" in text
    assert "NP-NB" in text and "P-B" in text


def test_sweep_spec_validation():
    with pytest.raises(ConfigurationError):
        SweepSpec(loads=())
    with pytest.raises(ConfigurationError):
        SweepSpec(policies=("X-Y",))


# ----------------------------------------------------------------------
# CSV round trip
# ----------------------------------------------------------------------

def test_csv_round_trip(tmp_path, complement_panel):
    rows = sweep_rows(complement_panel.results)
    path = write_csv(tmp_path / "sweep.csv", rows)
    back = read_csv(path)
    assert len(back) == len(rows) == 8
    assert {r["policy"] for r in back} == {"NP-NB", "P-NB", "NP-B", "P-B"}
    assert float(back[0]["throughput"]) > 0


def test_csv_empty_rejected(tmp_path):
    with pytest.raises(MeasurementError):
        write_csv(tmp_path / "x.csv", [])


# ----------------------------------------------------------------------
# Table 1 / Fig 3
# ----------------------------------------------------------------------

def test_table1_renders_and_checks():
    table1_checks()
    text = render_table1()
    assert "6.4 Gbps" in text
    assert "43.03" in text and "8.6" in text and "26" in text
    assert "vcsel_driver" in text and "cdr" in text


def test_fig3_policies_differ():
    res = run_fig3(boards=4, nodes_per_board=4, horizon=16000, sample_period=1000)
    assert set(res) == {"NP-NB", "P-NB", "NP-B", "P-B"}
    # NP-NB never leaves the top level.
    assert all(s.level_name == "P_high" for s in res["NP-NB"].samples)
    # P-NB visits a lower level during the low-traffic phase.
    assert any(s.level_name != "P_high" for s in res["P-NB"].samples)
    # Bandwidth-reconfigured corners grow the hot pair's channel count.
    assert max(res["NP-B"].pair_channels) > 1
    assert max(res["P-B"].pair_channels) > 1
    # Static corners never do.
    assert max(res["NP-NB"].pair_channels) == 1
    text = render_fig3(res)
    assert "Figure 3" in text and "P_high" in text


# ----------------------------------------------------------------------
# Electrical baseline
# ----------------------------------------------------------------------

def test_electrical_baseline_runs_and_costs_more_per_bit():
    """Load normalizes to each plane's own capacity (6.4 vs 5 Gbps), so the
    fair comparison is energy per delivered packet: the electrical plane's
    ~13.4 pJ/bit must exceed the optical plane's 8.6 pJ/bit."""
    wl = WorkloadSpec(pattern="uniform", load=0.4, seed=2)
    electrical = run_electrical_baseline(
        wl, plan=SMALL_PLAN, boards=4, nodes_per_board=4
    )
    from repro.core import ERapidSystem

    optical = ERapidSystem.build(boards=4, nodes_per_board=4, policy="NP-NB").run(
        wl, SMALL_PLAN
    )
    assert electrical.acceptance > 0.9
    assert optical.acceptance > 0.9
    mw_per_thr_e = electrical.power_mw / electrical.throughput
    mw_per_thr_o = optical.power_mw / optical.throughput
    assert mw_per_thr_e > 1.2 * mw_per_thr_o


def test_electrical_baseline_is_static():
    wl = WorkloadSpec(pattern="complement", load=0.7, seed=2)
    r = run_electrical_baseline(wl, plan=SMALL_PLAN, boards=4, nodes_per_board=4)
    assert r.extra["grants"] == 0
    assert r.extra["dpm_transitions"] == 0
