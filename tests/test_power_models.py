"""Unit + property tests for the power models (Table 1 anchors included)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MeasurementError, PowerModelError
from repro.power import (
    ComponentPower,
    EnergyAccountant,
    LinkPowerModel,
    PowerLevel,
    PowerLevelTable,
    TABLE1_LEVELS,
    TransitionModel,
)


# ----------------------------------------------------------------------
# Component model
# ----------------------------------------------------------------------

def test_reference_point_matches_table1_total():
    """At 5 Gbps / 0.9 V the component sum is ~43 mW (Table 1: 43.03)."""
    model = ComponentPower()
    assert model.link_mw(0.9, 5.0) == pytest.approx(43.30, abs=0.05)


def test_reference_components_individual():
    model = ComponentPower()
    b = model.breakdown_mw(0.9, 5.0)
    assert b["vcsel_driver"] == pytest.approx(1.23)
    assert b["tia"] == pytest.approx(25.02)
    assert b["cdr"] == pytest.approx(17.05)
    assert b["vcsel"] == pytest.approx(0.0015)
    assert b["photodetector"] == pytest.approx(0.0014)


def test_low_level_scaling_lands_on_paper_value():
    """The scaling laws applied to (0.45 V, 2.5 Gbps) give ~8.6 mW — the
    published P_low total."""
    model = ComponentPower()
    assert model.link_mw(0.45, 2.5) == pytest.approx(8.6, abs=0.15)


def test_transmitter_receiver_split():
    model = ComponentPower()
    tx = model.transmitter_mw(0.9, 5.0)
    rx = model.receiver_mw(0.9, 5.0)
    assert tx == pytest.approx(1.2315, abs=1e-3)
    assert rx == pytest.approx(42.07, abs=0.01)
    assert tx + rx == pytest.approx(model.link_mw(0.9, 5.0))


@given(st.floats(0.2, 1.2), st.floats(1.0, 10.0))
def test_component_power_monotone_in_vdd_and_rate(vdd, br):
    """Property: raising V_DD or bit rate never lowers any component power."""
    model = ComponentPower()
    base = model.breakdown_mw(vdd, br)
    up_v = model.breakdown_mw(vdd * 1.1, br)
    up_b = model.breakdown_mw(vdd, br * 1.1)
    for name in base:
        assert up_v[name] >= base[name] - 1e-12
        assert up_b[name] >= base[name] - 1e-12


def test_component_model_validation():
    model = ComponentPower()
    with pytest.raises(PowerModelError):
        model.component_mw("flux_capacitor", 0.9, 5.0)
    with pytest.raises(PowerModelError):
        model.component_mw("tia", 0.0, 5.0)
    with pytest.raises(PowerModelError):
        model.component_mw("tia", 0.9, -1.0)
    with pytest.raises(PowerModelError):
        ComponentPower(reference_vdd=0.0)


# ----------------------------------------------------------------------
# Power levels
# ----------------------------------------------------------------------

def test_table1_levels_exact():
    low, mid, high = TABLE1_LEVELS
    assert (low.bit_rate_gbps, low.vdd, low.link_power_mw) == (2.5, 0.45, 8.6)
    assert (mid.bit_rate_gbps, mid.vdd, mid.link_power_mw) == (3.3, 0.60, 26.0)
    assert (high.bit_rate_gbps, high.vdd, high.link_power_mw) == (5.0, 0.90, 43.03)


def test_level_table_navigation():
    table = PowerLevelTable()
    low, mid, high = table.levels
    assert table.lowest is low and table.highest is high
    assert table.up(low) is mid and table.up(high) is high  # saturates
    assert table.down(mid) is low and table.down(low) is low
    assert table.steps_between(low, high) == 2
    assert table.index_of(mid) == 1


def test_level_table_validation():
    with pytest.raises(PowerModelError):
        PowerLevelTable([])
    with pytest.raises(PowerModelError):
        PowerLevelTable(
            [PowerLevel("a", 5.0, 0.9, 43.0), PowerLevel("b", 2.5, 0.45, 8.6)]
        )
    with pytest.raises(PowerModelError):
        PowerLevel("bad", -1.0, 0.9, 10.0)
    table = PowerLevelTable()
    with pytest.raises(PowerModelError):
        table.index_of(PowerLevel("alien", 7.0, 1.0, 50.0))


@given(st.integers(2, 10))
def test_synthesized_levels_monotone(n):
    """Property: synthesized ladders rise monotonically in rate, V and power,
    pinned to the Table-1 extremes."""
    table = PowerLevelTable.synthesize(n)
    assert len(table) == n
    rates = [l.bit_rate_gbps for l in table.levels]
    powers = [l.link_power_mw for l in table.levels]
    vdds = [l.vdd for l in table.levels]
    assert rates == sorted(rates)
    assert powers == sorted(powers)
    assert vdds == sorted(vdds)
    assert rates[0] == pytest.approx(2.5) and rates[-1] == pytest.approx(5.0)
    assert powers[-1] == pytest.approx(43.03, abs=0.01)


def test_synthesize_needs_two():
    with pytest.raises(PowerModelError):
        PowerLevelTable.synthesize(1)


# ----------------------------------------------------------------------
# Transitions
# ----------------------------------------------------------------------

def test_transition_stall_matches_paper():
    """65-cycle conservative disable per adjacent level; 0 when unchanged."""
    table = PowerLevelTable()
    tm = TransitionModel()
    low, mid, high = table.levels
    assert tm.stall_cycles(table, low, low) == 0
    assert tm.stall_cycles(table, low, mid) == 65
    assert tm.stall_cycles(table, mid, low) == 65
    assert tm.stall_cycles(table, low, high) == 130
    assert tm.receiver_relock_cycles() == 65


def test_transition_validation():
    with pytest.raises(PowerModelError):
        TransitionModel(frequency_relock_cycles=-1)


# ----------------------------------------------------------------------
# Link power accounting
# ----------------------------------------------------------------------

def test_link_power_off_is_zero():
    lp = LinkPowerModel()
    high = TABLE1_LEVELS[2]
    assert lp.instantaneous_mw(False, high, True) == 0.0
    assert lp.average_mw(False, high, 0.9) == 0.0


def test_link_power_busy_is_level_power():
    lp = LinkPowerModel()
    high = TABLE1_LEVELS[2]
    assert lp.instantaneous_mw(True, high, True) == pytest.approx(43.03)


def test_link_power_idle_is_fractional():
    lp = LinkPowerModel(idle_fraction=0.1)
    high = TABLE1_LEVELS[2]
    assert lp.instantaneous_mw(True, high, False) == pytest.approx(4.303)


def test_link_average_interpolates():
    lp = LinkPowerModel(idle_fraction=0.0)
    high = TABLE1_LEVELS[2]
    assert lp.average_mw(True, high, 0.5) == pytest.approx(43.03 / 2)


@given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
def test_link_average_bounded(idle_frac, util):
    lp = LinkPowerModel(idle_fraction=idle_frac)
    level = TABLE1_LEVELS[1]
    avg = lp.average_mw(True, level, util)
    assert 0.0 <= avg <= level.link_power_mw + 1e-9


def test_lower_level_at_double_util_saves_power():
    """The DPM premise: serving the same bits at a lower level wins.

    2x utilization at 2.5 Gbps (8.6 mW) beats 1x at 5 Gbps (43.03 mW).
    """
    lp = LinkPowerModel(idle_fraction=0.08)
    low, _, high = TABLE1_LEVELS
    assert lp.average_mw(True, low, 0.8) < lp.average_mw(True, high, 0.4)


def test_link_power_validation():
    with pytest.raises(PowerModelError):
        LinkPowerModel(idle_fraction=1.5)
    lp = LinkPowerModel()
    with pytest.raises(PowerModelError):
        lp.average_mw(True, TABLE1_LEVELS[0], 1.5)
    with pytest.raises(PowerModelError):
        lp.energy_mj(True, TABLE1_LEVELS[0], 0.5, -1.0)


def test_energy_mj_units():
    lp = LinkPowerModel(idle_fraction=0.0)
    high = TABLE1_LEVELS[2]
    # 1 second of fully-busy high level = 43.03 mJ.
    cycles_per_second = 1e9 / 2.5
    assert lp.energy_mj(True, high, 1.0, cycles_per_second) == pytest.approx(43.03)


# ----------------------------------------------------------------------
# Energy accountant
# ----------------------------------------------------------------------

def test_accountant_integrates_channels():
    acc = EnergyAccountant()
    acc.set_channel_power("a", 0.0, 10.0)
    acc.set_channel_power("b", 0.0, 20.0)
    acc.set_channel_power("a", 50.0, 0.0)
    # a: 10mW over [0,50), 0 after; b: 20mW throughout.
    assert acc.average_mw(100.0) == pytest.approx(10 * 0.5 + 20.0)
    assert acc.total_now_mw() == pytest.approx(20.0)
    assert acc.channel_power("b") == 20.0
    assert acc.channel_power("missing") == 0.0
    assert len(acc) == 2


def test_accountant_window_reset():
    acc = EnergyAccountant()
    acc.set_channel_power("a", 0.0, 100.0)
    acc.set_channel_power("a", 10.0, 0.0)
    acc.reset_window(10.0)
    assert acc.window_average_mw(20.0) == pytest.approx(0.0)
    assert acc.average_mw(20.0) == pytest.approx(50.0)


def test_accountant_energy_units():
    acc = EnergyAccountant(cycle_ns=2.5)
    acc.set_channel_power("a", 0.0, 40.0)
    cycles_per_second = 1e9 / 2.5
    acc.reset_window(0.0)
    assert acc.window_energy_mj(cycles_per_second, 0.0) == pytest.approx(40.0)


def test_accountant_validation():
    with pytest.raises(MeasurementError):
        EnergyAccountant(cycle_ns=0.0)
    acc = EnergyAccountant()
    with pytest.raises(MeasurementError):
        acc.set_channel_power("a", 0.0, -1.0)
    with pytest.raises(MeasurementError):
        acc.window_energy_mj(0.0, 10.0)
