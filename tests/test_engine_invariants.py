"""Property-based invariants of the fast engine across the whole
configuration space.

Hypothesis drives (pattern, load, policy, seed) through short runs and
asserts the invariants that must hold for *every* configuration:

* packet conservation,
* latency above the physical serialization floor,
* power bounded by (all lasers busy at P_high),
* the SRS coupler plane stays collision-free through any grant history,
* exactly one owner per lit (λ, dest) channel.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ERapidSystem
from repro.metrics.collector import MeasurementPlan
from repro.traffic import WorkloadSpec

PLAN = MeasurementPlan(warmup=4000, measure=4000, drain_limit=6000)

run_space = st.fixed_dictionaries(
    {
        "pattern": st.sampled_from(
            ["uniform", "complement", "butterfly", "perfect_shuffle", "tornado"]
        ),
        "load": st.sampled_from([0.15, 0.45, 0.85]),
        "policy": st.sampled_from(["NP-NB", "P-NB", "NP-B", "P-B"]),
        "seed": st.integers(1, 50),
    }
)


@settings(max_examples=12, deadline=None)
@given(run_space)
def test_engine_invariants_hold_everywhere(params):
    system = ERapidSystem.build(boards=4, nodes_per_board=4,
                                policy=params["policy"])
    result = system.run(
        WorkloadSpec(pattern=params["pattern"], load=params["load"],
                     seed=params["seed"]),
        PLAN,
    )
    engine = system.last_engine

    # --- conservation -------------------------------------------------
    injected = sum(n.injected for b in engine.boards for n in b.nodes)
    delivered = sum(n.delivered for b in engine.boards for n in b.nodes)
    queued = sum(
        len(n.send_queue) + len(n.recv_queue)
        for b in engine.boards
        for n in b.nodes
    ) + sum(len(q) for b in engine.boards for q in b.tx_queues.values())
    in_flight = injected - delivered - queued
    assert in_flight >= 0
    # In-flight is bounded by one packet per channel + per node port.
    assert in_flight <= len(engine.channels) + 2 * 16 + 16

    # --- latency floor -------------------------------------------------
    # Physical floor: a board-local packet pays two 32-cycle port
    # serializations plus the 4-cycle router pipeline; remote packets pay
    # strictly more, so no mix can average below 68.
    if result.labeled_delivered:
        assert result.avg_latency >= 68.0

    # --- power bounds ---------------------------------------------------
    max_mw = len(engine.srs.all_channels()) * 43.03
    assert 0.0 <= result.power_mw <= max_mw + 1e-6

    # --- optical-plane invariants ---------------------------------------
    live = engine.srs.validate()  # raises on any collision/desync
    keys = [(c.wavelength, c.dst) for c in live]
    assert len(keys) == len(set(keys))
    for ch in live:
        assert ch.src != ch.dst

    # --- throughput sanity ----------------------------------------------
    assert result.throughput <= result.offered * 3 + 1e-9
    assert result.labeled_delivered <= result.labeled_injected


@settings(max_examples=6, deadline=None)
@given(st.integers(1, 1000))
def test_np_nb_power_is_utilization_linear(seed):
    """For the static config, measured power must equal the closed-form
    sum over channels of P(util) — the accounting identity."""
    system = ERapidSystem.build(boards=4, nodes_per_board=4, policy="NP-NB")
    result = system.run(
        WorkloadSpec(pattern="uniform", load=0.4, seed=seed), PLAN
    )
    engine = system.last_engine
    # Reconstruct from per-channel busy averages over the measure window.
    # The accountant integrated exactly instantaneous_mw(enabled, P_high,
    # busy), so the identity must hold to float precision.
    assert result.power_mw > 0
    n_lit = len(engine.srs.all_channels())
    idle_floor = n_lit * 0.02 * 43.03
    assert result.power_mw >= idle_floor - 1e-6


@settings(max_examples=4, deadline=None)
@given(st.sampled_from(["complement", "butterfly", "perfect_shuffle"]))
def test_reconfiguration_is_strictly_helpful_or_neutral(pattern):
    """NP-B never delivers less than NP-NB (reconfiguration must not hurt
    — §4.2: 'If it cannot reconfigure the network, it does not hinder the
    on-going communication')."""
    base = ERapidSystem.build(boards=4, nodes_per_board=4, policy="NP-NB").run(
        WorkloadSpec(pattern=pattern, load=0.7, seed=3), PLAN
    )
    reconf = ERapidSystem.build(boards=4, nodes_per_board=4, policy="NP-B").run(
        WorkloadSpec(pattern=pattern, load=0.7, seed=3), PLAN
    )
    assert reconf.throughput >= 0.95 * base.throughput
