"""Unit + property tests for packets, buffers, credits, arbiters, channels."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.network import (
    Channel,
    CreditChannel,
    CreditCounter,
    FlitBuffer,
    FlitType,
    MatrixArbiter,
    Packet,
    PacketFactory,
    RoundRobinArbiter,
    SeparableAllocator,
)
from repro.sim import Simulator


# ----------------------------------------------------------------------
# Packets / flits
# ----------------------------------------------------------------------

def test_packet_factory_table1_defaults():
    """Table 1: 64-byte packets are 8 flits."""
    factory = PacketFactory()
    pkt = factory.make(src=0, dst=5, now=100.0)
    assert pkt.size_flits == 8
    assert pkt.size_bytes == 64
    assert pkt.size_bits == 512
    assert pkt.created_at == 100.0


def test_packet_flit_expansion_head_body_tail():
    pkt = PacketFactory().make(0, 1, 0.0)
    flits = pkt.flits()
    assert len(flits) == 8
    assert flits[0].ftype is FlitType.HEAD and flits[0].is_head
    assert all(f.ftype is FlitType.BODY for f in flits[1:-1])
    assert flits[-1].ftype is FlitType.TAIL and flits[-1].is_tail
    assert [f.index for f in flits] == list(range(8))
    assert all(f.src == 0 and f.dst == 1 for f in flits)


def test_single_flit_packet_is_head_tail():
    pkt = Packet(src=0, dst=1, size_flits=1)
    (flit,) = pkt.flits()
    assert flit.ftype is FlitType.HEAD_TAIL
    assert flit.is_head and flit.is_tail


def test_packet_latency_requires_delivery():
    pkt = Packet(src=0, dst=1, created_at=10.0)
    with pytest.raises(ConfigurationError):
        _ = pkt.latency
    pkt.delivered_at = 60.0
    assert pkt.latency == 50.0


def test_packet_ids_unique():
    a, b = Packet(0, 1), Packet(0, 1)
    assert a.pid != b.pid


def test_packet_factory_validation():
    with pytest.raises(ConfigurationError):
        PacketFactory(size_bytes=0)
    with pytest.raises(ConfigurationError):
        PacketFactory(size_bytes=60, flit_bytes=8)


def test_labeled_flag_propagates():
    pkt = PacketFactory().make(0, 1, 0.0, labeled=True)
    assert pkt.labeled


# ----------------------------------------------------------------------
# FlitBuffer
# ----------------------------------------------------------------------

def test_flit_buffer_fifo_and_overflow():
    sim = Simulator()
    buf = FlitBuffer(sim, capacity=2)
    pkt = Packet(0, 1, size_flits=3)
    f0, f1, f2 = pkt.flits()
    buf.push(f0)
    buf.push(f1)
    assert buf.is_full
    with pytest.raises(SimulationError):
        buf.push(f2)
    assert buf.front() is f0
    assert buf.pop() is f0
    assert buf.pop() is f1
    assert buf.is_empty
    with pytest.raises(SimulationError):
        buf.pop()


def test_flit_buffer_occupancy_window():
    sim = Simulator()
    buf = FlitBuffer(sim, capacity=4)
    pkt = Packet(0, 1, size_flits=2)
    f0, f1 = pkt.flits()

    def scenario():
        buf.push(f0)
        yield sim.timeout(10)
        buf.push(f1)
        yield sim.timeout(10)
        buf.pop()
        buf.pop()
        yield sim.timeout(10)

    sim.process(scenario())
    sim.run(until=30)
    # occupancy area: 1*10 + 2*10 + 0*10 = 30 over 30 cycles -> 1.0 avg
    assert buf.buffer_util(30.0) == pytest.approx(1.0 / 4)


def test_flit_buffer_bad_capacity():
    with pytest.raises(SimulationError):
        FlitBuffer(Simulator(), capacity=0)


# ----------------------------------------------------------------------
# Credits
# ----------------------------------------------------------------------

def test_credit_counter_lifecycle():
    c = CreditCounter(2)
    assert c.has_credit and c.credits == 2
    c.consume()
    c.consume()
    assert not c.has_credit
    with pytest.raises(SimulationError):
        c.consume()
    c.restore()
    assert c.credits == 1
    c.restore()
    with pytest.raises(SimulationError):
        c.restore()


def test_credit_counter_negative_initial():
    with pytest.raises(SimulationError):
        CreditCounter(-1)


def test_credit_channel_latency():
    sim = Simulator()
    ch = CreditChannel(sim, latency=3)
    fired = []
    ch.send(lambda: fired.append(sim.now))
    sim.run()
    assert fired == [3.0]
    assert ch.sent == 1


def test_credit_channel_zero_latency_immediate():
    sim = Simulator()
    ch = CreditChannel(sim, latency=0)
    fired = []
    ch.send(lambda: fired.append(sim.now))
    assert fired == [0.0]


# ----------------------------------------------------------------------
# Arbiters
# ----------------------------------------------------------------------

def test_round_robin_rotates():
    arb = RoundRobinArbiter(3)
    all_on = [True, True, True]
    grants = [arb.arbitrate(all_on) for _ in range(6)]
    assert grants == [0, 1, 2, 0, 1, 2]


def test_round_robin_skips_idle():
    arb = RoundRobinArbiter(3)
    assert arb.arbitrate([False, False, True]) == 2
    assert arb.arbitrate([True, False, False]) == 0
    assert arb.arbitrate([False, False, False]) is None


def test_round_robin_wrong_width_raises():
    with pytest.raises(ConfigurationError):
        RoundRobinArbiter(3).arbitrate([True])


@given(st.integers(2, 8), st.integers(1, 50))
def test_round_robin_starvation_freedom(n, rounds):
    """Property: under full load every requester is granted within n rounds."""
    arb = RoundRobinArbiter(n)
    grants = [arb.arbitrate([True] * n) for _ in range(rounds * n)]
    for req in range(n):
        positions = [i for i, g in enumerate(grants) if g == req]
        assert positions, "every requester granted at least once"
        gaps = [b - a for a, b in zip(positions, positions[1:])]
        assert all(g == n for g in gaps)


def test_matrix_arbiter_least_recently_served():
    arb = MatrixArbiter(3)
    assert arb.arbitrate([True, True, True]) == 0
    # 0 just won, so 1 then 2 now beat it.
    assert arb.arbitrate([True, True, True]) == 1
    assert arb.arbitrate([True, True, True]) == 2
    assert arb.arbitrate([True, True, True]) == 0


def test_matrix_arbiter_idle_and_width():
    arb = MatrixArbiter(2)
    assert arb.arbitrate([False, False]) is None
    with pytest.raises(ConfigurationError):
        arb.arbitrate([True])


@given(st.integers(1, 6), st.lists(st.booleans(), min_size=1, max_size=6))
def test_matrix_arbiter_grants_only_requesters(n, reqs):
    arb = MatrixArbiter(n)
    reqs = (reqs * n)[:n]
    winner = arb.arbitrate(reqs)
    if winner is None:
        assert not any(reqs)
    else:
        assert reqs[winner]


def test_separable_allocator_is_matching():
    alloc = SeparableAllocator(3, 3)
    grants = alloc.allocate({0: [0, 1], 1: [0], 2: [0, 2]})
    ins = [i for i, _ in grants]
    outs = [o for _, o in grants]
    assert len(set(ins)) == len(ins)
    assert len(set(outs)) == len(outs)
    assert grants  # at least one grant under load


@given(
    st.integers(2, 5),
    st.integers(2, 5),
    st.dictionaries(st.integers(0, 4), st.lists(st.integers(0, 4), max_size=5)),
)
def test_separable_allocator_property_matching(n_in, n_out, raw):
    alloc = SeparableAllocator(n_in, n_out)
    requests = {
        i: [o for o in outs if o < n_out] for i, outs in raw.items() if i < n_in
    }
    grants = alloc.allocate(requests)
    ins = [i for i, _ in grants]
    outs = [o for _, o in grants]
    assert len(set(ins)) == len(ins)
    assert len(set(outs)) == len(outs)
    for i, o in grants:
        assert o in requests[i]


def test_separable_allocator_validation():
    with pytest.raises(ConfigurationError):
        SeparableAllocator(0, 1)
    alloc = SeparableAllocator(2, 2)
    with pytest.raises(ConfigurationError):
        alloc.allocate({5: [0]})
    with pytest.raises(ConfigurationError):
        alloc.allocate({0: [7]})


# ----------------------------------------------------------------------
# Channel
# ----------------------------------------------------------------------

class _Collector:
    def __init__(self):
        self.got = []

    def receive_flit(self, flit, port):
        self.got.append((flit, port))


def test_channel_delivers_after_serialization_plus_latency():
    sim = Simulator()
    sink = _Collector()
    ch = Channel(sim, sink=sink, sink_port=3, latency=2, cycles_per_flit=4)
    pkt = Packet(0, 1, size_flits=1)
    (flit,) = pkt.flits()
    ch.send(flit)
    assert ch.busy
    sim.run()
    assert sim.now == 6.0  # 4 serialization + 2 wire
    assert sink.got == [(flit, 3)]


def test_channel_rejects_concurrent_send():
    sim = Simulator()
    ch = Channel(sim, sink=_Collector(), cycles_per_flit=4)
    pkt = Packet(0, 1, size_flits=2)
    f0, f1 = pkt.flits()
    ch.send(f0)
    with pytest.raises(SimulationError):
        ch.send(f1)


def test_channel_free_after_serialization():
    sim = Simulator()
    ch = Channel(sim, sink=_Collector(), latency=0, cycles_per_flit=2)
    pkt = Packet(0, 1, size_flits=2)
    f0, f1 = pkt.flits()

    def scenario():
        ch.send(f0)
        yield sim.timeout(2)
        assert not ch.busy
        ch.send(f1)

    sim.process(scenario())
    sim.run()
    assert ch.flits_sent == 2


def test_channel_without_sink_raises():
    sim = Simulator()
    ch = Channel(sim)
    with pytest.raises(SimulationError):
        ch.send(Packet(0, 1, size_flits=1).flits()[0])


def test_channel_validation():
    with pytest.raises(SimulationError):
        Channel(Simulator(), latency=-1)
    with pytest.raises(SimulationError):
        Channel(Simulator(), cycles_per_flit=0)
