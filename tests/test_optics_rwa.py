"""Unit + property tests for wavelengths and the static RWA."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WavelengthError
from repro.network.topology import ERapidTopology
from repro.optics import StaticRWA, Wavelength, wavelength_grid


# ----------------------------------------------------------------------
# Wavelength
# ----------------------------------------------------------------------

def test_wavelength_grid_and_labels():
    grid = wavelength_grid(4)
    assert [w.label for w in grid] == ["λ0", "λ1", "λ2", "λ3"]
    assert grid[0].nm == pytest.approx(1550.12)
    assert grid[1].nm == pytest.approx(1550.92)
    assert str(grid[2]) == "λ2"


def test_wavelength_validation():
    with pytest.raises(WavelengthError):
        Wavelength(-1)
    with pytest.raises(WavelengthError):
        wavelength_grid(0)


def test_wavelengths_orderable_and_hashable():
    assert Wavelength(1) < Wavelength(2)
    assert len({Wavelength(1), Wavelength(1)}) == 1


# ----------------------------------------------------------------------
# Static RWA — the paper's §2.1 examples
# ----------------------------------------------------------------------

def test_paper_example_board1_to_board0():
    """'if any node on board 1 needs to communicate with any node in board
    0, the wavelength used is λ1^(1)'"""
    rwa = StaticRWA(4)
    assert rwa.wavelength_for(1, 0) == 1


def test_paper_example_board0_to_board1():
    """'for reverse communication, the wavelength used is λ3^(0)'"""
    rwa = StaticRWA(4)
    assert rwa.wavelength_for(0, 1) == 3


def test_rwa_formula_piecewise_matches_modular_form():
    """The paper's piecewise λ_{B-(d-s)} / λ_{s-d} equals (s-d) mod B."""
    B = 8
    rwa = StaticRWA(B)
    for s in range(B):
        for d in range(B):
            if s == d:
                continue
            expected = B - (d - s) if d > s else s - d
            assert rwa.wavelength_for(s, d) == expected % B == (s - d) % B


def test_rwa_self_loop_rejected():
    with pytest.raises(WavelengthError):
        StaticRWA(4).wavelength_for(2, 2)


def test_rwa_wavelength_zero_never_used_remotely():
    rwa = StaticRWA(8)
    for s in range(8):
        for d in range(8):
            if s != d:
                assert rwa.wavelength_for(s, d) != 0


def test_dest_served_by_inverts_wavelength_for():
    rwa = StaticRWA(8)
    for s in range(8):
        for d in range(8):
            if s == d:
                continue
            w = rwa.wavelength_for(s, d)
            assert rwa.dest_served_by(s, w) == d


def test_default_owner_inverts_incoming():
    rwa = StaticRWA(8)
    for d in range(8):
        for s, w in rwa.incoming_wavelengths(d).items():
            assert rwa.default_owner(d, w) == s


@given(st.integers(2, 16))
def test_rwa_receiver_collision_freedom(boards):
    """Property: at every destination, incoming wavelengths are distinct."""
    rwa = StaticRWA(boards)
    rwa.validate()
    for d in range(boards):
        incoming = rwa.incoming_wavelengths(d)
        assert len(set(incoming.values())) == boards - 1


@given(st.integers(2, 16))
def test_rwa_outgoing_wavelengths_distinct(boards):
    """Property: a board's outgoing assignments never share a wavelength."""
    rwa = StaticRWA(boards)
    for s in range(boards):
        outgoing = [rwa.wavelength_for(s, d) for d in range(boards) if d != s]
        assert len(set(outgoing)) == boards - 1


def test_assignment_map_structure():
    rwa = StaticRWA(4)
    amap = rwa.assignment_map()
    assert set(amap.keys()) == {0, 1, 2, 3}
    assert set(amap[0].keys()) == {1, 2, 3}
    assert amap[1][0] == 1 and amap[0][1] == 3


def test_render_table_contains_paper_cells():
    table = StaticRWA(4).render_table()
    assert "λ1^(1)" in table
    assert "λ3^(0)" in table
    assert table.count("\n") == 4  # header + 4 board rows


def test_rwa_validation_errors():
    with pytest.raises(WavelengthError):
        StaticRWA(1)
    rwa = StaticRWA(4)
    with pytest.raises(WavelengthError):
        rwa.wavelength_for(4, 0)
    with pytest.raises(WavelengthError):
        rwa.dest_served_by(0, 4)
    with pytest.raises(WavelengthError):
        rwa.default_owner(0, -1)


def test_for_topology():
    topo = ERapidTopology(boards=8, nodes_per_board=8)
    rwa = StaticRWA.for_topology(topo)
    assert rwa.boards == 8
