"""Unit tests for the measurement methodology and reporting helpers."""

import math

import pytest

from repro.errors import MeasurementError
from repro.metrics import (
    Collector,
    MeasurementPlan,
    RunResult,
    format_kv,
    format_table,
    ratio,
)
from repro.network.packet import Packet


def _pkt(created, delivered=None, labeled=False):
    p = Packet(src=0, dst=1, created_at=created, labeled=labeled)
    p.delivered_at = delivered
    return p


# ----------------------------------------------------------------------
# MeasurementPlan / Collector
# ----------------------------------------------------------------------

def test_plan_boundaries():
    plan = MeasurementPlan(warmup=100, measure=200, drain_limit=300)
    assert plan.measure_end == 300
    assert plan.hard_end == 600


def test_plan_validation():
    with pytest.raises(MeasurementError):
        MeasurementPlan(warmup=-1)
    with pytest.raises(MeasurementError):
        MeasurementPlan(measure=0)


def test_labeling_window():
    plan = MeasurementPlan(warmup=100, measure=200)
    c = Collector(plan, n_nodes=4)
    assert not c.labeling(50)
    assert c.labeling(100)
    assert c.labeling(250)
    assert not c.labeling(300)


def test_collector_phase_counting():
    plan = MeasurementPlan(warmup=100, measure=200)
    c = Collector(plan, n_nodes=2)
    # Warm-up injection: counted in totals only.
    c.on_injected(_pkt(50), 50)
    # Measurement-phase injection, labeled.
    p = _pkt(150, labeled=True)
    c.on_injected(p, 150)
    assert c.injected_total == 2
    assert c.injected_measure == 1
    assert c.labeled_injected == 1
    assert c.labeled_outstanding == 1
    p.delivered_at = 250.0
    c.on_delivered(p, 250)
    assert c.delivered_measure == 1
    assert c.labeled_delivered == 1
    assert c.drained()
    assert c.latency.mean == pytest.approx(100.0)


def test_collector_result_metrics():
    plan = MeasurementPlan(warmup=0, measure=100)
    c = Collector(plan, n_nodes=2)
    for t in (10, 20, 30):
        p = _pkt(t, labeled=True)
        c.on_injected(p, t)
        p.delivered_at = t + 50
        c.on_delivered(p, t + 50)
    c.power_avg_mw = 123.0
    r = c.result(tag="x")
    assert r.throughput == pytest.approx(3 / (100 * 2))
    assert r.offered == pytest.approx(3 / (100 * 2))
    assert r.avg_latency == pytest.approx(50.0)
    assert r.power_mw == 123.0
    assert r.extra["tag"] == "x"
    assert r.acceptance == pytest.approx(1.0)


def test_collector_validation():
    with pytest.raises(MeasurementError):
        Collector(MeasurementPlan(), n_nodes=0)


def test_run_result_summary_and_acceptance_zero_offered():
    r = RunResult(
        throughput=0.0, offered=0.0, avg_latency=0.0, p99_latency=0.0,
        max_latency=0.0, power_mw=0.0,
    )
    assert r.acceptance == 0.0
    assert "thr=" in r.summary()


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------

def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 2.5], ["xx", 3.0]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert "-+-" in lines[2]
    assert len(lines) == 5


def test_format_table_validation():
    with pytest.raises(MeasurementError):
        format_table([], [])
    with pytest.raises(MeasurementError):
        format_table(["a"], [[1, 2]])


def test_format_kv():
    text = format_kv({"alpha": 1.23456, "b": "x"}, title="H")
    assert text.startswith("H")
    assert "alpha" in text and "1.235" in text
    assert format_kv({}) == ""


def test_ratio():
    assert ratio(2.0, 4.0) == 0.5
    assert ratio(1.0, 0.0) == 0.0


# ----------------------------------------------------------------------
# ASCII chart
# ----------------------------------------------------------------------

def test_ascii_chart_renders_all_series():
    from repro.experiments import ascii_chart

    text = ascii_chart(
        [0, 1, 2],
        {"up": [0.0, 1.0, 2.0], "down": [2.0, 1.0, 0.0]},
        title="demo",
        width=20,
        height=6,
    )
    assert "demo" in text
    assert "o=up" in text and "x=down" in text
    assert "o" in text and "x" in text


def test_ascii_chart_handles_nan_points():
    from repro.experiments import ascii_chart

    text = ascii_chart([0, 1], {"s": [1.0, math.nan]}, width=20, height=5)
    assert "s" in text


def test_ascii_chart_validation():
    from repro.experiments import ascii_chart
    from repro.errors import MeasurementError

    with pytest.raises(MeasurementError):
        ascii_chart([], {"s": []})
    with pytest.raises(MeasurementError):
        ascii_chart([0, 1], {"s": [1.0]})
    with pytest.raises(MeasurementError):
        ascii_chart([0], {"s": [1.0]}, width=4)
    with pytest.raises(MeasurementError):
        ascii_chart([0, 1], {"s": [math.nan, math.nan]})
