"""Edge-case tests for the network interfaces (SourceNI/SinkNI) and the
detailed engine's optical boundary."""

import pytest

from repro.network import PacketFactory, SinkNI, SourceNI, VCRouter, table_routing
from repro.sim import Simulator


def build_pair(n_vcs=2, buf_depth=2, queue_capacity=None):
    sim = Simulator()
    router = VCRouter(
        sim, n_ports=2, routing_fn=table_routing({0: 0, 1: 1}),
        n_vcs=n_vcs, buf_depth=buf_depth,
    )
    delivered = []
    sink = SinkNI(sim, on_packet=delivered.append)
    sink.attach(router, 1)
    spare = SinkNI(sim)
    spare.attach(router, 0)
    src = SourceNI(sim, router, 0, queue_capacity=queue_capacity)
    router.start()
    return sim, router, src, sink, delivered


def test_source_ni_single_vc_serializes_packets():
    sim, router, src, sink, delivered = build_pair(n_vcs=1)
    factory = PacketFactory()
    pkts = [factory.make(0, 1, 0.0) for _ in range(3)]
    for p in pkts:
        src.send(p)
    sim.run(until=5000)
    assert len(delivered) == 3
    assert src.packets_injected == 3
    # Single VC: strictly ordered delivery.
    assert [p.pid for p in delivered] == [p.pid for p in pkts]


def test_source_ni_two_vcs_interleave():
    sim, router, src, sink, delivered = build_pair(n_vcs=2)
    factory = PacketFactory()
    for _ in range(4):
        src.send(factory.make(0, 1, 0.0))
    sim.run(until=5000)
    assert len(delivered) == 4


def test_source_ni_bounded_queue_applies_backpressure():
    sim, router, src, sink, delivered = build_pair(queue_capacity=2)
    factory = PacketFactory()
    blocked = []

    def producer():
        for i in range(6):
            req = src.send(factory.make(0, 1, sim.now))
            blocked.append(not req.triggered)
            yield req

    sim.process(producer())
    sim.run(until=10_000)
    assert len(delivered) == 6
    # At least one send had to wait for queue space.
    assert any(blocked)


def test_sink_ni_counts_flits_and_packets():
    sim, router, src, sink, delivered = build_pair()
    src.send(PacketFactory().make(0, 1, 0.0))
    sim.run(until=2000)
    assert sink.packets_received == 1
    assert sink.flits_received == 8


def test_injection_timestamp_set():
    sim, router, src, sink, delivered = build_pair()
    pkt = PacketFactory().make(0, 1, 0.0)
    src.send(pkt)
    sim.run(until=2000)
    assert pkt.injected_at is not None
    assert pkt.delivered_at > pkt.injected_at >= 0.0


# ----------------------------------------------------------------------
# Detailed engine optical boundary
# ----------------------------------------------------------------------

def test_detailed_tx_sink_reassembles_whole_packets():
    """The optical boundary is store-and-forward: the transmitter queue
    holds whole packets, never partial flit runs."""
    from repro.core.config import ERapidConfig
    from repro.core.detailed import DetailedEngine
    from repro.metrics.collector import MeasurementPlan
    from repro.network.topology import ERapidTopology
    from repro.traffic import WorkloadSpec

    cfg = ERapidConfig(topology=ERapidTopology(boards=4, nodes_per_board=4))
    # Load 0.2 N_c is below complement's static saturation (~0.27 N_c on
    # R(1,4,4)), so the run must fully drain.
    engine = DetailedEngine(
        cfg,
        WorkloadSpec(pattern="complement", load=0.2, seed=2),
        MeasurementPlan(warmup=1000, measure=4000, drain_limit=6000),
    )
    result = engine.run()
    assert result.labeled_delivered == result.labeled_injected > 0
    for (b, w), sink_q in engine.tx_queues.items():
        dest = engine.rwa.dest_served_by(b, w)
        if dest == b:
            continue
        # The run stops as soon as the labeled packets drain, so a few
        # in-flight unlabeled packets may legitimately sit at the optical
        # boundary — but only *whole* packets, and far from capacity
        # (below saturation nothing accumulates).
        assert len(sink_q) <= 4
        for pkt in sink_q.items:
            assert pkt.size_flits == cfg.router.flits_per_packet


def test_detailed_engine_wavelength_stamping():
    from repro.core.config import ERapidConfig
    from repro.core.detailed import DetailedEngine
    from repro.metrics.collector import MeasurementPlan
    from repro.network.topology import ERapidTopology
    from repro.traffic import WorkloadSpec

    cfg = ERapidConfig(topology=ERapidTopology(boards=4, nodes_per_board=4))
    engine = DetailedEngine(
        cfg,
        WorkloadSpec(pattern="complement", load=0.2, seed=2),
        MeasurementPlan(warmup=500, measure=2000, drain_limit=4000),
    )
    stamped = []
    engine.collector.on_delivered = engine.collector.on_delivered  # no-op ref
    original = engine._on_delivered

    def spy(pkt):
        stamped.append(pkt.wavelength)
        original(pkt)

    engine._on_delivered = spy
    # Rebind sinks' callback (they captured the bound method).
    for sink in engine.sink_nis.values():
        sink.on_packet = spy
    engine.run()
    remote = [w for w in stamped if w is not None]
    assert remote, "remote packets must be stamped with their wavelength"
    rwa = engine.rwa
    # Complement on R(1,4,4): board 0 -> 3 uses λ (0-3) mod 4 = 1.
    assert set(remote) <= {1, 2, 3}
