"""Unit tests for OpticalChannel (the LC state machine) inside a real
engine, without running full workloads."""

import pytest

from repro.core import ERapidConfig, FastEngine, P_B
from repro.core.dpm import DpmAction
from repro.metrics.collector import MeasurementPlan
from repro.network.topology import ERapidTopology
from repro.traffic import WorkloadSpec


def make_engine(policy=P_B):
    cfg = ERapidConfig(
        topology=ERapidTopology(boards=4, nodes_per_board=4), policy=policy
    )
    return FastEngine(
        cfg,
        WorkloadSpec(pattern="uniform", load=0.0, seed=1),
        MeasurementPlan(warmup=100, measure=100, drain_limit=100),
    )


def test_channel_initial_state():
    engine = make_engine()
    ch = engine.channels[(1, 0)]
    assert ch.owner == 1  # static owner of λ1 toward board 0 is board 1
    assert ch.enabled and not ch.sleeping and not ch.busy
    assert ch.level is engine.config.power_levels.highest


def test_dark_channel_draws_nothing():
    engine = make_engine()
    ch0 = engine.channels[(0, 2)]  # λ0 is the self-loop: dark everywhere
    assert ch0.owner is None
    assert not ch0.enabled
    assert engine.accountant.channel_power(ch0.key) == 0.0


def test_busy_toggles_power():
    engine = make_engine()
    ch = engine.channels[(1, 0)]
    idle_mw = engine.accountant.channel_power(ch.key)
    ch.set_busy(True)
    busy_mw = engine.accountant.channel_power(ch.key)
    assert busy_mw == pytest.approx(43.03)
    assert idle_mw == pytest.approx(0.02 * 43.03)
    ch.set_busy(False)
    assert engine.accountant.channel_power(ch.key) == pytest.approx(idle_mw)


def test_apply_dpm_down_sets_stall_and_reclocks_receiver():
    engine = make_engine()
    ch = engine.channels[(1, 0)]
    rx = engine.srs.receiver(0, 1)
    ch.apply_dpm(DpmAction.DOWN)
    assert ch.level.name == "P_mid"
    assert ch.stall_until == pytest.approx(65.0)
    assert rx.bit_rate_gbps == 3.3
    assert rx.relock_count == 1
    assert ch.dpm_transitions == 1


def test_apply_dpm_hold_and_saturation():
    engine = make_engine()
    ch = engine.channels[(1, 0)]
    ch.apply_dpm(DpmAction.HOLD)
    assert ch.dpm_transitions == 0
    ch.apply_dpm(DpmAction.UP)  # already highest: no-op
    assert ch.dpm_transitions == 0
    assert ch.stall_until == 0.0


def test_sleep_and_wake_cycle():
    engine = make_engine()
    ch = engine.channels[(1, 0)]
    rx = engine.srs.receiver(0, 1)
    ch.apply_dpm(DpmAction.SLEEP)
    assert ch.sleeping and not ch.enabled
    assert not rx.powered
    assert engine.accountant.channel_power(ch.key) == 0.0
    stall = ch.wake()
    assert stall == engine.config.wake_cycles
    assert not ch.sleeping and ch.enabled
    assert rx.powered
    assert ch.wakes == 1 and ch.sleeps == 1


def test_wake_when_awake_is_free():
    engine = make_engine()
    ch = engine.channels[(1, 0)]
    assert ch.wake() == 0.0
    assert ch.wakes == 0


def test_sleep_on_dark_channel_is_noop():
    engine = make_engine()
    ch = engine.channels[(0, 2)]
    ch.apply_dpm(DpmAction.SLEEP)
    assert not ch.sleeping
    assert ch.sleeps == 0


def test_ownership_change_clears_sleep_and_gates_receiver():
    engine = make_engine()
    ch = engine.channels[(1, 0)]
    ch.apply_dpm(DpmAction.SLEEP)
    engine.apply_grant(0, 1, 2)  # λ1 toward board 0 now owned by board 2
    assert ch.owner == 2
    assert not ch.sleeping and ch.enabled
    assert engine.srs.receiver(0, 1).powered
    engine.apply_grant(0, 1, None)  # darken
    assert not ch.enabled
    assert not engine.srs.receiver(0, 1).powered
    assert engine.accountant.channel_power(ch.key) == 0.0


def test_service_cycles_follow_level():
    engine = make_engine()
    ch = engine.channels[(1, 0)]
    assert ch.service_cycles(64) == pytest.approx(40.96)
    ch.apply_dpm(DpmAction.DOWN)
    assert ch.service_cycles(64) == pytest.approx(62.06, abs=0.01)
    ch.apply_dpm(DpmAction.DOWN)
    assert ch.service_cycles(64) == pytest.approx(81.92)


def test_window_stats_reflect_queue():
    engine = make_engine()
    ch = engine.channels[(1, 0)]
    stats = ch.window_stats()
    assert stats.link_util == 0.0
    assert stats.queue_empty
    # Queue a packet on the owner's pair queue and re-read.
    from repro.network.packet import PacketFactory

    engine.pair_queue(1, 0).try_put(PacketFactory().make(4, 0, 0.0))
    stats = ch.window_stats()
    assert not stats.queue_empty


def test_dark_channel_window_stats_are_empty():
    engine = make_engine()
    ch = engine.channels[(0, 2)]
    stats = ch.window_stats()
    assert stats.link_util == 0.0 and stats.queue_empty
