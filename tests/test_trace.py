"""Unit tests for the structured trace log."""

from repro.sim.trace import TraceLog, TraceRecord


def test_record_and_filter_by_category():
    log = TraceLog()
    log.record(1.0, "protocol", "RC0", "hello", window=1)
    log.record(2.0, "power", "LC3", "scale down")
    assert len(log) == 2
    assert [r.message for r in log.filter(category="protocol")] == ["hello"]
    assert [r.entity for r in log.filter(category="power")] == ["LC3"]


def test_filter_by_entity_and_since():
    log = TraceLog()
    for t in (1.0, 5.0, 9.0):
        log.record(t, "x", "A", f"m{t}")
    log.record(6.0, "x", "B", "other")
    got = list(log.filter(entity="A", since=5.0))
    assert [r.time for r in got] == [5.0, 9.0]


def test_category_filtering_drops_at_record_time():
    log = TraceLog(categories={"keep"})
    log.record(1.0, "keep", "e", "yes")
    log.record(1.0, "drop", "e", "no")
    assert len(log) == 1
    assert log.enabled("keep") and not log.enabled("drop")


def test_retention_bound():
    log = TraceLog(max_records=3)
    for i in range(5):
        log.record(float(i), "c", "e", f"m{i}")
    assert len(log) == 3
    assert log.dropped == 2
    assert [r.message for r in log.records] == ["m2", "m3", "m4"]


def test_sink_streaming():
    log = TraceLog()
    seen = []
    log.add_sink(seen.append)
    log.record(1.0, "c", "e", "m")
    assert len(seen) == 1 and seen[0].message == "m"


def test_record_format_contains_fields():
    rec = TraceRecord(12.5, "protocol", "RC1", "grant", {"w": 3})
    text = rec.format()
    assert "12.5" in text and "RC1" in text and "grant" in text and "w=3" in text


def test_log_format_renders_lines():
    log = TraceLog()
    log.record(1.0, "c", "e1", "one")
    log.record(2.0, "c", "e2", "two")
    text = log.format(category="c")
    assert text.count("\n") == 1
    assert "one" in text and "two" in text
