"""Tests for injection processes, the capacity model and workload specs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.network.topology import ERapidTopology
from repro.traffic import (
    BernoulliProcess,
    CapacityModel,
    CapacityParams,
    OnOffProcess,
    PoissonProcess,
    TrafficSource,
    WorkloadSpec,
    complement,
    make_pattern,
)

TOPO64 = ERapidTopology(boards=8, nodes_per_board=8)


# ----------------------------------------------------------------------
# Injection processes
# ----------------------------------------------------------------------

def test_bernoulli_mean_rate():
    proc = BernoulliProcess(0.05)
    rng = np.random.default_rng(0)
    gaps = [proc.next_gap(rng) for _ in range(5000)]
    assert np.mean(gaps) == pytest.approx(20.0, rel=0.1)
    assert min(gaps) >= 1


def test_poisson_mean_rate():
    proc = PoissonProcess(0.05)
    rng = np.random.default_rng(0)
    gaps = [proc.next_gap(rng) for _ in range(5000)]
    assert np.mean(gaps) == pytest.approx(20.0, rel=0.15)


def test_onoff_long_run_rate_close_to_nominal():
    proc = OnOffProcess(0.05, burstiness=4.0, mean_burst=8.0)
    rng = np.random.default_rng(0)
    gaps = [proc.next_gap(rng) for _ in range(20000)]
    rate = len(gaps) / sum(gaps)
    assert rate == pytest.approx(0.05, rel=0.25)


def test_onoff_is_actually_bursty():
    """Gap variance must exceed Bernoulli's at the same mean rate."""
    rng = np.random.default_rng(7)
    bern = [BernoulliProcess(0.05).next_gap(rng) for _ in range(10000)]
    rng = np.random.default_rng(7)
    proc = OnOffProcess(0.05, burstiness=6.0, mean_burst=10.0)
    burst = [proc.next_gap(rng) for _ in range(10000)]
    assert np.var(burst) > np.var(bern)


def test_zero_rate_never_fires():
    rng = np.random.default_rng(0)
    assert BernoulliProcess(0.0).next_gap(rng) >= 1 << 29
    assert PoissonProcess(0.0).next_gap(rng) >= 1 << 29
    assert OnOffProcess(0.0).next_gap(rng) >= 1 << 29


def test_process_validation():
    with pytest.raises(ConfigurationError):
        BernoulliProcess(-0.1)
    with pytest.raises(ConfigurationError):
        OnOffProcess(0.1, burstiness=0.5)
    with pytest.raises(ConfigurationError):
        OnOffProcess(0.1, mean_burst=0.0)


def test_traffic_source_generates_pattern_destinations():
    src = TrafficSource(0, complement(64), BernoulliProcess(0.1))
    pkt = src.next_packet(now=10.0, labeled=True)
    assert pkt.src == 0 and pkt.dst == 63
    assert pkt.labeled and pkt.created_at == 10.0
    assert src.generated == 1


def test_traffic_source_node_range():
    with pytest.raises(ConfigurationError):
        TrafficSource(99, complement(64), BernoulliProcess(0.1))


# ----------------------------------------------------------------------
# Batched gap sampling (engine hot path) — bit-identity regression
# ----------------------------------------------------------------------

@pytest.mark.parametrize("make_proc", [
    lambda: BernoulliProcess(0.3),
    lambda: BernoulliProcess(0.05),
    lambda: PoissonProcess(0.2),
])
def test_gap_batch_is_stream_identical_to_scalar(make_proc):
    """gap_batch(rng, n) must consume the stream exactly like n next_gap
    calls and return the same values as plain Python numbers."""
    n = 100
    scalar_rng = np.random.default_rng(42)
    batch_rng = np.random.default_rng(42)
    proc = make_proc()
    scalar = [proc.next_gap(scalar_rng) for _ in range(n)]
    batch = make_proc().gap_batch(batch_rng, n)
    assert batch is not None
    assert len(batch) == n
    assert batch == scalar
    for g in batch:
        assert type(g) in (int, float)  # numpy scalars poison fingerprints
    # And the two rngs are at the same stream position afterwards.
    assert scalar_rng.integers(1 << 30) == batch_rng.integers(1 << 30)


def test_gap_batch_degenerate_rates_stay_scalar():
    """Rates whose scalar path never touches the rng cannot be batched
    stream-identically; gap_batch must decline rather than diverge."""
    rng = np.random.default_rng(0)
    assert BernoulliProcess(0.0).gap_batch(rng, 8) is None
    assert BernoulliProcess(1.0).gap_batch(rng, 8) is None
    assert PoissonProcess(0.0).gap_batch(rng, 8) is None
    # Stateful processes inherit the base refusal.
    assert OnOffProcess(0.3).gap_batch(rng, 8) is None


def test_traffic_source_batching_matches_scalar_path():
    """A permutation-pattern source with the batch buffer enabled yields
    the same gap sequence as a source forced onto the scalar path."""
    rng_a = np.random.default_rng(9)
    rng_b = np.random.default_rng(9)
    batched = TrafficSource(3, complement(64), BernoulliProcess(0.3), rng=rng_a)
    scalar = TrafficSource(3, complement(64), BernoulliProcess(0.3), rng=rng_b)
    scalar._batchable = False
    assert batched._batchable  # complement is a fixed permutation
    gaps_a = [batched.next_gap() for _ in range(600)]
    gaps_b = [scalar.next_gap() for _ in range(600)]
    assert gaps_a == gaps_b


def test_traffic_source_uniform_stays_scalar():
    """Uniform interleaves dest draws with gap draws on one stream, so the
    source must never batch-prefetch gaps."""
    src = TrafficSource(0, make_pattern("uniform", 64), BernoulliProcess(0.3))
    assert not src._batchable
    src.next_gap()
    assert src._gap_buffer == []


# ----------------------------------------------------------------------
# Capacity model
# ----------------------------------------------------------------------

def test_capacity_params_rates():
    p = CapacityParams()
    # 5 Gbps / 0.4 GHz = 12.5 bits/cycle; /512 = 0.024414 packets/cycle.
    assert p.mu_optical == pytest.approx(0.024414, abs=1e-5)
    assert p.mu_electrical == pytest.approx(0.03125, abs=1e-6)


def test_uniform_capacity_is_optically_bound():
    """For R(1,8,8) uniform traffic the optical channels bind before the
    6.4 Gbps electrical ports."""
    nc = CapacityModel.uniform_capacity(TOPO64)
    # Channel load per unit p: 8 nodes x (8/63) to each remote board = 64/63.
    expected = CapacityParams().mu_optical * 63 / 64
    assert nc == pytest.approx(expected, rel=1e-6)
    assert nc < CapacityParams().mu_electrical


def test_complement_saturates_much_earlier():
    """§4.2: complement concentrates all of a board's traffic on one
    channel, so static capacity is ~8x lower than uniform."""
    nc_uniform = CapacityModel.uniform_capacity(TOPO64)
    model = CapacityModel(TOPO64, complement(64))
    frac = model.saturation_fraction(nc_uniform)
    assert frac == pytest.approx((1 / 8) * (64 / 63), rel=1e-6)


def test_reconfigured_complement_capacity_scales_with_channels():
    """Granting k channels to the hot pair raises capacity ~k-fold until
    the electrical injection bound kicks in."""
    model = CapacityModel(TOPO64, complement(64))
    base = model.max_injection()
    B = 8
    chans = np.ones((B, B)) - np.eye(B)
    comp_pairs = [(s, (63 - s * 8) // 8) for s in range(B)]
    for k in (2, 4, 7):
        c = chans.copy()
        for s, d in comp_pairs:
            c[s, d] = k
        cap = model.max_injection(c)
        expected = min(k * base, CapacityParams().mu_electrical)
        assert cap == pytest.approx(expected, rel=1e-6)


def test_butterfly_and_shuffle_saturation_between():
    """Both spread each board's traffic over 2 channels -> saturate around
    2/8 of uniform capacity (before reconfiguration)."""
    nc = CapacityModel.uniform_capacity(TOPO64)
    for name in ("butterfly", "perfect_shuffle"):
        model = CapacityModel(TOPO64, make_pattern(name, 64))
        frac = model.saturation_fraction(nc)
        assert 0.15 < frac < 0.6, (name, frac)


def test_board_matrix_row_sums_match_remote_fraction():
    model = CapacityModel(TOPO64, complement(64))
    T = model.board_matrix()
    # Complement: each board sends everything to its complement board.
    assert T.sum() == pytest.approx(64.0)
    for s in range(8):
        assert T[s, 7 - s] == pytest.approx(8.0)


def test_capacity_model_validation():
    with pytest.raises(ConfigurationError):
        CapacityModel(TOPO64, complement(16))
    model = CapacityModel(TOPO64, complement(64))
    with pytest.raises(ConfigurationError):
        model.max_injection(np.ones((3, 3)))
    with pytest.raises(ConfigurationError):
        model.max_injection(np.zeros((8, 8)))
    with pytest.raises(ConfigurationError):
        model.saturation_fraction(0.0)
    with pytest.raises(ConfigurationError):
        CapacityParams(packet_bits=0)


@settings(max_examples=15)
@given(st.sampled_from(["uniform", "butterfly", "complement",
                        "perfect_shuffle", "tornado", "neighbor"]))
def test_capacity_positive_and_bounded(name):
    """Property: every pattern's capacity is positive and below the
    electrical injection ceiling."""
    model = CapacityModel(TOPO64, make_pattern(name, 64))
    cap = model.max_injection()
    assert 0 < cap <= CapacityParams().mu_electrical + 1e-12


# ----------------------------------------------------------------------
# Workload spec
# ----------------------------------------------------------------------

def test_workload_builds_one_source_per_node():
    spec = WorkloadSpec(pattern="complement", load=0.5, seed=3)
    sources = spec.build_sources(TOPO64)
    assert len(sources) == 64
    assert sources[0].next_packet(0.0).dst == 63


def test_workload_injection_rate_scales_with_load():
    lo = WorkloadSpec(load=0.1).injection_rate(TOPO64)
    hi = WorkloadSpec(load=0.9).injection_rate(TOPO64)
    assert hi == pytest.approx(9 * lo)


def test_workload_reproducible_across_builds():
    a = WorkloadSpec(pattern="uniform", load=0.5, seed=9).build_sources(TOPO64)
    b = WorkloadSpec(pattern="uniform", load=0.5, seed=9).build_sources(TOPO64)
    assert [s.next_packet(0.0).dst for s in a] == [
        s.next_packet(0.0).dst for s in b
    ]


def test_workload_validation():
    with pytest.raises(ConfigurationError):
        WorkloadSpec(load=-1.0)
    with pytest.raises(ConfigurationError):
        WorkloadSpec(process="fractal")


def test_workload_describe():
    text = WorkloadSpec(pattern="butterfly", load=0.3).describe()
    assert "butterfly" in text and "0.30" in text
