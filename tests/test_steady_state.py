"""Tests for the steady-state output-analysis tooling."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MeasurementError
from repro.metrics import (
    MeasurementPlan,
    ReplicationSummary,
    batch_means,
    mser_truncation,
    replicate,
)
from repro.metrics.collector import RunResult


def _result(thr, lat=100.0, pw=50.0):
    return RunResult(
        throughput=thr, offered=thr, avg_latency=lat, p99_latency=lat,
        max_latency=lat, power_mw=pw,
    )


# ----------------------------------------------------------------------
# Batch means
# ----------------------------------------------------------------------

def test_batch_means_constant_signal():
    mean, half = batch_means([5.0] * 100, n_batches=10)
    assert mean == 5.0
    assert half == 0.0


def test_batch_means_iid_normal_covers_truth():
    rng = np.random.default_rng(0)
    hits = 0
    for trial in range(40):
        samples = rng.normal(10.0, 2.0, 400)
        mean, half = batch_means(list(samples), n_batches=10)
        if abs(mean - 10.0) <= half:
            hits += 1
    # 95 % CI: expect ~38/40 hits; allow generous slack.
    assert hits >= 32


def test_batch_means_wider_for_autocorrelated_data():
    """An AR(1) stream must get a wider interval than an IID one at the
    same marginal variance — the reason batching exists."""
    rng = np.random.default_rng(1)
    n = 1000
    phi = 0.9
    ar = [0.0]
    for _ in range(n - 1):
        ar.append(phi * ar[-1] + rng.normal(0, 1))
    iid = list(rng.normal(0, np.std(ar), n))
    _, half_ar = batch_means(ar, n_batches=10)
    _, half_iid = batch_means(iid, n_batches=10)
    assert half_ar > half_iid


def test_batch_means_validation():
    with pytest.raises(MeasurementError):
        batch_means([1.0] * 10, n_batches=1)
    with pytest.raises(MeasurementError):
        batch_means([1.0] * 5, n_batches=10)
    with pytest.raises(MeasurementError):
        batch_means([1.0] * 100, confidence=1.5)


@settings(max_examples=20)
@given(st.lists(st.floats(-100, 100), min_size=40, max_size=200))
def test_batch_means_mean_matches_sample_mean(xs):
    mean, half = batch_means(xs, n_batches=10)
    batch = len(xs) // 10
    used = xs[: batch * 10]
    assert mean == pytest.approx(sum(used) / len(used), rel=1e-9, abs=1e-9)
    assert half >= 0.0


# ----------------------------------------------------------------------
# MSER truncation
# ----------------------------------------------------------------------

def test_mser_detects_warmup_transient():
    """A decaying transient on top of stationary noise: MSER should cut a
    meaningful prefix."""
    rng = np.random.default_rng(2)
    transient = [20.0 * math.exp(-i / 30.0) for i in range(100)]
    steady = [0.0] * 400
    signal = [t + s + rng.normal(0, 1) for t, s in zip(
        transient + steady, [0.0] * 500
    )]
    cut = mser_truncation(signal, stride=5)
    assert 20 <= cut <= 250


def test_mser_stationary_signal_cuts_little():
    rng = np.random.default_rng(3)
    signal = list(rng.normal(5.0, 1.0, 300))
    cut = mser_truncation(signal, stride=5)
    assert cut < 150  # never more than half by construction


def test_mser_validation():
    with pytest.raises(MeasurementError):
        mser_truncation([1.0] * 5, stride=5)


# ----------------------------------------------------------------------
# Replications
# ----------------------------------------------------------------------

def test_replication_summary_math():
    results = [_result(0.010), _result(0.012), _result(0.011)]
    summary = ReplicationSummary(results)
    m = summary.metric("throughput")
    assert m.mean == pytest.approx(0.011)
    assert m.n == 3
    assert m.half_width > 0
    assert "throughput" in summary.format()
    assert set(summary.summary()) == set(ReplicationSummary.METRICS)


def test_replication_summary_validation():
    with pytest.raises(MeasurementError):
        ReplicationSummary([_result(1.0)])
    with pytest.raises(MeasurementError):
        ReplicationSummary([_result(1.0), _result(2.0)], confidence=0.0)


def test_replicate_runs_engine_across_seeds():
    from repro import ERapidSystem, WorkloadSpec

    plan = MeasurementPlan(warmup=2000, measure=4000, drain_limit=6000)

    def run(seed):
        system = ERapidSystem.build(boards=4, nodes_per_board=4, policy="NP-NB")
        return system.run(WorkloadSpec(pattern="uniform", load=0.4, seed=seed), plan)

    summary = replicate(run, seeds=[1, 2, 3])
    thr = summary.metric("throughput")
    # Three seeds at identical offered load: tight interval around it.
    assert thr.relative_error < 0.1
    assert thr.n == 3


def test_replicate_needs_two_seeds():
    with pytest.raises(MeasurementError):
        replicate(lambda s: _result(1.0), seeds=[1])


def test_metric_summary_relative_error_zero_mean():
    from repro.metrics.steady_state import MetricSummary

    assert MetricSummary(0.0, 1.0, 3).relative_error == math.inf
    assert "n=3" in str(MetricSummary(1.0, 0.1, 3))
