"""Injection-process and TrafficSource gap-batching contracts.

The batch engine's whole fidelity story rests on one property: a
vectorized gap refill consumes the PCG64 stream exactly like successive
scalar draws, at *any* chunk size.  These tests pin that property at
chunk sizes 1, 256 (the default) and 4096.
"""

import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import RngRegistry
from repro.traffic.injection import (
    GAP_CHUNK,
    BernoulliProcess,
    PoissonProcess,
    TrafficSource,
)
from repro.traffic.patterns import PATTERNS

N_NODES = 16
N_GAPS = 1000


def make_source(gap_chunk, pattern="complement", seed=11):
    registry = RngRegistry(seed=seed)
    return TrafficSource(
        node=3,
        pattern=PATTERNS[pattern](N_NODES),
        process=BernoulliProcess(0.3),
        rng=registry.stream("source.3"),
        gap_chunk=gap_chunk,
    )


def scalar_reference(seed=11, n=N_GAPS):
    """Gap sequence from pure scalar draws on an identical stream."""
    rng = RngRegistry(seed=seed).stream("source.3")
    process = BernoulliProcess(0.3)
    return [process.next_gap(rng) for _ in range(n)]


@pytest.mark.parametrize("gap_chunk", [1, 256, 4096])
def test_gap_stream_is_identical_at_any_chunk_size(gap_chunk):
    source = make_source(gap_chunk)
    gaps = [source.next_gap() for _ in range(N_GAPS)]
    assert gaps == scalar_reference()
    # Values must be plain Python numbers, not numpy scalars — repr-based
    # fingerprints downstream depend on it.
    assert all(type(g) in (int, float) for g in gaps)


def test_default_chunk_is_the_module_constant():
    source = make_source(GAP_CHUNK)
    assert source.gap_chunk == GAP_CHUNK == 256
    assert TrafficSource(
        node=0,
        pattern=PATTERNS["complement"](N_NODES),
        process=BernoulliProcess(0.3),
    ).gap_chunk == GAP_CHUNK


def test_gap_chunk_must_be_positive():
    with pytest.raises(ConfigurationError):
        make_source(0)
    with pytest.raises(ConfigurationError):
        make_source(-5)


def test_uniform_pattern_stays_on_the_scalar_path():
    """Uniform traffic interleaves dest draws with gap draws, so batching
    would desynchronize the stream — the source must never buffer."""
    registry = RngRegistry(seed=11)
    source = TrafficSource(
        node=3,
        pattern=PATTERNS["uniform"](N_NODES),
        process=BernoulliProcess(0.3),
        rng=registry.stream("source.3"),
        gap_chunk=256,
    )
    rng = RngRegistry(seed=11).stream("source.3")
    process = BernoulliProcess(0.3)
    pattern = PATTERNS["uniform"](N_NODES)
    for t in range(200):
        assert source.next_gap() == process.next_gap(rng)
        assert source.next_packet(float(t)).dst == pattern.dest(3, rng)
    assert source._gap_buffer == []


def test_degenerate_rate_disables_batching_without_desync():
    # rate=1.0 -> geometric_gap never touches the rng, gap_batch declines.
    registry = RngRegistry(seed=5)
    source = TrafficSource(
        node=1,
        pattern=PATTERNS["complement"](N_NODES),
        process=BernoulliProcess(1.0),
        rng=registry.stream("source.1"),
    )
    assert [source.next_gap() for _ in range(10)] == [1] * 10
    assert source._gap_buffer == []


def test_poisson_gap_batch_is_stream_identical():
    rng_a = RngRegistry(seed=3).stream("x")
    rng_b = RngRegistry(seed=3).stream("x")
    process = PoissonProcess(0.25)
    batch = process.gap_batch(rng_a, 64)
    scalar = [process.next_gap(rng_b) for _ in range(64)]
    assert batch == scalar
